"""Finding baselines: ratcheted adoption of new lint rules.

A baseline is a versioned JSON file recording the findings a repository
has *accepted* — typically written once when a new rule lands against
old code.  ``repro lint --baseline <file>`` then fails only on findings
not in the baseline, so CI gates new regressions immediately while the
backlog burns down independently.

Findings are matched by **fingerprint** — ``(path, rule, message)``
with occurrence counting, deliberately ignoring line numbers: editing
an unrelated part of a file must not resurrect its baselined findings,
but introducing a *second* instance of an accepted finding in the same
file is still new.
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter
from typing import Dict, List, Sequence, Tuple, Union

from repro.lint.findings import Finding

#: Bump when the on-disk schema changes shape.
BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]


class BaselineError(ValueError):
    """A baseline file is malformed or from an unknown schema version."""


def fingerprint(finding: Finding) -> Fingerprint:
    """Line-insensitive identity of a finding."""
    return (finding.path.replace("\\", "/"), finding.rule, finding.message)


def write_baseline(
    findings: Sequence[Finding], path: Union[str, pathlib.Path]
) -> int:
    """Write ``findings`` as an accepted baseline; returns the count."""
    counts = Counter(fingerprint(f) for f in findings)
    entries = [
        {"path": p, "rule": r, "message": m, "count": c}
        for (p, r, m), c in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return sum(counts.values())


def load_baseline(path: Union[str, pathlib.Path]) -> Counter:
    """Fingerprint -> accepted occurrence count from a baseline file."""
    try:
        payload = json.loads(
            pathlib.Path(path).read_text(encoding="utf-8")
        )
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise BaselineError(f"baseline {path}: not a JSON object")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path}: schema version {version!r} "
            f"(this tool reads version {BASELINE_VERSION}; rewrite it "
            "with --write-baseline)"
        )
    entries = payload.get("findings")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path}: 'findings' is not a list")
    counts: Counter = Counter()
    for entry in entries:
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline {path}: non-object entry")
        try:
            key = (
                str(entry["path"]).replace("\\", "/"),
                str(entry["rule"]),
                str(entry["message"]),
            )
            count = int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise BaselineError(
                f"baseline {path}: malformed entry {entry!r}"
            ) from exc
        counts[key] += max(count, 1)
    return counts


def partition(
    findings: Sequence[Finding], accepted: Counter
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(new, known)`` against a baseline.

    The first *n* occurrences of a fingerprint accepted *n* times are
    known (matched in line order); any beyond that are new.
    """
    remaining: Dict[Fingerprint, int] = dict(accepted)
    new: List[Finding] = []
    known: List[Finding] = []
    for finding in sorted(findings):
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            known.append(finding)
        else:
            new.append(finding)
    return new, known
