"""Within-cell sharding: N-independence, canonical merges, determinism.

``--shards N`` splits a large cell into cooperating jobs; the contract
(:mod:`repro.sim.shard`) is that the merged output is *byte-identical*
for every ``N`` — flows hash into a fixed set of virtual shards whose
seeds and contents never depend on the process count, and the canonical
record merge is associative.  These tests pin that contract at the
simulator level, through the harness job/assembly layer for both fig4
and ML cells, and across OS process boundaries.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.experiments import SMALL
from repro.experiments.fig4_fct import run_fig4_cell_shard
from repro.experiments.ml_sweep import merge_ml_cell_shards, run_ml_cell_shard
from repro.experiments.runner import Scale, register_scale, scheme_labels
from repro.harness.executor import FAILED, run_jobs
from repro.harness.jobs import assemble_fig4, assemble_ml, fig4_jobs, ml_jobs
from repro.routing import EcmpRouting
from repro.sim.shard import (
    NUM_VIRTUAL_SHARDS,
    merge_records,
    partition_flows,
    simulate_fct_sharded,
    virtual_shard_of,
)
from repro.traffic import CanonicalCluster, Placement, TrainingJob, generate_flows, uniform

TINY = register_scale(
    Scale(
        name="tiny-shard",
        leaf_x=6,
        leaf_y=2,
        dring_m=6,
        dring_n=2,
        dring_servers=48,
        max_flows=150,
        window_seconds=0.02,
        size_cap_bytes=10e6,
    )
)

TINY_ML_JOBS = (
    TrainingJob("ring-a", 6, 1e6, 1e-3, num_layers=2, num_iterations=2),
    TrainingJob("ring-b", 4, 8e5, 8e-4, num_layers=2, num_iterations=2),
    TrainingJob(
        "moe-a", 4, 5e5, 5e-4, num_iterations=2, collective="all-to-all"
    ),
    TrainingJob(
        "moe-b", 6, 4e5, 6e-4, num_iterations=2, collective="all-to-all"
    ),
)


def sharded_workload(network, num_flows=250, seed=3):
    cluster = CanonicalCluster(
        network.num_racks, min(network.servers_at(r) for r in network.racks)
    )
    placement = Placement(cluster, network)
    flows = generate_flows(
        uniform(cluster), num_flows, 0.01, seed=seed, size_cap=5e6
    )
    return placement, flows


class TestPartitioning:
    def test_virtual_shards_fixed_and_in_range(self, small_dring):
        _placement, flows = sharded_workload(small_dring)
        for flow in flows:
            shard = virtual_shard_of(flow)
            assert 0 <= shard < NUM_VIRTUAL_SHARDS
            assert virtual_shard_of(flow) == shard  # pure function

    def test_partition_preserves_order_and_flows(self, small_dring):
        _placement, flows = sharded_workload(small_dring)
        parts = partition_flows(flows)
        assert len(parts) == NUM_VIRTUAL_SHARDS
        assert sum(len(p) for p in parts) == len(flows)
        order = {id(flow): i for i, flow in enumerate(flows)}
        for part in parts:
            positions = [order[id(flow)] for flow in part]
            assert positions == sorted(positions)

    def test_merge_is_associative(self, small_dring):
        _placement, flows = sharded_workload(small_dring)
        placement, _ = sharded_workload(small_dring)
        pieces = [
            simulate_fct_sharded(
                small_dring, EcmpRouting(small_dring), placement, flows,
                shard_index=i, shard_count=4,
            )
            for i in range(4)
        ]
        flat = merge_records(pieces)
        nested = merge_records(
            [merge_records(pieces[:2]), merge_records(pieces[2:])]
        )
        assert flat.to_json_dict() == nested.to_json_dict()

    def test_shard_geometry_validated(self, small_dring):
        placement, flows = sharded_workload(small_dring)
        with pytest.raises(ValueError):
            simulate_fct_sharded(
                small_dring, EcmpRouting(small_dring), placement, flows,
                shard_index=2, shard_count=2,
            )
        with pytest.raises(ValueError):
            simulate_fct_sharded(
                small_dring, EcmpRouting(small_dring), placement, flows,
                shard_index=0, shard_count=0,
            )


class TestNIndependence:
    """The merged cell is byte-identical for every shard count."""

    def test_simulator_level(self, small_dring):
        placement, flows = sharded_workload(small_dring)

        def merged(shard_count):
            return merge_records(
                [
                    simulate_fct_sharded(
                        small_dring, EcmpRouting(small_dring), placement,
                        flows, seed=0,
                        shard_index=i, shard_count=shard_count,
                    )
                    for i in range(shard_count)
                ]
            ).to_json_dict()

        baseline = merged(1)
        assert merged(2) == baseline
        assert merged(3) == baseline

    def test_fig4_harness_level(self):
        def tables(shards):
            specs = fig4_jobs(
                "tiny-shard", seed=0, patterns=["A2A"],
                schemes=scheme_labels(include_ecmp_flats=False)[:2],
                shards=shards,
            )
            results, outcomes = run_jobs(specs, jobs=1)
            assert all(o.status != FAILED for o in outcomes)
            figure = assemble_fig4(specs, results)
            return figure.median_table(), figure.p99_table()

        assert tables(2) == tables(1)

    def test_ml_cell_level(self):
        def merged(shard_count):
            return merge_ml_cell_shards(
                [
                    run_ml_cell_shard(
                        TINY, "dring", "ecmp", seed=0,
                        shard_index=i, shard_count=shard_count,
                        jobs=TINY_ML_JOBS,
                    )
                    for i in range(shard_count)
                ]
            )

        baseline = merged(1)
        assert merged(2) == baseline
        assert merged(3) == baseline
        assert baseline["sharded"] is True

    def test_ml_harness_level(self):
        def records(shards):
            specs = ml_jobs(
                "tiny-shard", seed=0, topologies=["dring"],
                schemes=["ecmp"], policies=["compact"],
                placement_seeds=[0], shards=shards,
            )
            results, outcomes = run_jobs(specs, jobs=1)
            assert all(o.status != FAILED for o in outcomes)
            return assemble_ml(specs, results)

        sharded = records(2)
        single = records(1)
        assert sharded == single

    def test_incomplete_shard_group_not_assembled(self):
        specs = fig4_jobs(
            "tiny-shard", seed=0, patterns=["A2A"],
            schemes=scheme_labels(include_ecmp_flats=False)[:1],
            shards=2,
        )
        results, _outcomes = run_jobs(specs, jobs=1)
        partial = {specs[0].key(): results[specs[0].key()]}
        figure = assemble_fig4(specs, partial)
        assert figure.rows == {}


class TestCrossProcess:
    def test_shard_job_deterministic_across_processes(self):
        """The same shard job computes identical bytes in a fresh OS
        process — the property that makes ``--shards`` submissions safe
        to scatter over workers and machines."""
        local = run_fig4_cell_shard(
            SMALL, "A2A", "DRing (su2)", seed=0,
            shard_index=0, shard_count=2,
        ).to_json_dict()
        script = (
            "import json\n"
            "from repro.experiments import SMALL\n"
            "from repro.experiments.fig4_fct import run_fig4_cell_shard\n"
            "cell = run_fig4_cell_shard(SMALL, 'A2A', 'DRing (su2)', seed=0,"
            " shard_index=0, shard_count=2)\n"
            "print(json.dumps(cell.to_json_dict(), sort_keys=True))\n"
        )
        fresh = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        )
        assert json.loads(fresh.stdout) == json.loads(
            json.dumps(local, sort_keys=True)
        )
