"""The rule base class and the global rule registry.

A rule is a named check over one :class:`~repro.lint.context.FileContext`
yielding :class:`~repro.lint.findings.Finding` objects.  Rules register
themselves at import time via :func:`register_rule`; the engine runs
every registered rule (or a requested subset) over every file.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Type

from repro.lint.context import FileContext
from repro.lint.findings import Finding


class Rule:
    """One invariant check.  Subclass and register.

    Class attributes:

    * ``name`` — stable kebab-case identity used in reports and
      suppression comments.
    * ``summary`` — one line, shown by ``repro lint --list-rules``.
    * ``invariant`` — the repository invariant the rule protects (why it
      exists, not what it matches).
    """

    name: str = ""
    summary: str = ""
    invariant: str = ""
    #: Per-file rules all run on the AST engine; ``--list-rules``
    #: groups output by this label (ast / flow / concurrency).
    engine: str = "ast"

    def applies(self, context: FileContext) -> bool:
        """Whether the rule runs on this file at all (path scoping)."""
        return True

    def check(self, context: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, context: FileContext, line: int, column: int, message: str
    ) -> Finding:
        return Finding(
            path=context.path,
            line=line,
            column=column,
            rule=self.name,
            message=message,
        )


RULE_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    RULE_REGISTRY[rule.name] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, by name."""
    import repro.lint.rules  # noqa: F401  (registers on import)

    return [RULE_REGISTRY[name] for name in sorted(RULE_REGISTRY)]


def rules_by_name(names: Optional[Sequence[str]] = None) -> List[Rule]:
    """Resolve a ``--rule`` selection; None means every rule."""
    rules = all_rules()
    if names is None:
        return rules
    known = {rule.name for rule in rules}
    unknown = sorted(set(names) - known)
    if unknown:
        raise KeyError(
            f"unknown lint rule(s) {unknown}; know {sorted(known)}"
        )
    wanted = set(names)
    return [rule for rule in rules if rule.name in wanted]


#: Signature every rule check satisfies, for typing convenience.
RuleCheck = Callable[[FileContext], Iterable[Finding]]
