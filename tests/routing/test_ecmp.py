"""Tests for ECMP shortest-path routing."""

import random

import networkx as nx
import pytest

from repro.routing import EcmpRouting, RoutingError, path_is_simple, path_is_valid


class TestPaths:
    def test_leafspine_paths_go_via_each_spine(self, small_leafspine):
        routing = EcmpRouting(small_leafspine)
        paths = routing.paths(0, 1)
        spines = set(small_leafspine.graph.graph["spines"])
        assert len(paths) == len(spines)
        assert {p[1] for p in paths} == spines

    def test_paths_are_valid_and_simple(self, small_dring):
        routing = EcmpRouting(small_dring)
        for src, dst in list(small_dring.rack_pairs())[:30]:
            for path in routing.paths(src, dst):
                assert path_is_valid(small_dring, path)
                assert path_is_simple(path)

    def test_adjacent_dring_racks_single_path(self, small_dring):
        # The paper's key observation: directly connected racks have
        # exactly one shortest path, so ECMP cannot load balance them.
        routing = EcmpRouting(small_dring)
        assert routing.paths(0, 2) == [(0, 2)]

    def test_all_paths_shortest(self, small_rrg):
        routing = EcmpRouting(small_rrg)
        for src, dst in list(small_rrg.rack_pairs())[:30]:
            dist = nx.shortest_path_length(small_rrg.graph, src, dst)
            for path in routing.paths(src, dst):
                assert len(path) - 1 == dist

    def test_same_rack_rejected(self, small_dring):
        routing = EcmpRouting(small_dring)
        with pytest.raises(RoutingError):
            routing.paths(3, 3)

    def test_unknown_switch_rejected(self, small_dring):
        routing = EcmpRouting(small_dring)
        with pytest.raises(RoutingError):
            routing.paths(0, 999)


class TestSampling:
    def test_sampled_path_is_shortest(self, small_dring, rng):
        routing = EcmpRouting(small_dring)
        for src, dst in list(small_dring.rack_pairs())[:20]:
            dist = nx.shortest_path_length(small_dring.graph, src, dst)
            path = routing.sample_path(src, dst, rng)
            assert len(path) - 1 == dist
            assert path_is_valid(small_dring, path)

    def test_sampling_covers_all_paths(self, small_leafspine):
        routing = EcmpRouting(small_leafspine)
        rng = random.Random(3)
        seen = {routing.sample_path(0, 1, rng) for _ in range(300)}
        assert seen == set(routing.paths(0, 1))


class TestFractions:
    def test_fractions_conserve_unit_flow(self, small_dring):
        routing = EcmpRouting(small_dring)
        for src, dst in list(small_dring.rack_pairs())[:20]:
            flows = routing.edge_fractions(src, dst)
            out_src = sum(v for (a, _b), v in flows.items() if a == src)
            into_dst = sum(v for (_a, b), v in flows.items() if b == dst)
            assert out_src == pytest.approx(1.0)
            assert into_dst == pytest.approx(1.0)

    def test_leafspine_splits_evenly_over_spines(self, small_leafspine):
        routing = EcmpRouting(small_leafspine)
        flows = routing.edge_fractions(0, 1)
        spines = small_leafspine.graph.graph["spines"]
        for spine in spines:
            assert flows[(0, spine)] == pytest.approx(1 / len(spines))

    def test_fractions_agree_with_sampling(self, small_dring):
        routing = EcmpRouting(small_dring)
        rng = random.Random(11)
        src, dst = 0, 5
        flows = routing.edge_fractions(src, dst)
        counts = {}
        trials = 4000
        for _ in range(trials):
            path = routing.sample_path(src, dst, rng)
            first_hop = (path[0], path[1])
            counts[first_hop] = counts.get(first_hop, 0) + 1
        for edge, count in counts.items():
            assert count / trials == pytest.approx(flows[edge], abs=0.05)

    def test_parallel_links_weighted(self):
        from repro.core.network import build_network

        net = build_network(
            [(0, 1), (0, 1), (0, 2), (2, 1)], {0: 1, 1: 1, 2: 1}
        )
        routing = EcmpRouting(net)
        flows = routing.edge_fractions(0, 1)
        # Distance 0->1 is 1; only the direct (doubled) link is shortest.
        assert flows == {(0, 1): pytest.approx(1.0)}
