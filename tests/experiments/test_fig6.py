"""Tests for the Figure 6 scale-sweep driver."""

import pytest

from repro.experiments import Fig6Config, render_fig6, run_fig6


@pytest.fixture(scope="module")
def sweep():
    config = Fig6Config(
        supernode_counts=(5, 9, 13, 17),
        flows_per_server=8,
        utilization_gbps_per_server=3.0,
    )
    return run_fig6(config, seed=1)


class TestSweep:
    def test_one_point_per_supernode_count(self, sweep):
        assert [p.supernodes for p in sweep] == [5, 9, 13, 17]
        assert [p.racks for p in sweep] == [10, 18, 26, 34]

    def test_fcts_positive(self, sweep):
        for point in sweep:
            assert point.dring_p99_ms > 0
            assert point.rrg_p99_ms > 0
            assert point.ratio > 0

    def test_dring_relative_performance_degrades(self, sweep):
        # The paper's qualitative claim: the ratio grows with scale.
        assert sweep[-1].ratio > sweep[0].ratio

    def test_render(self, sweep):
        text = render_fig6(sweep)
        assert "ratio" in text
        assert str(sweep[0].racks) in text

    def test_rejects_unknown_routing(self):
        config = Fig6Config(
            supernode_counts=(5,), routing="bogus", flows_per_server=1
        )
        with pytest.raises(ValueError):
            run_fig6(config)
