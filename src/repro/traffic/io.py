"""Traffic matrix file I/O.

The paper derives its "real world TMs" from Facebook's published
rack-level weights; operators reproducing the experiments on their own
fabric will have their own matrices.  This module defines a small JSON
interchange format (cluster shape + sparse rack-pair weights) with an
exact round-trip, so measured matrices can be dropped straight into the
Figure 4/5 drivers.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.traffic.matrix import CanonicalCluster, RackPair, TrafficMatrix

FORMAT_VERSION = 1


def to_json(tm: TrafficMatrix) -> str:
    """Serialize a traffic matrix to the interchange JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "name": tm.name,
        "cluster": {
            "num_racks": tm.cluster.num_racks,
            "servers_per_rack": tm.cluster.servers_per_rack,
        },
        "weights": [
            {"src": src, "dst": dst, "weight": tm.weights[(src, dst)]}
            for src, dst in sorted(tm.weights)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def from_json(text: str) -> TrafficMatrix:
    """Rebuild a traffic matrix from :func:`to_json` output.

    Validates the format version and delegates entry validation (ranges,
    signs, intra-rack entries) to :class:`TrafficMatrix` itself.
    """
    payload = json.loads(text)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported traffic-matrix format version {version!r}"
        )
    cluster = CanonicalCluster(
        num_racks=int(payload["cluster"]["num_racks"]),
        servers_per_rack=int(payload["cluster"]["servers_per_rack"]),
    )
    weights: Dict[RackPair, float] = {
        (int(entry["src"]), int(entry["dst"])): float(entry["weight"])
        for entry in payload["weights"]
    }
    return TrafficMatrix(cluster, weights, name=payload.get("name", "tm"))
