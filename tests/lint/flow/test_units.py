"""Unit-consistency inference on fixture packages."""

from __future__ import annotations

from repro.lint.flow.units import (
    DeepUnitConsistency,
    dimension_of_name,
)

from tests.lint.flow.util import build_fixture_graph


def _check(tmp_path, files, package="upkg"):
    _, graph = build_fixture_graph(tmp_path, files, package)
    return list(DeepUnitConsistency().check(graph))


class TestDimensionVocabulary:
    def test_rightmost_token_wins(self):
        assert dimension_of_name("capacity_gbps") == "Gbps"
        assert dimension_of_name("capacity_factor") == "fraction"
        assert dimension_of_name("gray_capacity_fraction") == "fraction"
        assert dimension_of_name("flow_count") == "count"
        assert dimension_of_name("warmup_seconds") == "seconds"

    def test_neutral_and_untagged_names(self):
        assert dimension_of_name("scale") is None
        assert dimension_of_name("value") is None

    def test_ml_collective_vocabulary(self):
        assert dimension_of_name("comm_size_bytes") == "bytes"
        assert dimension_of_name("comm") == "bytes"
        assert dimension_of_name("comp_time_s") == "seconds"
        assert dimension_of_name("iteration_time") == "seconds"
        assert dimension_of_name("num_layers") == "count"
        assert dimension_of_name("num_iterations") == "count"
        assert dimension_of_name("num_workers") == "count"

    def test_rightmost_wins_on_ml_names(self):
        # ``iteration`` alone counts; ``iteration_time`` is seconds.
        assert dimension_of_name("iteration") == "count"
        assert dimension_of_name("mean_iteration_time_s") == "seconds"
        # ``comm`` alone is bytes; its elapsed time is seconds.
        assert dimension_of_name("comm_time_s") == "seconds"


class TestArithmetic:
    def test_mixed_addition_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "calc.py": (
                "def mix(capacity_gbps, load_fraction):\n"
                "    return capacity_gbps + load_fraction\n"
            ),
        })
        assert len(findings) == 1
        assert "Gbps" in findings[0].message
        assert "fraction" in findings[0].message

    def test_same_dimension_addition_ok(self, tmp_path):
        assert _check(tmp_path, {
            "calc.py": (
                "def total(capacity_gbps, extra_gbps):\n"
                "    return capacity_gbps + extra_gbps\n"
            ),
        }) == []

    def test_multiplication_exempt(self, tmp_path):
        assert _check(tmp_path, {
            "calc.py": (
                "def derate(capacity_gbps, load_fraction):\n"
                "    return capacity_gbps * load_fraction\n"
            ),
        }) == []

    def test_mixed_comparison_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "calc.py": (
                "def check(link_count, warmup_seconds):\n"
                "    return link_count < warmup_seconds\n"
            ),
        })
        assert len(findings) == 1
        assert "comparison mixes" in findings[0].message


class TestCallSites:
    def test_cross_function_mismatch_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "calc.py": (
                "def consume(load_fraction):\n"
                "    return load_fraction\n"
                "\n"
                "def feed(capacity_gbps):\n"
                "    return consume(capacity_gbps)\n"
            ),
        })
        assert len(findings) == 1
        assert "parameter 'load_fraction'" in findings[0].message

    def test_keyword_argument_mismatch_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "calc.py": (
                "def consume(load_fraction=1.0):\n"
                "    return load_fraction\n"
                "\n"
                "def feed(capacity_gbps):\n"
                "    return consume(load_fraction=capacity_gbps)\n"
            ),
        })
        assert len(findings) == 1

    def test_ml_mismatch_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "calc.py": (
                "def consume(comm_size_bytes):\n"
                "    return comm_size_bytes\n"
                "\n"
                "def feed(comp_time_s):\n"
                "    return consume(comp_time_s)\n"
            ),
        })
        assert len(findings) == 1
        assert "parameter 'comm_size_bytes'" in findings[0].message

    def test_layers_plus_seconds_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "calc.py": (
                "def mix(num_layers, comp_time_s):\n"
                "    return num_layers + comp_time_s\n"
            ),
        })
        assert len(findings) == 1

    def test_layers_times_seconds_exempt(self, tmp_path):
        assert _check(tmp_path, {
            "calc.py": (
                "def scale_time(num_layers, comp_time_s):\n"
                "    return num_layers * comp_time_s\n"
            ),
        }) == []

    def test_matching_dimensions_quiet(self, tmp_path):
        assert _check(tmp_path, {
            "calc.py": (
                "def consume(load_fraction):\n"
                "    return load_fraction\n"
                "\n"
                "def feed(used_fraction):\n"
                "    return consume(used_fraction)\n"
            ),
        }) == []
