"""Tests for the C-S traffic model."""

import pytest

from repro.traffic import cs_matrix, cs_skewed_fig4, place_cs
from repro.traffic.matrix import CanonicalCluster


class TestPlacement:
    def test_packs_into_fewest_racks(self):
        cluster = CanonicalCluster(8, 10)
        placement = place_cs(cluster, num_clients=25, num_servers=40, seed=0)
        assert len(placement.clients_per_rack) == 3  # ceil(25/10)
        assert len(placement.servers_per_rack) == 4
        assert placement.num_clients == 25
        assert placement.num_servers == 40

    def test_client_and_server_racks_disjoint(self):
        cluster = CanonicalCluster(8, 10)
        placement = place_cs(cluster, 25, 40, seed=3)
        assert not (
            set(placement.clients_per_rack) & set(placement.servers_per_rack)
        )

    def test_rejects_overfull(self):
        cluster = CanonicalCluster(4, 10)
        with pytest.raises(ValueError):
            place_cs(cluster, 30, 30)

    def test_rejects_empty_sets(self):
        cluster = CanonicalCluster(4, 10)
        with pytest.raises(ValueError):
            place_cs(cluster, 0, 5)

    def test_deterministic_in_seed(self):
        cluster = CanonicalCluster(8, 10)
        a = place_cs(cluster, 15, 25, seed=7)
        b = place_cs(cluster, 15, 25, seed=7)
        assert a == b


class TestMatrix:
    def test_weights_are_pair_products(self):
        cluster = CanonicalCluster(8, 10)
        tm = cs_matrix(cluster, 10, 10, seed=0)
        # One full client rack, one full server rack: weight 100.
        assert list(tm.weights.values()) == [100.0]

    def test_incast_case(self):
        cluster = CanonicalCluster(8, 10)
        tm = cs_matrix(cluster, 10, 1, seed=0)
        assert sum(tm.weights.values()) == pytest.approx(10.0)

    def test_fig4_skewed_shape(self):
        cluster = CanonicalCluster(16, 16)  # n = 256 hosts
        tm = cs_skewed_fig4(cluster, seed=0)
        total_clients = 256 // 4
        total_servers = 256 // 16
        assert sum(tm.weights.values()) == pytest.approx(
            total_clients * total_servers
        )
