"""Tests for the permutation-throughput boundary study."""

import pytest

from repro.experiments import (
    permutation_throughput,
    render_permutation,
    run_permutation_study,
)
from repro.topology import dring, leaf_spine


class TestPermutationThroughput:
    def test_leafspine_hits_exact_oversubscription_bound(self):
        point = permutation_throughput(leaf_spine(12, 4), seed=0)
        # Symmetric ECMP over all spines: exactly y/x per server, on any
        # permutation.
        assert point.mean_fraction == pytest.approx(4 / 12, rel=1e-6)
        assert point.worst_fraction == pytest.approx(4 / 12, rel=1e-6)

    def test_flat_networks_use_su2(self):
        point = permutation_throughput(
            dring(8, 2, servers_per_rack=6), seed=0
        )
        assert point.routing == "su(2)"
        assert 0 < point.worst_fraction <= point.mean_fraction <= 1

    def test_boundary_holds_leafspine_wins_permutation(self):
        # The honest boundary (EXPERIMENTS.md E24): on a single rack
        # permutation at this scale, Clos symmetry beats the flat
        # rebuilds under oblivious routing.
        points = run_permutation_study(seed=0)
        by_name = {p.topology: p for p in points}
        ls = by_name["leaf-spine(12,4)"]
        for name, point in by_name.items():
            if name != ls.topology:
                assert point.mean_fraction < ls.mean_fraction

    def test_deterministic(self):
        a = run_permutation_study(seed=2)
        b = run_permutation_study(seed=2)
        assert a == b

    def test_render(self):
        text = render_permutation(run_permutation_study(seed=0))
        assert "Permutation" in text and "rrg" in text
