"""Unit tests for the array-backed engine's building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LinkTable
from repro.harness.clock import fixed_clock
from repro.routing import EcmpRouting
from repro.sim.engine import trace as sim_trace
from repro.sim.engine import Incidence, SimTrace, collecting, compile_routing
from repro.topology import dring


class TestLinkTable:
    def test_ids_follow_directed_capacities_order(self, small_dring):
        table = small_dring.link_table()
        directed = small_dring.directed_capacities()
        assert table.pairs == tuple(directed)
        for index, ((u, v), capacity) in enumerate(directed.items()):
            assert table.id_of(u, v) == index
            assert table.capacity_of(index) == capacity
            assert table.pair_of(index) == (u, v)

    def test_capacities_are_read_only(self, small_dring):
        table = small_dring.link_table()
        with pytest.raises(ValueError):
            table.capacities[0] = 99.0

    def test_switch_indexing(self, small_dring):
        table = small_dring.link_table()
        assert table.switches == tuple(small_dring.switches)
        assert table.num_switches == len(small_dring.switches)
        for index, switch in enumerate(table.switches):
            assert table.switch_id(switch) == index
            assert table.has_switch(switch)
        assert not table.has_switch(10_000)

    def test_cables_match_trunk_multiplicities(self, small_dring):
        table = small_dring.link_table()
        cables = table.cables()
        assert len(cables) == sum(m for _u, _v, m in table.trunks)
        assert all(u <= v for u, v in cables)

    def test_normalized_trunks_sorted_unique(self, small_dring):
        trunks = small_dring.link_table().normalized_trunks()
        assert trunks == sorted(trunks)
        assert len(trunks) == len(set(trunks))

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            LinkTable(pairs=[(0, 1)], capacities=[], trunks=[], switches=[])


class TestLinkTableCaching:
    def test_cached_until_mutation(self, small_dring):
        first = small_dring.link_table()
        assert small_dring.link_table() is first
        assert first.version == small_dring.topology_version

    def test_remove_link_invalidates(self, small_dring):
        before = small_dring.link_table()
        u, v, _m = before.trunks[0]
        small_dring.remove_link(u, v)
        after = small_dring.link_table()
        assert after is not before
        assert after.version > before.version
        assert len(after) < len(before)

    def test_capacity_scale_invalidates(self, small_dring):
        before = small_dring.link_table()
        u, v, _m = before.trunks[0]
        small_dring.set_link_capacity_scale(u, v, 0.5)
        after = small_dring.link_table()
        assert after is not before
        assert after.capacity_of(after.id_of(u, v)) == pytest.approx(
            0.5 * before.capacity_of(before.id_of(u, v))
        )


class TestIncidence:
    def test_append_and_views(self):
        inc = Incidence()
        inc.append(0, [3, 5])
        inc.append(1, [5], value=2.0)
        assert inc.ent.tolist() == [0, 0, 1]
        assert inc.lnk.tolist() == [3, 5, 5]
        assert inc.val.tolist() == [1.0, 1.0, 2.0]

    def test_compact_preserves_order(self):
        inc = Incidence()
        inc.append(0, [1, 2])
        inc.append(1, [3])
        inc.append(2, [4, 5])
        keep = np.array([True, False, True])
        inc.compact(keep)
        assert inc.ent.tolist() == [0, 0, 2, 2]
        assert inc.lnk.tolist() == [1, 2, 4, 5]

    def test_growth_beyond_initial_capacity(self):
        inc = Incidence()
        for entity in range(700):
            inc.append(entity, [entity, entity + 1, entity + 2])
        assert len(inc.ent) == 2100
        assert inc.ent[-1] == 699
        assert inc.lnk[-1] == 701


class TestSimTrace:
    def test_count_and_merge(self):
        a, b = SimTrace(), SimTrace()
        a.count("events")
        a.count("events", 4)
        b.count("events", 2)
        b.add_time("allocate", 0.5)
        a.merge(b)
        assert a.counters == {"events": 7}
        assert a.timers == {"allocate": 0.5}

    def test_to_dict_omits_empty_sections(self):
        trace = SimTrace()
        assert trace.to_dict() == {}
        assert not trace
        trace.count("events")
        assert trace.to_dict() == {"counters": {"events": 1}}
        assert trace

    def test_phase_uses_injectable_clock(self):
        trace = SimTrace()
        with fixed_clock(step=2.0):
            with trace.phase("solve"):
                pass
        assert trace.timers["solve"] == pytest.approx(2.0)

    def test_snapshot_ranks_and_labels(self):
        trace = SimTrace()
        trace.snapshot_utilization(
            "run",
            {("net", 1, 2): 0.5, ("up", 3): 0.9, ("down", 4): 0.5},
            top=2,
        )
        snapshot = trace.snapshots[0]
        assert snapshot["label"] == "run"
        assert [h["link"] for h in snapshot["hottest"]] == ["up:3", "down:4"]

    def test_collector_install_and_restore(self):
        assert sim_trace.current() is None
        with collecting() as collector:
            assert sim_trace.current() is collector
            collector.count("events")
        assert sim_trace.current() is None

    def test_simulator_reports_into_collector(self, small_dring):
        from repro.sim import simulate_fct
        from repro.traffic import CanonicalCluster, Placement, Flow

        placement = Placement(
            CanonicalCluster(small_dring.num_racks, 4), small_dring
        )
        with collecting() as collector:
            simulate_fct(
                small_dring,
                EcmpRouting(small_dring),
                placement,
                [Flow(0, 23, 1e6, 0.0)],
            )
        assert collector.counters["flows_admitted"] == 1
        assert collector.counters["flows_completed"] == 1
        assert collector.counters["events"] >= 1
        assert "allocate" in collector.timers
        assert collector.snapshots


class TestCompileCaching:
    def test_compile_caches_per_table(self, small_dring):
        routing = EcmpRouting(small_dring)
        table = small_dring.link_table()
        compiled = routing.compile(table)
        assert routing.compile(table) is compiled
        assert routing.compile() is compiled  # same cached table

    def test_topology_change_recompiles(self):
        net = dring(6, 2, servers_per_rack=4)
        routing = EcmpRouting(net)
        compiled = routing.compile()
        u, v, _m = net.link_table().trunks[0]
        net.set_link_capacity_scale(u, v, 0.5)
        assert routing.compile() is not compiled

    def test_compile_routing_produces_sampling_tables(self, small_dring):
        table = small_dring.link_table()
        compiled = compile_routing(EcmpRouting(small_dring), table)
        import random

        racks = small_dring.racks
        path, links = compiled.sample(racks[0], racks[5], random.Random(0))
        assert path[0] == racks[0] and path[-1] == racks[5]
        assert [table.pair_of(i) for i in links] == list(
            zip(path, path[1:])
        )
