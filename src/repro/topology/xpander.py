"""Xpander: a deterministic-structure expander built from random lifts.

Valadarsky et al. (CoNEXT '16) construct Xpander as a k-lift of the
complete graph K_{d+1}: each of the d+1 vertices becomes a *meta-node* of
k switches, and each edge of K_{d+1} becomes a random perfect matching
between the two meta-nodes.  The result is d-regular with (d+1)k switches
and expansion close to a random regular graph, while being friendlier to
cabling (links are organized meta-node to meta-node).

The paper under reproduction cites Xpander as matching Jellyfish's
performance (Section 2), and we include it both as a second expander
baseline and for the "other flat topologies" discussion of Section 7.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import networkx as nx

from repro.core.network import Network, NetworkValidationError, distribute_evenly
from repro.core.units import DEFAULT_LINK_GBPS


def xpander_edges(
    network_degree: int, lift: int, seed: int = 0
) -> List[Tuple[int, int]]:
    """Edges of an Xpander with the given network degree and lift size.

    Switch ids are meta-node-major: switch ``meta * lift + j`` is the
    j-th switch of meta-node ``meta``.
    """
    if network_degree < 2:
        raise NetworkValidationError("Xpander needs network degree >= 2")
    if lift < 1:
        raise NetworkValidationError("lift size must be >= 1")
    rng = random.Random(seed)
    num_meta = network_degree + 1
    edges: List[Tuple[int, int]] = []
    for meta_a in range(num_meta):
        for meta_b in range(meta_a + 1, num_meta):
            # Random perfect matching between the two meta-nodes.
            permutation = list(range(lift))
            rng.shuffle(permutation)
            for j in range(lift):
                edges.append((meta_a * lift + j, meta_b * lift + permutation[j]))
    return edges


def xpander(
    network_degree: int,
    lift: int,
    servers_per_rack: int,
    link_capacity: float = DEFAULT_LINK_GBPS,
    seed: int = 0,
    name: str = "",
) -> Network:
    """Build an Xpander network with servers on every switch (flat)."""
    if servers_per_rack < 1:
        raise NetworkValidationError("servers_per_rack must be >= 1")
    num_switches = (network_degree + 1) * lift
    graph = nx.Graph()
    graph.add_nodes_from(range(num_switches))
    for u, v in xpander_edges(network_degree, lift, seed=seed):
        if graph.has_edge(u, v):
            graph[u][v]["mult"] += 1
        else:
            graph.add_edge(u, v, mult=1)
    servers: Dict[int, int] = {i: servers_per_rack for i in range(num_switches)}
    network = Network(
        graph,
        servers,
        link_capacity=link_capacity,
        name=name or f"xpander(d={network_degree},k={lift})",
    )
    network.graph.graph["xpander_lift"] = lift
    network.validate(max_radix=network_degree + servers_per_rack)
    return network


def xpander_matching_equipment(
    num_switches: int,
    network_degree: int,
    total_servers: int,
    link_capacity: float = DEFAULT_LINK_GBPS,
    seed: int = 0,
    name: str = "",
) -> Network:
    """Best-effort Xpander for a target switch count and server total.

    Picks the lift size so that ``(network_degree + 1) * lift`` is as
    close to ``num_switches`` as possible without exceeding it, then
    spreads ``total_servers`` evenly.  Raises when no lift fits.
    """
    lift = num_switches // (network_degree + 1)
    if lift < 1:
        raise NetworkValidationError(
            f"{num_switches} switches cannot host an Xpander of degree "
            f"{network_degree}"
        )
    actual_switches = (network_degree + 1) * lift
    counts = distribute_evenly(total_servers, actual_switches)
    base = xpander(
        network_degree,
        lift,
        servers_per_rack=1,
        link_capacity=link_capacity,
        seed=seed,
        name=name or f"xpander(~{num_switches}sw)",
    )
    servers = {i: counts[i] for i in range(actual_switches)}
    network = Network(
        base.graph,
        servers,
        link_capacity=link_capacity,
        name=base.name,
    )
    network.validate(max_radix=network_degree + max(counts))
    return network
