"""A thin stdlib client for the service API.

Speaks exactly the JSON routes :mod:`repro.service.api` serves, over
``urllib`` — no new dependencies.  The CLI verbs ``repro
submit|status|results|leaderboard`` are built on this; it is equally
usable as a library::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8277")
    job = client.submit({"experiment": "fig4", "scale": "small",
                         "scheme": "DRing (su2)", "pattern": "A2A"})
    final = client.wait(job["id"])
    board = client.leaderboard(metric="p99_fct_ms")
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.service.jobs import TERMINAL_STATES


class ServiceError(RuntimeError):
    """An API error response (or transport failure)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}" if status else message)
        self.status = status
        self.message = message


class ServiceClient:
    """JSON-over-HTTP calls against one service base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(dict(body)).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                payload = json.loads(response.read().decode())
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, _error_message(exc)) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.base_url}: "
                                  f"{exc.reason}") from None
        if not isinstance(payload, dict):
            raise ServiceError(0, "malformed response (not a JSON object)")
        return payload

    # -- API surface ---------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(self, submission: Mapping[str, Any]) -> Dict[str, Any]:
        """POST one cell; returns the created job dict."""
        return self._request("POST", "/jobs", body=submission)["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        return list(self._request("GET", "/jobs")["jobs"])

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def events(
        self, job_id: str, after: int = 0, timeout: float = 0.0
    ) -> Dict[str, Any]:
        """The job's events past ``after``; blocks up to ``timeout``."""
        path = f"/jobs/{job_id}/events?after={after}&timeout={timeout}"
        return self._request(
            "GET", path, timeout=self.timeout + timeout
        )

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")["job"]

    def results(self) -> Dict[str, Any]:
        return self._request("GET", "/results")

    def result(self, key: str) -> Dict[str, Any]:
        return self._request("GET", f"/results/{key}")["result"]

    def leaderboard(
        self, metric: Optional[str] = None, limit: Optional[int] = None
    ) -> Dict[str, Any]:
        params = []
        if metric is not None:
            params.append(f"metric={metric}")
        if limit is not None:
            params.append(f"limit={limit}")
        query = "?" + "&".join(params) if params else ""
        return self._request("GET", "/leaderboard" + query)

    # -- conveniences --------------------------------------------------

    def wait(
        self,
        job_id: str,
        poll_seconds: float = 10.0,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Long-poll the event stream until the job is terminal.

        ``on_event`` sees every event exactly once, in order.  Returns
        the final job dict.
        """
        after = 0
        while True:
            page = self.events(job_id, after=after, timeout=poll_seconds)
            for event in page["events"]:
                after = max(after, int(event["seq"]))
                if on_event is not None:
                    on_event(event)
            if page["state"] in TERMINAL_STATES and not page["events"]:
                return self.job(job_id)


def _error_message(exc: urllib.error.HTTPError) -> str:
    try:
        payload = json.loads(exc.read().decode())
        message = payload.get("error")
        if isinstance(message, str):
            return message
    except (OSError, ValueError):
        pass
    return exc.reason if isinstance(exc.reason, str) else str(exc)
