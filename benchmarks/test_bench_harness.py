"""Harness acceptance: a warm cached sweep is >= 5x faster than cold.

Runs the full Figure 4 grid (7 patterns x 5 schemes) at a tiny
registered scale through the sweep harness twice against the same cache
directory.  The cold pass executes every cell; the warm pass must be a
100% cache hit and at least 5x faster, and both must render identical
tables.  The two manifests are saved side by side as the artifact.
"""

import time

from conftest import save_artifact
from repro.experiments.runner import Scale, register_scale
from repro.harness import (
    ResultCache,
    RunManifest,
    assemble_fig4,
    fig4_jobs,
    run_jobs,
)

TINY = register_scale(
    Scale(
        name="tiny-bench",
        leaf_x=6,
        leaf_y=2,
        dring_m=6,
        dring_n=2,
        dring_servers=48,
        max_flows=150,
        window_seconds=0.02,
        size_cap_bytes=10e6,
    )
)


def sweep(cache, jobs=2):
    specs = fig4_jobs("tiny-bench", seed=0)
    start = time.perf_counter()
    results, outcomes = run_jobs(specs, jobs=jobs, cache=cache)
    wall = time.perf_counter() - start
    manifest = RunManifest.from_outcomes(
        outcomes, sweep="fig4", wall_seconds=wall, scale="tiny-bench",
        workers=jobs, cache_dir=str(cache.root),
    )
    return assemble_fig4(specs, results), manifest


def test_bench_warm_sweep_is_5x_faster(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold_figure, cold = sweep(cache)
    warm_figure, warm = sweep(cache)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    save_artifact(
        "harness_cache.txt",
        "\n".join(
            [
                "cold sweep:",
                cold.render(),
                "",
                "warm sweep:",
                warm.render(),
                "",
                f"speedup: {cold.wall_seconds / warm.wall_seconds:.1f}x",
            ]
        ),
    )

    assert cold.executed == cold.total
    assert warm.hits == warm.total
    assert warm.hit_rate == 1.0
    assert not warm.failures
    assert cold.wall_seconds >= 5.0 * warm.wall_seconds
    assert warm_figure.median_table() == cold_figure.median_table()
    assert warm_figure.p99_table() == cold_figure.p99_table()
