"""Tests for the Figure 4 experiment driver (scaled down for speed)."""

import pytest

from repro.experiments import SMALL, Scale, fig4_patterns, run_fig4
from repro.experiments.fig4_fct import PatternSpec
from repro.traffic import rack_to_rack, uniform

TINY = Scale(
    name="tiny",
    leaf_x=6,
    leaf_y=2,
    dring_m=6,
    dring_n=1,
    dring_servers=48,
    max_flows=250,
    window_seconds=0.02,
    size_cap_bytes=2e6,
)


@pytest.fixture(scope="module")
def tiny_result():
    patterns = [
        PatternSpec("A2A", uniform(TINY.cluster)),
        PatternSpec("R2R", rack_to_rack(TINY.cluster)),
    ]
    return run_fig4(TINY, seed=0, patterns=patterns)


class TestPatterns:
    def test_seven_patterns_in_paper_order(self):
        patterns = fig4_patterns(SMALL, seed=0)
        labels = [p.label for p in patterns]
        assert labels == [
            "A2A",
            "R2R",
            "CS skewed",
            "FB skewed",
            "FB uniform",
            "FB skewed (RP)",
            "FB uniform (RP)",
        ]
        assert patterns[5].random_placement
        assert not patterns[0].random_placement


class TestRun:
    def test_grid_fully_populated(self, tiny_result):
        assert set(tiny_result.rows) == {"A2A", "R2R"}
        for by_scheme in tiny_result.rows.values():
            assert len(by_scheme) == 5
            for results in by_scheme.values():
                assert results.num_flows > 0

    def test_tables_render(self, tiny_result):
        assert "A2A" in tiny_result.median_table()
        assert "R2R" in tiny_result.p99_table()

    def test_ratio_helper(self, tiny_result):
        ratio = tiny_result.ratio(
            "A2A", "leaf-spine (ecmp)", "DRing (su2)", metric="median"
        )
        assert ratio > 0

    def test_same_workload_every_scheme(self, tiny_result):
        # The per-scheme flow counts must be identical: the workload is
        # authored in canonical space and shared.
        for by_scheme in tiny_result.rows.values():
            counts = {r.num_flows for r in by_scheme.values()}
            assert len(counts) == 1
