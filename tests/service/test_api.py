"""The HTTP surface: real sockets on port 0, happy paths and errors."""

import json
import multiprocessing
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.api import create_server
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobManager
from repro.service.store import ServiceStore

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="service workers run jobs in forked processes",
)

OK = {"experiment": "selftest", "params": {"mode": "ok", "value": 7}}


@pytest.fixture
def service(tmp_path):
    store = ServiceStore(tmp_path / "store")
    manager = JobManager(store, workers=1).start()
    server = create_server("127.0.0.1", 0, manager, store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url, timeout=30.0)
    yield client, manager, store
    manager.shutdown()
    server.shutdown()
    server.server_close()
    thread.join(timeout=10.0)


class TestHealth:
    def test_healthz_reports_counts(self, service):
        client, _, _ = service
        payload = client.health()
        assert payload["status"] == "ok"
        assert set(payload["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled"
        }


@fork_only
class TestJobs:
    def test_submit_and_fetch(self, service):
        client, _, _ = service
        job = client.submit(OK)
        assert job["id"].startswith("job-")
        assert job["state"] in {"queued", "running"}
        fetched = client.job(job["id"])
        assert fetched["key"] == job["key"]

    def test_wait_streams_events_to_done(self, service):
        client, _, _ = service
        job = client.submit(OK)
        seen = []
        final = client.wait(job["id"], on_event=seen.append)
        assert final["state"] == "done"
        kinds = [e["kind"] for e in seen]
        assert kinds[0] == "queued" and kinds[-1] == "done"
        seqs = [e["seq"] for e in seen]
        assert seqs == sorted(set(seqs))

    def test_jobs_listing(self, service):
        client, _, _ = service
        client.wait(client.submit(OK)["id"])
        listing = client.jobs()
        assert len(listing) == 1 and listing[0]["state"] == "done"

    def test_cancel_route(self, service):
        client, manager, _ = service
        job = client.submit({
            "experiment": "selftest",
            "params": {"mode": "sleep", "seconds": 120},
        })
        manager.wait_for_events(job["id"], after=1, timeout=60.0)
        cancelled = client.cancel(job["id"])
        assert cancelled["id"] == job["id"]
        final = client.wait(job["id"])
        assert final["state"] == "cancelled"

    def test_delete_cancels_queued_job(self, service):
        client, manager, _ = service
        with manager._cond:  # hold the lock so the worker cannot start
            job = manager.submit(dict(OK, seed=5))
            request = urllib.request.Request(
                client.base_url + f"/jobs/{job.id}", method="DELETE"
            )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            payload = json.loads(response.read().decode())
        assert payload["job"]["state"] in {"cancelled", "running",
                                           "done"}


class TestErrors:
    def test_unknown_experiment_is_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as err:
            client.submit({"experiment": "nope"})
        assert err.value.status == 400
        assert "unknown experiment" in err.value.message

    def test_empty_body_is_400(self, service):
        client, _, _ = service
        request = urllib.request.Request(
            client.base_url + "/jobs", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30.0)
        assert err.value.code == 400

    def test_malformed_json_is_400(self, service):
        client, _, _ = service
        request = urllib.request.Request(
            client.base_url + "/jobs", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30.0)
        assert err.value.code == 400

    def test_unknown_job_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as err:
            client.job("job-999999")
        assert err.value.status == 404

    def test_unknown_route_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_queue_full_is_429(self, tmp_path):
        store = ServiceStore(tmp_path / "store429")
        manager = JobManager(store, workers=1, queue_limit=1)
        # manager never started: the queue cannot drain
        server = create_server("127.0.0.1", 0, manager, store)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            client = ServiceClient(server.url, timeout=30.0)
            client.submit(OK)
            with pytest.raises(ServiceError) as err:
                client.submit(dict(OK, seed=1))
            assert err.value.status == 429
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10.0)

    def test_bad_query_param_is_400(self, service):
        client, manager, _ = service
        job = manager.submit(dict(OK, seed=9))
        with pytest.raises(ServiceError) as err:
            client._request(
                "GET", f"/jobs/{job.id}/events?after=three"
            )
        assert err.value.status == 400

    def test_unknown_result_is_404(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as err:
            client.result("0" * 24)
        assert err.value.status == 404

    def test_unknown_metric_is_400(self, service):
        client, _, _ = service
        with pytest.raises(ServiceError) as err:
            client.leaderboard(metric="vibes")
        assert err.value.status == 400


@fork_only
class TestResults:
    def test_results_listing_after_job(self, service):
        client, _, store = service
        final = client.wait(client.submit(OK)["id"])
        listing = client.results()
        assert listing["count"] == 1
        assert listing["results"][0]["key"] == final["key"]
        assert listing["total_bytes"] > 0
        assert listing["max_bytes"] == store.max_bytes

    def test_result_fetch_round_trips_payload(self, service):
        client, _, _ = service
        final = client.wait(client.submit(OK)["id"])
        payload = client.result(final["key"])
        assert payload["result"]["echo"] == 7

    def test_empty_leaderboard(self, service):
        client, _, _ = service
        board = client.leaderboard()
        assert board["rows"] == []
        assert board["metric"] == "p99_fct_ms"
