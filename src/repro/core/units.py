"""Physical units and constants used across the library.

All link rates are expressed in gigabits per second (Gbps) and all flow
sizes in bytes, matching the setup in the paper (10 Gbps links, Pareto
flow sizes with a 100 KB mean).  Times are in seconds unless a function
explicitly says otherwise; flow-completion times are usually reported in
milliseconds because that is how the paper's Figure 4 is labeled.
"""

from __future__ import annotations

#: Default link rate used in the paper's simulations (Section 5.3).
DEFAULT_LINK_GBPS: float = 10.0

#: Mean flow size of the Pareto workload (Section 5.2), in bytes.
DEFAULT_MEAN_FLOW_BYTES: float = 100_000.0

#: Pareto shape ("scale" in the paper's wording) of the flow size law.
DEFAULT_PARETO_SHAPE: float = 1.05

#: Spine-layer utilization the paper scales traffic matrices to (Section 6.1).
DEFAULT_SPINE_UTILIZATION: float = 0.30

BITS_PER_BYTE: int = 8
SECONDS_PER_MS: float = 1e-3


def bytes_to_gbits(num_bytes: float) -> float:
    """Convert a byte count to gigabits."""
    return num_bytes * BITS_PER_BYTE / 1e9


def transfer_seconds(num_bytes: float, rate_gbps: float) -> float:
    """Time to move ``num_bytes`` at a steady ``rate_gbps``.

    Raises :class:`ValueError` for a non-positive rate rather than
    returning infinity, because a zero rate in the simulator indicates a
    bug in the allocator (every active flow must receive bandwidth).
    """
    if rate_gbps <= 0.0:
        raise ValueError(f"rate must be positive, got {rate_gbps}")
    return bytes_to_gbits(num_bytes) / rate_gbps


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / SECONDS_PER_MS
