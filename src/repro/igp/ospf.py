"""An OSPF-style fabric: synchronous flooding + per-router SPF.

The control plane an ordinary leaf-spine actually runs (Section 2):
every switch originates a link-state advertisement, flooding spreads the
freshest LSAs one hop per round, and once the databases agree each
switch runs Dijkstra locally to install equal-cost next hops.  The
engine verifies the paper's implicit premise — that this standard stack
computes exactly the ECMP shortest-path DAG the simulators assume — and
measures reconvergence after failures the same way the BGP engine does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.network import Network
from repro.igp.lsdb import LinkStateAd, LinkStateDatabase


@dataclass(frozen=True)
class OspfReport:
    """Outcome of running flooding to a fixpoint."""

    rounds: int
    lsas_flooded: int


class OspfFabric:
    """Link-state routing over one network."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._sequence: Dict[int, int] = {s: 1 for s in network.switches}
        self.databases: Dict[int, LinkStateDatabase] = {
            s: LinkStateDatabase() for s in network.switches
        }
        self._routes: Optional[Dict[int, Dict[int, Tuple[int, List[int]]]]] = None
        self._report: Optional[OspfReport] = None

    # ------------------------------------------------------------------
    # LSA origination and flooding
    # ------------------------------------------------------------------

    def _originate(self, switch: int) -> LinkStateAd:
        adjacencies = frozenset(
            (neighbor, 1)
            for neighbor in self.network.graph.neighbors(switch)
        )
        return LinkStateAd(
            origin=switch,
            sequence=self._sequence[switch],
            adjacencies=adjacencies,
        )

    def _flood(
        self, pending: Dict[int, Set[int]], max_rounds: int
    ) -> OspfReport:
        """Propagate only *changed* LSAs, one hop per round.

        ``pending[switch]`` holds the LSA origins whose fresher copies
        the switch must forward — the selective flooding real OSPF does,
        which is what makes incremental repair cheap.
        """
        rounds = 0
        flooded = 0
        while pending and rounds < max_rounds:
            rounds += 1
            changed: Dict[int, Set[int]] = {}
            for switch in sorted(pending):
                db = self.databases[switch]
                for neighbor in self.network.graph.neighbors(switch):
                    neighbor_db = self.databases[neighbor]
                    for origin in sorted(pending[switch]):
                        ad = db.get(origin)
                        if ad is None:
                            continue
                        flooded += 1
                        if neighbor_db.install(ad):
                            changed.setdefault(neighbor, set()).add(origin)
            pending = changed
        if pending:
            raise RuntimeError(f"flooding did not settle in {max_rounds} rounds")
        self._routes = None
        report = OspfReport(rounds=rounds, lsas_flooded=flooded)
        self._report = report
        return report

    def converge(self, max_rounds: int = 10_000) -> OspfReport:
        """Flood until every database stops changing."""
        # Seed: each router installs its own LSA.
        pending: Dict[int, Set[int]] = {}
        for switch in self.network.switches:
            if self.databases[switch].install(self._originate(switch)):
                pending.setdefault(switch, set()).add(switch)
        return self._flood(pending, max_rounds)

    @property
    def report(self) -> OspfReport:
        if self._report is None:
            raise RuntimeError("call converge() first")
        return self._report

    def databases_consistent(self) -> bool:
        """True when every router holds the same LSDB fingerprint."""
        digests = {db.digest() for db in self.databases.values()}
        return len(digests) == 1

    # ------------------------------------------------------------------
    # SPF
    # ------------------------------------------------------------------

    def _spf(self, switch: int) -> Dict[int, Tuple[int, List[int]]]:
        """Dijkstra over this router's own LSDB.

        Returns ``dst -> (distance, [equal-cost next hops])``.  Only
        bidirectionally-confirmed adjacencies count (the two-way check
        real OSPF applies), so a half-withdrawn link never forwards.
        """
        db = self.databases[switch]
        adjacency: Dict[int, Set[int]] = {}
        for ad in db.ads():
            for neighbor, _cost in ad.adjacencies:
                back = db.get(neighbor)
                if back is not None and any(
                    n == ad.origin for n, _c in back.adjacencies
                ):
                    adjacency.setdefault(ad.origin, set()).add(neighbor)

        import heapq

        dist: Dict[int, int] = {switch: 0}
        first_hops: Dict[int, Set[int]] = {switch: set()}
        heap = [(0, switch)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for neighbor in adjacency.get(node, ()):
                nd = d + 1
                hops = (
                    {neighbor} if node == switch else set(first_hops[node])
                )
                if nd < dist.get(neighbor, float("inf")):
                    dist[neighbor] = nd
                    first_hops[neighbor] = set(hops)
                    heapq.heappush(heap, (nd, neighbor))
                elif nd == dist[neighbor]:
                    first_hops[neighbor] |= hops
        return {
            dst: (dist[dst], sorted(first_hops[dst]))
            for dst in dist
            if dst != switch
        }

    def routes(self) -> Dict[int, Dict[int, Tuple[int, List[int]]]]:
        """Per-router SPF results, computed lazily after convergence."""
        if self._report is None:
            raise RuntimeError("call converge() first")
        if self._routes is None:
            self._routes = {
                switch: self._spf(switch) for switch in self.network.switches
            }
        return self._routes

    def next_hops(self, switch: int, dst: int) -> List[int]:
        """The installed equal-cost next hops at ``switch`` toward ``dst``."""
        entry = self.routes().get(switch, {}).get(dst)
        if entry is None:
            raise ValueError(f"{switch} has no route to {dst}")
        return entry[1]

    def distance(self, switch: int, dst: int) -> int:
        entry = self.routes().get(switch, {}).get(dst)
        if entry is None:
            raise ValueError(f"{switch} has no route to {dst}")
        return entry[0]

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------

    def fail_link(self, u: int, v: int, max_rounds: int = 10_000) -> OspfReport:
        """Fail one physical link and re-flood incrementally.

        Bundled links fail one member at a time: the trunk's
        multiplicity is decremented and the adjacency (hence the LSDB)
        only changes when the *last* member dies — losing one cable of a
        trunk costs zero flooding, exactly as real OSPF behaves.
        """
        if self._report is None:
            raise RuntimeError("converge() must run before failing links")
        if not self.network.graph.has_edge(u, v):
            raise ValueError(f"no link ({u}, {v}) to fail")
        if self.network.remove_link(u, v) > 0:
            # Trunk members remain: the adjacency survives, no LSA
            # changes, nothing to flood and the routes stay valid.
            report = OspfReport(rounds=0, lsas_flooded=0)
            self._report = report
            return report
        # The two endpoints notice and re-originate with bumped sequence.
        pending: Dict[int, Set[int]] = {}
        for endpoint in (u, v):
            self._sequence[endpoint] += 1
            if self.databases[endpoint].install(self._originate(endpoint)):
                pending.setdefault(endpoint, set()).add(endpoint)
        return self._flood(pending, max_rounds)


def build_converged_igp(network: Network) -> OspfFabric:
    """Construct and converge the link-state fabric (on a copy)."""
    fabric = OspfFabric(network.copy())
    fabric.converge()
    return fabric
