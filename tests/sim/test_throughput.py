"""Tests for the steady-state commodity throughput solver."""

import pytest

from repro.core.metrics import leaf_spine_udf
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim import (
    commodity_throughput,
    cs_throughput,
    place_cs_concrete,
    tm_throughput,
)
from repro.topology import dring, flatten, leaf_spine


class TestCommodityThroughput:
    def test_single_commodity_bounded_by_host_links(self, small_dring):
        routing = EcmpRouting(small_dring)
        report = commodity_throughput(
            small_dring,
            routing,
            {(0, 5): 1.0},
            src_host_capacity={0: 10.0},
            dst_host_capacity={5: 10.0},
        )
        assert report.total_gbps == pytest.approx(10.0)

    def test_weights_share_proportionally(self, small_dring):
        routing = EcmpRouting(small_dring)
        report = commodity_throughput(
            small_dring,
            routing,
            {(0, 5): 3.0, (5, 0): 1.0},
        )
        per = report.per_commodity_gbps
        # Different directions use disjoint directed links; both are
        # host-limited here, so rates track rack host capacity.
        assert per[(0, 5)] > 0 and per[(5, 0)] > 0

    def test_rejects_empty_demands(self, small_dring):
        with pytest.raises(ValueError):
            commodity_throughput(small_dring, EcmpRouting(small_dring), {})

    def test_rejects_nonpositive_weight(self, small_dring):
        with pytest.raises(ValueError):
            commodity_throughput(
                small_dring, EcmpRouting(small_dring), {(0, 5): 0.0}
            )

    def test_mean_flow_rate_definition(self, small_dring):
        routing = EcmpRouting(small_dring)
        report = commodity_throughput(
            small_dring, routing, {(0, 5): 2.0, (3, 9): 2.0}
        )
        assert report.mean_flow_gbps == pytest.approx(
            report.total_gbps / 4.0
        )


class TestConcreteCsPlacement:
    def test_packs_disjointly(self, small_dring):
        placement = place_cs_concrete(small_dring, 6, 10, seed=0)
        assert sum(placement.clients_per_rack.values()) == 6
        assert sum(placement.servers_per_rack.values()) == 10
        assert not (
            set(placement.clients_per_rack) & set(placement.servers_per_rack)
        )

    def test_fewest_racks(self, small_dring):
        # 4 servers per rack: 6 clients need 2 racks, 10 servers need 3.
        placement = place_cs_concrete(small_dring, 6, 10, seed=1)
        assert len(placement.clients_per_rack) == 2
        assert len(placement.servers_per_rack) == 3

    def test_rejects_overfull(self, small_dring):
        with pytest.raises(ValueError):
            place_cs_concrete(small_dring, 40, 40)


class TestCsThroughput:
    def test_incast_limited_by_receiver(self, small_dring):
        routing = ShortestUnionRouting(small_dring, 2)
        report = cs_throughput(small_dring, routing, 4, 1, seed=0)
        # One receiving server: total can never exceed its downlink.
        assert report.total_gbps <= small_dring.server_link_capacity + 1e-9

    def test_skewed_cs_flat_beats_leafspine_toward_udf(self):
        # Section 6.2: with skewed C-S the flat network approaches the
        # UDF-predicted 2x gain over the leaf-spine.
        ls = leaf_spine(12, 4)
        flat = flatten(ls, seed=3)
        clients, servers = 24, 96
        ls_report = cs_throughput(ls, EcmpRouting(ls), clients, servers, seed=5)
        flat_report = cs_throughput(
            flat, ShortestUnionRouting(flat, 2), clients, servers, seed=5
        )
        ratio = flat_report.mean_flow_gbps / ls_report.mean_flow_gbps
        assert 1.2 < ratio <= leaf_spine_udf(12, 4) + 0.35

    def test_su2_fixes_dring_ecmp_weakness(self):
        # Small C and S packed into adjacent racks: ECMP on a DRing can
        # bottleneck on the single direct link, SU(2) must do better or
        # equal for the same instance.
        net = dring(8, 2, servers_per_rack=6)
        c, s = 6, 6
        worst_ecmp_over_su2 = 0.0
        for seed in range(6):
            ecmp = cs_throughput(net, EcmpRouting(net), c, s, seed=seed)
            su2 = cs_throughput(
                net, ShortestUnionRouting(net, 2), c, s, seed=seed
            )
            worst_ecmp_over_su2 = max(
                worst_ecmp_over_su2,
                ecmp.mean_flow_gbps / su2.mean_flow_gbps,
            )
        assert worst_ecmp_over_su2 <= 1.0 + 1e-6


class TestTmThroughput:
    def test_uniform_demand_all_positive(self, small_dring):
        routing = EcmpRouting(small_dring)
        demands = {
            pair: 1.0 for pair in list(small_dring.rack_pairs())[:20]
        }
        report = tm_throughput(small_dring, routing, demands)
        assert all(v > 0 for v in report.per_commodity_gbps.values())
