"""Tests for the dynamic flat-networks study (Section 7)."""

import networkx as nx
import pytest

from repro.experiments import (
    render_dynamic,
    rotated_dring,
    run_dynamic_study,
    skewed_demand,
    uniform_demand,
)
from repro.topology import dring


class TestRotatedDring:
    def test_rotation_zero_is_base(self):
        base = dring(6, 2, servers_per_rack=4)
        rotated = rotated_dring(6, 2, 4, rotation=0)
        assert sorted(base.graph.edges) == sorted(rotated.graph.edges)

    def test_rotation_changes_adjacency(self):
        base = rotated_dring(6, 2, 4, rotation=0)
        shifted = rotated_dring(6, 2, 4, rotation=3)
        assert sorted(base.graph.edges) != sorted(shifted.graph.edges)

    def test_rotation_preserves_structure(self):
        base = rotated_dring(8, 2, 4, rotation=0)
        shifted = rotated_dring(8, 2, 4, rotation=5)
        assert nx.is_isomorphic(base.graph, shifted.graph)
        assert shifted.num_servers == base.num_servers
        assert nx.is_connected(shifted.graph)

    def test_full_rotation_is_identity(self):
        racks = 6 * 2
        base = rotated_dring(6, 2, 4, rotation=0)
        full = rotated_dring(6, 2, 4, rotation=racks)
        assert sorted(base.graph.edges) == sorted(full.graph.edges)


class TestDemandHelpers:
    def test_skewed_demand_has_requested_pairs(self):
        demands = skewed_demand(16, hot_pairs=3, seed=1)
        assert len(demands) == 3
        assert all(a != b for a, b in demands)

    def test_uniform_demand_dense(self):
        demands = uniform_demand(6)
        assert len(demands) == 30


class TestDynamicStudy:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            "skewed": run_dynamic_study(skewed_demand(16, 3, seed=2)),
            "uniform": run_dynamic_study(uniform_demand(16)),
        }

    def test_all_variants_positive(self, results):
        for result in results.values():
            assert all(v > 0 for v in result.per_variant_gbps.values())

    def test_flat_reconfiguration_beats_expander_on_skew(self, results):
        # The Section 7 question: reconfiguring into flat networks vs
        # into transient expanders — flat wins for skewed demand.
        gain = results["skewed"].gain(
            "dynamic dring (su2)", "dynamic rrg (ecmp)"
        )
        assert gain > 1.1

    def test_expander_wins_uniform(self, results):
        gain = results["uniform"].gain(
            "dynamic rrg (ecmp)", "dynamic dring (su2)"
        )
        assert gain > 1.0

    def test_rejects_out_of_range_demand(self):
        with pytest.raises(ValueError):
            run_dynamic_study({(0, 99): 1.0})

    def test_render(self, results):
        text = render_dynamic(results)
        assert "dynamic dring" in text and "skewed" in text
