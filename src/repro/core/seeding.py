"""Cross-process-stable seed derivation.

Sweep cells run in worker processes with ``PYTHONHASHSEED``
randomization; any seed derived with the builtin ``hash`` would differ
between the parent that builds a cache key and the worker that runs the
cell.  :func:`stable_seed` folds heterogeneous identifying parts
(strings, ints, floats) through sha256 instead, so every process — and
every platform — derives the same child seed from the same parts.

The helper grew out of ``repro.experiments.failure_sweep.derived_seed``
and was promoted to :mod:`repro.core` when the collective-workload
subsystem needed the same discipline from inside :mod:`repro.traffic`
(which must not import the experiments layer).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def stable_seed(*parts: Any) -> int:
    """A cross-process-stable seed from heterogeneous parts.

    Built on sha256 (never the builtin ``hash``, which PYTHONHASHSEED
    randomizes), so harness worker processes agree with the parent.
    Parts must be JSON-serializable; the JSON encoding (sorted keys)
    makes the digest independent of dict insertion order.
    """
    # repro-perf: allow=deep-alloc-in-hot-loop -- one digest per seed derivation (per phase), not per event
    material = json.dumps(list(parts), sort_keys=True)
    # repro-perf: allow=deep-hot-dispatch -- builtin int classmethod; nothing to resolve
    return int.from_bytes(
        hashlib.sha256(material.encode()).digest()[:8], "big"
    )
