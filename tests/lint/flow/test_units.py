"""Unit-consistency inference on fixture packages."""

from __future__ import annotations

from repro.lint.flow.units import (
    DeepUnitConsistency,
    dimension_of_name,
)

from tests.lint.flow.util import build_fixture_graph


def _check(tmp_path, files, package="upkg"):
    _, graph = build_fixture_graph(tmp_path, files, package)
    return list(DeepUnitConsistency().check(graph))


class TestDimensionVocabulary:
    def test_rightmost_token_wins(self):
        assert dimension_of_name("capacity_gbps") == "Gbps"
        assert dimension_of_name("capacity_factor") == "fraction"
        assert dimension_of_name("gray_capacity_fraction") == "fraction"
        assert dimension_of_name("flow_count") == "count"
        assert dimension_of_name("warmup_seconds") == "seconds"

    def test_neutral_and_untagged_names(self):
        assert dimension_of_name("scale") is None
        assert dimension_of_name("value") is None


class TestArithmetic:
    def test_mixed_addition_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "calc.py": (
                "def mix(capacity_gbps, load_fraction):\n"
                "    return capacity_gbps + load_fraction\n"
            ),
        })
        assert len(findings) == 1
        assert "Gbps" in findings[0].message
        assert "fraction" in findings[0].message

    def test_same_dimension_addition_ok(self, tmp_path):
        assert _check(tmp_path, {
            "calc.py": (
                "def total(capacity_gbps, extra_gbps):\n"
                "    return capacity_gbps + extra_gbps\n"
            ),
        }) == []

    def test_multiplication_exempt(self, tmp_path):
        assert _check(tmp_path, {
            "calc.py": (
                "def derate(capacity_gbps, load_fraction):\n"
                "    return capacity_gbps * load_fraction\n"
            ),
        }) == []

    def test_mixed_comparison_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "calc.py": (
                "def check(link_count, warmup_seconds):\n"
                "    return link_count < warmup_seconds\n"
            ),
        })
        assert len(findings) == 1
        assert "comparison mixes" in findings[0].message


class TestCallSites:
    def test_cross_function_mismatch_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "calc.py": (
                "def consume(load_fraction):\n"
                "    return load_fraction\n"
                "\n"
                "def feed(capacity_gbps):\n"
                "    return consume(capacity_gbps)\n"
            ),
        })
        assert len(findings) == 1
        assert "parameter 'load_fraction'" in findings[0].message

    def test_keyword_argument_mismatch_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "calc.py": (
                "def consume(load_fraction=1.0):\n"
                "    return load_fraction\n"
                "\n"
                "def feed(capacity_gbps):\n"
                "    return consume(load_fraction=capacity_gbps)\n"
            ),
        })
        assert len(findings) == 1

    def test_matching_dimensions_quiet(self, tmp_path):
        assert _check(tmp_path, {
            "calc.py": (
                "def consume(load_fraction):\n"
                "    return load_fraction\n"
                "\n"
                "def feed(used_fraction):\n"
                "    return consume(used_fraction)\n"
            ),
        }) == []
