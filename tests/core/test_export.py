"""Tests for network import/export."""

import json

import pytest

from repro.core.export import from_json, to_dot, to_json
from repro.topology import dring, leaf_spine


class TestJsonRoundTrip:
    @pytest.fixture(params=["leafspine", "dring", "het"])
    def network(self, request):
        if request.param == "leafspine":
            return leaf_spine(4, 2)
        if request.param == "dring":
            return dring(6, 2, servers_per_rack=3)
        return leaf_spine(4, 2, uplink_mult=3)

    def test_round_trip_preserves_everything(self, network):
        clone = from_json(to_json(network))
        assert clone.name == network.name
        assert clone.num_switches == network.num_switches
        assert clone.num_servers == network.num_servers
        def normalize(links):
            return sorted((min(u, v), max(u, v), m) for u, v, m in links)
        assert normalize(clone.undirected_links()) == normalize(
            network.undirected_links()
        )
        assert clone.link_capacity == network.link_capacity
        for switch in network.switches:
            assert clone.servers_at(switch) == network.servers_at(switch)

    def test_json_is_valid_and_stable(self, network):
        first = to_json(network)
        second = to_json(from_json(first))
        assert json.loads(first) == json.loads(second)


class TestDot:
    def test_dot_contains_all_switches(self):
        net = leaf_spine(4, 2)
        dot = to_dot(net)
        for switch in net.switches:
            assert f"s{switch} " in dot

    def test_racks_are_boxes_spines_ellipses(self):
        net = leaf_spine(4, 2)
        dot = to_dot(net)
        assert "shape=box" in dot
        assert "shape=ellipse" in dot

    def test_parallel_links_labelled(self):
        net = leaf_spine(4, 2, uplink_mult=2)
        assert 'label="x2"' in to_dot(net)

    def test_dot_parses_as_graph_block(self):
        dot = to_dot(dring(6, 1, servers_per_rack=2))
        assert dot.startswith("graph ") and dot.endswith("}")
