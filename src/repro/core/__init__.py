"""Core network model and topology metrics."""

from repro.core.linktable import LinkTable
from repro.core.network import (
    Network,
    NetworkValidationError,
    build_network,
    distribute_evenly,
)
from repro.core.cabling import (
    CablingReport,
    cabling_report,
    compare_cabling,
    render_cabling,
)
from repro.core.export import from_json, to_dot, to_json
from repro.core.seeding import stable_seed
from repro.core.metrics import (
    NsrSummary,
    capacity_nsr,
    TopologySummary,
    bisection_bandwidth,
    diameter,
    flat_leaf_spine_nsr,
    leaf_spine_nsr,
    leaf_spine_udf,
    mean_rack_distance,
    nsr,
    oversubscription,
    path_length_histogram,
    spectral_gap,
    summarize,
    summary_table,
    udf,
)

__all__ = [
    "LinkTable",
    "Network",
    "NetworkValidationError",
    "build_network",
    "distribute_evenly",
    "CablingReport",
    "cabling_report",
    "compare_cabling",
    "render_cabling",
    "from_json",
    "to_dot",
    "to_json",
    "stable_seed",
    "NsrSummary",
    "capacity_nsr",
    "TopologySummary",
    "bisection_bandwidth",
    "diameter",
    "flat_leaf_spine_nsr",
    "leaf_spine_nsr",
    "leaf_spine_udf",
    "mean_rack_distance",
    "nsr",
    "oversubscription",
    "path_length_histogram",
    "spectral_gap",
    "summarize",
    "summary_table",
    "udf",
]
