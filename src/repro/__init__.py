"""repro: a reproduction of "Spineless Data Centers" (HotNets 2020).

The package implements the paper's full system: flat topology
construction (DRing, Jellyfish/RRG, Xpander) and the leaf-spine
baseline, the NSR/UDF flatness analysis, oblivious routing schemes (ECMP
and Shortest-Union(K)) with their standard-protocol BGP/VRF realization,
traffic models (A2A, rack-to-rack, C-S, Facebook-like), and flow-level
simulators that regenerate every figure of the paper's evaluation.

Quick start::

    from repro.topology import leaf_spine, dring, flatten
    from repro.routing import EcmpRouting, ShortestUnionRouting
    from repro.sim import cs_throughput

    ls = leaf_spine(12, 4)          # the baseline 2-tier Clos
    dr = dring(12, 2, servers_per_rack=8)
    ratio = (
        cs_throughput(dr, ShortestUnionRouting(dr, 2), 24, 96).mean_flow_gbps
        / cs_throughput(ls, EcmpRouting(ls), 24, 96).mean_flow_gbps
    )

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

__version__ = "1.0.0"
