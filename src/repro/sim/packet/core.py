"""Event queue and packet representation for the packet simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from repro.sim.engine.trace import cohort_bucket

if TYPE_CHECKING:
    from repro.sim.packet.link import LinkQueue


class EventQueue:
    """A time-ordered callback queue with deterministic tie-breaking.

    Events at equal timestamps fire in insertion order (a monotonically
    increasing sequence number breaks ties), so runs are reproducible.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        #: Cohort-size histogram from the most recent :meth:`run`: how
        #: many same-timestamp dispatch groups fell in each size bucket.
        self.cohort_counts: Dict[str, int] = {}

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._counter), action)
        )

    def schedule_at(self, when: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute time ``when`` (>= now)."""
        self.schedule(when - self._now, action)

    # repro-hot -- drains the event heap; every packet event dispatches here
    def run(self, max_events: int = 50_000_000) -> int:
        """Drain the queue; returns the number of events processed.

        Same-timestamp events pop as one *cohort* before dispatching —
        the heap is touched once per timestamp group, and the group size
        feeds the cohort histogram.  Dispatch order is unchanged: the
        cohort preserves (timestamp, sequence) order, and events an
        action schedules at the *same* timestamp carry later sequence
        numbers, so they form the next cohort exactly where the
        one-at-a-time loop would have run them.
        """
        processed = 0
        heap = self._heap
        self.cohort_counts.clear()
        cohort: List[Callable[[], None]] = []  # repro-perf: allow=deep-alloc-in-hot-loop -- one list reused across the whole drain via clear()
        while heap:
            when, _seq, action = heapq.heappop(heap)
            self._now = when
            cohort.append(action)
            while heap and heap[0][0] == when:
                cohort.append(heapq.heappop(heap)[2])
            bucket = cohort_bucket("event", len(cohort))
            self.cohort_counts[bucket] = self.cohort_counts.get(bucket, 0) + 1
            for member in cohort:
                # repro-perf: allow=deep-hot-dispatch -- the queue exists to dispatch opaque scheduled callbacks
                member()
                processed += 1
                if processed >= max_events:
                    raise RuntimeError(
                        f"packet simulation exceeded {max_events} events; "
                        "a flow is probably livelocked"
                    )
            cohort.clear()
        return processed

    def __len__(self) -> int:
        return len(self._heap)


@dataclass
class Packet:
    """One packet in flight.

    ``path`` is the ordered list of link objects the packet still has to
    traverse (set at send time from the flow's hashed route); ``hop``
    indexes the next link.
    """

    flow_id: int
    seq: int
    size_bytes: int
    is_ack: bool
    path: Tuple["LinkQueue", ...]
    hop: int = 0
    #: Time the corresponding data packet was first sent (for RTT).
    sent_at: float = 0.0
    #: Set on retransmissions so RTT samples skip them (Karn's rule).
    retransmitted: bool = False
    #: Congestion-experienced mark (ECN CE on data, ECE echo on ACKs).
    ecn: bool = False

    def next_link(self) -> "LinkQueue":
        return self.path[self.hop]

    def at_destination(self) -> bool:
        return self.hop >= len(self.path)
