"""Tests for the fault models: specs, sampling, shared-risk groups."""

import json

import pytest

from repro.faults import (
    FaultModelError,
    FaultSet,
    FaultSpec,
    sample_fault_set,
    shared_risk_groups,
)
from repro.faults.models import _physical_links
from repro.topology import dring, jellyfish


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultModelError):
            FaultSpec("meteor", 0.1)

    def test_fraction_bounds(self):
        with pytest.raises(FaultModelError):
            FaultSpec("link", 1.0)
        with pytest.raises(FaultModelError):
            FaultSpec("link", -0.1)

    def test_gray_capacity_bounds(self):
        with pytest.raises(FaultModelError):
            FaultSpec("gray", 0.1, capacity_factor=0.0)
        with pytest.raises(FaultModelError):
            FaultSpec("gray", 0.1, capacity_factor=1.0)

    def test_round_trips_through_dict(self):
        spec = FaultSpec("gray", 0.05, capacity_factor=0.5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_labels(self):
        assert FaultSpec("link", 0.05).label() == "link(0.05)"
        assert "@0.5" in FaultSpec("gray", 0.1, 0.5).label()


class TestFaultSet:
    def test_round_trips_through_json(self):
        fault_set = FaultSet(
            removed_links=((0, 1), (0, 1), (2, 3)),
            failed_switches=(7,),
            degraded_links=((4, 5, 0.25),),
        )
        payload = json.loads(json.dumps(fault_set.to_dict()))
        assert FaultSet.from_dict(payload) == fault_set

    def test_fingerprint_distinguishes_scenarios(self):
        a = FaultSet(removed_links=((0, 1),))
        b = FaultSet(removed_links=((0, 2),))
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == FaultSet(removed_links=((0, 1),)).fingerprint()

    def test_empty(self):
        assert FaultSet().is_empty()
        assert not FaultSet(failed_switches=(1,)).is_empty()


class TestSampling:
    def test_same_seed_same_scenario(self, small_dring):
        spec = FaultSpec("link", 0.1)
        assert sample_fault_set(small_dring, spec, 7) == sample_fault_set(
            small_dring, spec, 7
        )

    def test_different_seeds_differ(self, small_dring):
        spec = FaultSpec("link", 0.1)
        scenarios = {
            sample_fault_set(small_dring, spec, seed).fingerprint()
            for seed in range(8)
        }
        assert len(scenarios) > 1

    def test_zero_fraction_is_empty(self, small_dring):
        for kind in ("link", "switch", "gray", "correlated"):
            assert sample_fault_set(
                small_dring, FaultSpec(kind, 0.0), 0
            ).is_empty()

    def test_link_count_tracks_fraction(self, small_dring):
        cables = len(_physical_links(small_dring))
        fault_set = sample_fault_set(small_dring, FaultSpec("link", 0.1), 3)
        assert len(fault_set.removed_links) == round(0.1 * cables)

    def test_never_fails_everything(self, small_dring):
        fault_set = sample_fault_set(
            small_dring, FaultSpec("switch", 0.99), 0
        )
        assert len(fault_set.failed_switches) < small_dring.num_switches

    def test_link_removals_respect_multiplicity(self, small_dring):
        fault_set = sample_fault_set(small_dring, FaultSpec("link", 0.3), 5)
        counts = {}
        for edge in fault_set.removed_links:
            counts[edge] = counts.get(edge, 0) + 1
        for (u, v), count in counts.items():
            assert count <= small_dring.link_mult(u, v)

    def test_switch_samples_switches(self, small_dring):
        fault_set = sample_fault_set(small_dring, FaultSpec("switch", 0.2), 1)
        assert fault_set.failed_switches
        assert set(fault_set.failed_switches) <= set(small_dring.switches)

    def test_gray_marks_trunks_with_factor(self, small_dring):
        fault_set = sample_fault_set(
            small_dring, FaultSpec("gray", 0.2, capacity_factor=0.5), 1
        )
        assert fault_set.degraded_links
        for u, v, scale in fault_set.degraded_links:
            assert scale == 0.5
            assert small_dring.graph.has_edge(u, v)

    def test_correlated_removes_whole_groups(self, small_dring):
        groups = dict(shared_risk_groups(small_dring))
        fault_set = sample_fault_set(
            small_dring, FaultSpec("correlated", 0.2), 2
        )
        assert fault_set.removed_links
        removed = {}
        for edge in fault_set.removed_links:
            removed[edge] = removed.get(edge, 0) + 1
        # Each removed trunk is fully removed, and belongs to a group
        # every other member of which is also fully removed.
        for edges in groups.values():
            touched = [e for e in set(edges) if e in removed]
            if not touched:
                continue
            for edge in set(edges):
                assert removed.get(edge) == small_dring.link_mult(*edge)


class TestSharedRiskGroups:
    def test_dring_groups_by_supernode_pair(self):
        net = dring(6, 2, servers_per_rack=4)
        groups = shared_risk_groups(net)
        assert all(key.startswith("supernodes") for key, _ in groups)
        # Inter-supernode conduits carry several links each.
        assert any(len(edges) > 1 for _, edges in groups)

    def test_flat_groups_are_trunks(self):
        net = jellyfish(10, 4, servers_per_switch=3, seed=7)
        groups = shared_risk_groups(net)
        assert all(key.startswith("trunk") for key, _ in groups)
        assert len(groups) == len(list(net.undirected_links()))

    def test_groups_cover_every_link_once(self, small_dring):
        covered = [
            edge for _key, edges in shared_risk_groups(small_dring)
            for edge in edges
        ]
        expected = sorted(
            (min(u, v), max(u, v))
            for u, v, _m in small_dring.undirected_links()
        )
        assert sorted(covered) == expected
