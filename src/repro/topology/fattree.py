"""k-ary fat-tree: the 3-tier Clos of hyperscale DCs (Sections 1-2).

The expander literature the paper builds on (Jellyfish, Xpander, [15])
targets 3-tier Clos networks; the paper's point is that moderate-scale
DCs run 2-tier leaf-spines with *shorter paths*, so those results do not
transfer directly.  Having the fat-tree in the suite lets us reproduce
that framing quantitatively: expander gains over a fat-tree exceed the
gains over an equal-scale leaf-spine.

Standard Al-Fares k-ary construction (k even):

* ``k`` pods, each with ``k/2`` edge and ``k/2`` aggregation switches;
* every edge switch connects to all aggregation switches of its pod and
  hosts ``k/2`` servers;
* ``(k/2)^2`` core switches; aggregation switch ``j`` of every pod
  connects to cores ``j*(k/2) .. (j+1)*(k/2)-1``.

All switches have radix ``k``; the network is rearrangeably non-blocking
with ``k^3/4`` servers, and rack-to-rack paths are 2 hops inside a pod
and 4 hops across pods — the longer paths that hurt it at small scale.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.network import Network, NetworkValidationError, build_network
from repro.core.units import DEFAULT_LINK_GBPS


def fat_tree(k: int, link_capacity: float = DEFAULT_LINK_GBPS, name: str = "") -> Network:
    """Build the k-ary fat-tree (k even, k >= 2).

    Switch ids: edges first (pod-major), then aggregations (pod-major),
    then cores; only edge switches host servers.
    """
    if k < 2 or k % 2 != 0:
        raise NetworkValidationError("fat-tree arity k must be even and >= 2")
    half = k // 2
    num_edge = k * half
    num_agg = k * half
    num_core = half * half

    def edge_id(pod: int, index: int) -> int:
        return pod * half + index

    def agg_id(pod: int, index: int) -> int:
        return num_edge + pod * half + index

    def core_id(index: int) -> int:
        return num_edge + num_agg + index

    edges: List[Tuple[int, int]] = []
    for pod in range(k):
        for e in range(half):
            for a in range(half):
                edges.append((edge_id(pod, e), agg_id(pod, a)))
        for a in range(half):
            for c in range(half):
                edges.append((agg_id(pod, a), core_id(a * half + c)))
    servers: Dict[int, int] = {
        edge_id(pod, e): half for pod in range(k) for e in range(half)
    }
    network = build_network(
        edges,
        servers,
        link_capacity=link_capacity,
        name=name or f"fat-tree(k={k})",
        extra_switches=[core_id(i) for i in range(num_core)],
    )
    network.graph.graph["fattree_k"] = k
    network.graph.graph["edge_switches"] = sorted(servers)
    network.validate(max_radix=k)
    return network


def fat_tree_stats(network: Network) -> Dict[str, int]:
    """Sanity numbers of a fat-tree build (for tests and reports)."""
    k = network.graph.graph.get("fattree_k")
    if k is None:
        raise ValueError("network was not built by fat_tree()")
    return {
        "k": k,
        "pods": k,
        "edge_switches": k * (k // 2),
        "agg_switches": k * (k // 2),
        "core_switches": (k // 2) ** 2,
        "servers": k**3 // 4,
    }
