"""Tests for the leaf-spine constructor."""

import pytest

from repro.topology import leaf_spine, spine_layer_capacity
from repro.topology.dring import dring


class TestStructure:
    def test_counts_match_definition(self):
        # leaf-spine(x, y): x+y leafs, y spines, x servers per leaf.
        net = leaf_spine(4, 2)
        assert net.num_switches == (4 + 2) + 2
        assert net.num_racks == 6
        assert net.num_servers == 4 * 6

    def test_every_switch_uses_x_plus_y_ports(self):
        net = leaf_spine(4, 2)
        leafs = net.graph.graph["leafs"]
        spines = net.graph.graph["spines"]
        for leaf in leafs:
            assert net.radix(leaf) == 6
        for spine in spines:
            assert net.radix(spine) == 6

    def test_full_bipartite_leaf_spine_links(self):
        net = leaf_spine(4, 2)
        for leaf in net.graph.graph["leafs"]:
            for spine in net.graph.graph["spines"]:
                assert net.graph.has_edge(leaf, spine)

    def test_no_leaf_to_leaf_links(self):
        net = leaf_spine(4, 2)
        leafs = set(net.graph.graph["leafs"])
        for u, v, _m in net.undirected_links():
            assert not (u in leafs and v in leafs)

    def test_not_flat(self):
        assert not leaf_spine(4, 2).is_flat()

    def test_paper_configuration(self):
        net = leaf_spine(48, 16)
        assert net.num_racks == 64
        assert net.num_servers == 3072

    def test_rejects_nonpositive_params(self):
        with pytest.raises(ValueError):
            leaf_spine(0, 2)
        with pytest.raises(ValueError):
            leaf_spine(4, 0)


class TestSpineCapacity:
    def test_capacity_counts_all_leaf_spine_links(self):
        net = leaf_spine(4, 2, link_capacity=10.0)
        # (x+y) leafs x y spines links, 10 Gbps each.
        assert spine_layer_capacity(net) == pytest.approx(6 * 2 * 10.0)

    def test_rejects_non_leafspine(self):
        with pytest.raises(ValueError):
            spine_layer_capacity(dring(6, 2, servers_per_rack=4))
