"""Steady-state throughput of long-running flows (Section 6.2's setup).

Figure 5 measures the average throughput of long-running flows between a
client set C and a server set S.  With fixed oblivious routing, the
fluid limit is a weighted max-min allocation over *commodities* (rack
pairs): a commodity of ``w`` concurrent flows splits over links
according to the routing scheme's fractional splits, is weighted ``w``
so each of its flows is as fair as a standalone flow, and is capped by
the aggregate host link capacity at its endpoints.

Working at commodity rather than flow granularity keeps full-scale
topologies (thousands of servers, millions of client-server pairs)
tractable: the entity count is bounded by rack pairs.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.network import Network
from repro.routing.base import RoutingScheme
from repro.sim.engine import trace as sim_trace
from repro.sim.maxmin import AllocationError, fill_levels

RackPair = Tuple[int, int]


@dataclass(frozen=True)
class ThroughputReport:
    """Allocation summary for one steady-state run."""

    per_commodity_gbps: Dict[RackPair, float]
    total_gbps: float
    mean_flow_gbps: float
    num_flows: float


# repro-hot -- per-commodity LP assembly loop (figure 2/3 inner kernel)
def commodity_throughput(
    network: Network,
    routing: RoutingScheme,
    demands: Dict[RackPair, float],
    src_host_capacity: Optional[Dict[int, float]] = None,
    dst_host_capacity: Optional[Dict[int, float]] = None,
) -> ThroughputReport:
    """Weighted max-min throughput for rack-pair commodities.

    Parameters
    ----------
    demands:
        ``demands[(r1, r2)]`` is the number of concurrent flows (the
        fairness weight) from rack r1 to rack r2.
    src_host_capacity / dst_host_capacity:
        Aggregate sending/receiving host-link capacity per rack, in
        Gbps.  Defaults to every attached server's uplink/downlink —
        override for C-S runs where only some hosts in a rack
        participate.
    """
    if not demands:
        raise ValueError("no commodities to allocate")
    if src_host_capacity is None:
        src_host_capacity = _full_host_capacity(network)
    if dst_host_capacity is None:
        dst_host_capacity = _full_host_capacity(network)

    # Dense ids from the network's link table (net links 0..L-1), plus
    # lazily registered host links in first-touch order — the same id
    # assignment the legacy per-call LinkIndex produced.
    table = network.link_table()
    bad = np.flatnonzero(table.capacities <= 0)
    if bad.size:
        bad_key = ("net",) + table.pairs[int(bad[0])]
        raise AllocationError(f"link {bad_key!r} has non-positive capacity")
    compiled = routing.compile(table)
    num_net = len(table)
    host_ids: Dict[Tuple[str, int], int] = {}
    host_caps: List[float] = []

    def host_link(kind: str, rack: int, capacity: float) -> int:
        key = (kind, rack)
        existing = host_ids.get(key)
        if existing is not None:
            if host_caps[existing - num_net] != capacity:
                raise AllocationError(
                    f"link {key!r} re-registered with different capacity"
                )
            return existing
        if capacity <= 0:
            raise AllocationError(f"link {key!r} has non-positive capacity")
        index = num_net + len(host_caps)
        host_ids[key] = index
        host_caps.append(capacity)
        return index

    pairs: List[RackPair] = sorted(demands)
    ent: List[int] = []
    lnk: List[int] = []
    val: List[float] = []
    weights: List[float] = []
    for index, (r1, r2) in enumerate(pairs):
        weight = float(demands[(r1, r2)])
        if weight <= 0:
            raise ValueError(f"non-positive demand for {(r1, r2)}")
        up = host_link("up", r1, src_host_capacity[r1])
        down = host_link("down", r2, dst_host_capacity[r2])
        net_links, net_fractions = compiled.fraction_entries(r1, r2)
        ent.extend(itertools.repeat(index, 2 + len(net_links)))
        lnk.append(up)
        val.append(weight)
        lnk.append(down)
        val.append(weight)
        # repro-perf: allow=deep-hot-dispatch -- bulk ndarray-to-list conversion feeding the COO assembly
        lnk.extend(net_links.tolist())
        # repro-perf: allow=deep-hot-dispatch -- bulk ndarray-to-list conversion feeding the COO assembly
        val.extend((weight * net_fractions).tolist())
        weights.append(weight)

    caps = np.concatenate([table.capacities, np.asarray(host_caps, dtype=float)])
    allocate_started = sim_trace.perf_now()
    levels, iterations = fill_levels(
        np.asarray(ent, dtype=np.intp),
        np.asarray(lnk, dtype=np.intp),
        np.asarray(val, dtype=float),
        caps,
        np.ones(len(pairs), dtype=bool),
    )
    collector = sim_trace.current()
    if collector is not None:
        collector.count("throughput_commodities", len(pairs))
        collector.count("allocator_iterations", iterations)
        collector.add_time(
            "allocate", sim_trace.perf_now() - allocate_started
        )
    per_commodity = {
        pair: float(level * weight)
        for pair, level, weight in zip(pairs, levels, weights)
    }
    total = sum(per_commodity.values())
    num_flows = sum(weights)
    return ThroughputReport(
        per_commodity_gbps=per_commodity,
        total_gbps=total,
        mean_flow_gbps=total / num_flows,
        num_flows=num_flows,
    )


def _full_host_capacity(network: Network) -> Dict[int, float]:
    return {
        rack: network.servers_at(rack) * network.server_link_capacity
        for rack in network.racks
    }


# ----------------------------------------------------------------------
# C-S model on a concrete topology
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ConcreteCs:
    """A C-S instance packed onto a concrete network's racks."""

    clients_per_rack: Dict[int, int]
    servers_per_rack: Dict[int, int]


def place_cs_concrete(
    network: Network,
    num_clients: int,
    num_servers: int,
    seed: int = 0,
) -> ConcreteCs:
    """Pack C clients and S servers into the fewest racks of ``network``.

    Racks are chosen at random (seeded); server racks avoid client racks,
    exactly as Section 5.2 prescribes.  Rack capacities are the actual
    per-rack server counts, so topologies with different rack sizes pack
    differently — as they would in the paper's per-topology setup.
    """
    if num_clients < 1 or num_servers < 1:
        raise ValueError("need at least one client and one server")
    rng = random.Random(seed)
    racks = list(network.racks)
    rng.shuffle(racks)

    clients: Dict[int, int] = {}
    remaining = num_clients
    used = []
    for rack in racks:
        if remaining == 0:
            break
        take = min(network.servers_at(rack), remaining)
        clients[rack] = take
        remaining -= take
        used.append(rack)
    if remaining:
        raise ValueError(f"cannot place {num_clients} clients")

    servers: Dict[int, int] = {}
    remaining = num_servers
    for rack in racks:
        if remaining == 0:
            break
        if rack in clients:
            continue
        take = min(network.servers_at(rack), remaining)
        servers[rack] = take
        remaining -= take
    if remaining:
        raise ValueError(
            f"cannot place {num_servers} servers avoiding client racks"
        )
    return ConcreteCs(clients_per_rack=clients, servers_per_rack=servers)


def cs_throughput(
    network: Network,
    routing: RoutingScheme,
    num_clients: int,
    num_servers: int,
    seed: int = 0,
) -> ThroughputReport:
    """Average throughput of the all-clients-to-all-servers workload.

    Each client opens one long-running flow to every server; the report's
    ``mean_flow_gbps`` is the Figure 5 quantity (before taking the
    DRing / leaf-spine ratio).
    """
    placement = place_cs_concrete(network, num_clients, num_servers, seed)
    demands: Dict[RackPair, float] = {}
    for c_rack, clients in placement.clients_per_rack.items():
        for s_rack, servers in placement.servers_per_rack.items():
            if c_rack == s_rack:
                continue
            demands[(c_rack, s_rack)] = float(clients * servers)
    src_caps = {
        rack: count * network.server_link_capacity
        for rack, count in placement.clients_per_rack.items()
    }
    dst_caps = {
        rack: count * network.server_link_capacity
        for rack, count in placement.servers_per_rack.items()
    }
    return commodity_throughput(
        network, routing, demands, src_host_capacity=src_caps,
        dst_host_capacity=dst_caps,
    )


def tm_throughput(
    network: Network,
    routing: RoutingScheme,
    demands: Dict[RackPair, float],
) -> ThroughputReport:
    """Throughput for an arbitrary rack-level demand (TM) on a network.

    Demands are fairness weights (relative flow counts); host capacities
    default to whole racks.
    """
    return commodity_throughput(network, routing, demands)
