"""Tests for the flattening transform F(T) (Section 3.1)."""

import pytest

from repro.core.metrics import nsr, udf
from repro.topology import dring, flatten, leaf_spine


class TestFlatten:
    def test_preserves_switch_and_server_counts(self, small_leafspine):
        flat = flatten(small_leafspine, seed=0)
        assert flat.num_switches == small_leafspine.num_switches
        assert flat.num_servers == small_leafspine.num_servers

    def test_result_is_flat(self, small_leafspine):
        assert flatten(small_leafspine, seed=0).is_flat()

    def test_respects_equipment_port_budget(self, paper_like_leafspine):
        flat = flatten(paper_like_leafspine, seed=0)
        budget = dict(paper_like_leafspine.equipment())
        # The flat rebuild never uses more ports than the original switch
        # had in service (one port may be trimmed for odd parity).
        for switch in flat.switches:
            assert flat.radix(switch) <= max(budget.values())

    def test_udf_of_leafspine_rebuild_is_two(self, paper_like_leafspine):
        flat = flatten(paper_like_leafspine, seed=0)
        assert udf(paper_like_leafspine, flat) == pytest.approx(2.0, rel=0.05)

    def test_flattening_a_flat_network_keeps_nsr(self):
        net = dring(6, 2, servers_per_rack=4)
        flat = flatten(net, seed=0)
        # Same equipment, same server spreading: NSR unchanged on average.
        assert nsr(flat).mean == pytest.approx(nsr(net).mean, rel=0.05)

    def test_deterministic_in_seed(self, small_leafspine):
        a = flatten(small_leafspine, seed=5)
        b = flatten(small_leafspine, seed=5)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_different_seeds_differ(self, paper_like_leafspine):
        a = flatten(paper_like_leafspine, seed=1)
        b = flatten(paper_like_leafspine, seed=2)
        assert sorted(a.graph.edges) != sorted(b.graph.edges)


class TestProportionalSpreading:
    def test_preserves_totals(self):
        from repro.topology import flatten, leaf_spine

        baseline = leaf_spine(12, 4, uplink_mult=2)
        flat = flatten(baseline, seed=0, spreading="proportional")
        assert flat.num_servers == baseline.num_servers
        assert flat.num_switches == baseline.num_switches
        assert flat.is_flat()

    def test_unknown_spreading_rejected(self, small_leafspine):
        from repro.topology import flatten

        with pytest.raises(ValueError):
            flatten(small_leafspine, spreading="bogus")

    def test_even_and_proportional_agree_on_homogeneous(self):
        # Equal radixes: both policies are the same allocation.
        from repro.core.metrics import nsr
        from repro.topology import flatten, leaf_spine

        baseline = leaf_spine(8, 4)
        even = flatten(baseline, seed=1, spreading="even")
        prop = flatten(baseline, seed=1, spreading="proportional")
        assert sorted(
            even.servers_at(s) for s in even.switches
        ) == sorted(prop.servers_at(s) for s in prop.switches)
