#!/usr/bin/env python3
"""Failure drill: what happens to a flat fabric when cables die?

Walks the Section 7 failure questions end to end on a DRing:

1. converge the BGP/VRF control plane and the OSPF baseline;
2. fail a link — watch both planes repair *incrementally* (messages and
   rounds, not a cold restart) and verify the BGP path set still equals
   Shortest-Union(2) on the degraded graph;
3. keep failing links and track tail FCT and path diversity;
4. re-cable the link and verify the fabric returns to its exact
   original routing state.

Run:  python examples/failure_drill.py
"""

from repro.bgp import build_converged_fabric, check_path_set_equivalence
from repro.experiments import run_failure_sweep
from repro.igp import build_converged_igp
from repro.topology import dring
from repro.traffic import CanonicalCluster


def main() -> None:
    net = dring(8, 2, servers_per_rack=6)
    print(f"Fabric: {net.name} — {net.num_racks} racks, "
          f"{net.num_servers} servers\n")

    # --- 1. converge both control planes -------------------------------
    bgp = build_converged_fabric(net.copy(), 2)
    igp = build_converged_igp(net)
    print("Cold start:")
    print(f"  BGP/VRF:   {bgp.report.rounds} rounds, "
          f"{bgp.report.updates_processed} UPDATEs")
    print(f"  OSPF/ECMP: {igp.report.rounds} rounds, "
          f"{igp.report.lsas_flooded} LSAs flooded\n")

    # --- 2. fail one link, incrementally --------------------------------
    u, v = 0, 2
    original_paths = set(bgp.forwarding_paths(u, v))
    bgp_repair = bgp.fail_link(u, v)
    igp_repair = igp.fail_link(u, v)
    print(f"Link ({u}, {v}) failed:")
    print(f"  BGP repair:  {bgp_repair.rounds} rounds, "
          f"{bgp_repair.updates_processed} UPDATEs, "
          f"{bgp_repair.withdrawals_processed} withdrawals")
    print(f"  OSPF repair: {igp_repair.rounds} rounds, "
          f"{igp_repair.lsas_flooded} LSAs")
    violations = check_path_set_equivalence(bgp, exact=True)
    print(f"  post-repair path set == SU(2) on degraded graph: "
          f"{'HOLDS' if not violations else violations[:2]}")
    survivors = bgp.forwarding_paths(u, v)
    print(f"  rack {u} -> {v}: {len(original_paths)} paths before, "
          f"{len(survivors)} after (direct link gone)\n")

    # --- 3. sweep failure counts under load -----------------------------
    cluster = CanonicalCluster(net.num_racks, 6)
    print("Failure sweep under uniform load (SU(2) routing):")
    print(f"{'failed':>8}{'p99 ms':>9}{'min paths':>11}")
    for point in run_failure_sweep(net, cluster, seed=1):
        print(f"{point.failed_links:>8}{point.p99_ms:>9.3f}"
              f"{point.min_su2_paths:>11}")

    # --- 4. re-cable and verify full recovery ---------------------------
    readd = bgp.add_link(u, v)
    restored = set(bgp.forwarding_paths(u, v))
    print(f"\nLink re-added: {readd.rounds} rounds, "
          f"{readd.updates_processed} UPDATEs")
    print(f"routing state fully restored: {restored == original_paths}")


if __name__ == "__main__":
    main()
