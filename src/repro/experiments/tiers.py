"""Two tiers vs three: why moderate scale is a different game (Sections 1-2).

The expander literature reports big wins over 3-tier Clos fat-trees;
the paper's opening observation is that moderate-scale DCs run 2-tier
leaf-spines whose paths are already short, so the headroom is smaller
(and bounded by the UDF's 2x).  This study quantifies both statements
with the same equipment-relative transformation used throughout the
repository: rebuild each Clos from its own switches as a flat RRG and
compare uniform-traffic throughput under deployable oblivious routing.

Two deterministic throughput metrics are reported:

* **ideal** — the max-concurrent-flow LP
  (:func:`repro.sim.idealflow.ideal_throughput`), Jyothi et al.'s fluid
  model with ideal routing, reproducing "[13] showed that ... the random
  graph outperforms the fat tree";
* **oblivious** — the same demand under the deployable schemes' fixed
  splits (:func:`repro.sim.idealflow.oblivious_throughput`), which also
  charges the RRG for its load imbalance.

The expected shape: under ideal routing the flat rebuild clearly beats
the fat-tree (and more so as k grows), while its edge over the 2-tier
leaf-spine on uniform traffic is marginal — the gap the paper steps
into, which is why its own wins come from *skewed* traffic instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.metrics import mean_rack_distance
from repro.core.network import Network
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim.idealflow import ideal_throughput, oblivious_throughput
from repro.topology import flatten, leaf_spine
from repro.topology.fattree import fat_tree


@dataclass(frozen=True)
class TierPoint:
    """One (Clos, flat rebuild) pair of the comparison."""

    baseline: str
    servers: int
    baseline_mean_distance: float
    rebuild_mean_distance: float
    baseline_ideal: float
    rebuild_ideal: float
    baseline_oblivious: float
    rebuild_oblivious: float

    @property
    def ideal_gain(self) -> float:
        """ideal alpha(flat rebuild) / ideal alpha(Clos)."""
        return self.rebuild_ideal / self.baseline_ideal

    @property
    def oblivious_gain(self) -> float:
        return self.rebuild_oblivious / self.baseline_oblivious


def _uniform_demand(network: Network) -> Dict:
    """Server-level all-to-all, aggregated to rack pairs.

    Weighting each rack pair by its server product makes alpha a
    per-server-pair rate, so the value is comparable between a Clos and
    its flat rebuild (same servers, different racks).
    """
    racks = network.racks
    return {
        (a, b): float(network.servers_at(a) * network.servers_at(b))
        for a in racks
        for b in racks
        if a != b
    }


def study_pair(baseline: Network, seed: int = 0) -> TierPoint:
    """Equipment-relative gain of flattening one Clos network."""
    rebuild = flatten(baseline, seed=seed, name=f"flat({baseline.name})")
    base_demand = _uniform_demand(baseline)
    flat_demand = _uniform_demand(rebuild)
    return TierPoint(
        baseline=baseline.name,
        servers=baseline.num_servers,
        baseline_mean_distance=mean_rack_distance(baseline),
        rebuild_mean_distance=mean_rack_distance(rebuild),
        baseline_ideal=ideal_throughput(baseline, base_demand),
        rebuild_ideal=ideal_throughput(rebuild, flat_demand),
        baseline_oblivious=oblivious_throughput(
            baseline, EcmpRouting(baseline), base_demand
        ),
        rebuild_oblivious=oblivious_throughput(
            rebuild, ShortestUnionRouting(rebuild, 2), flat_demand
        ),
    )


@dataclass(frozen=True)
class TierStudy:
    fat_tree_points: List[TierPoint]
    leaf_spine_points: List[TierPoint]

    def max_fat_tree_gain(self) -> float:
        return max(p.ideal_gain for p in self.fat_tree_points)

    def max_leaf_spine_gain(self) -> float:
        return max(p.ideal_gain for p in self.leaf_spine_points)


def run_tier_study(
    fat_tree_ks=(6,),
    leaf_spine_configs=((6, 2), (12, 4)),
    seed: int = 0,
) -> TierStudy:
    """Gain sweeps for both Clos families across sizes.

    The per-rack demand is weighted by server counts, so gains are
    equipment-relative factors.  Defaults stay at fat-tree(6) because the
    k=8 LP takes a minute; pass larger ks to see the fat-tree gain keep
    growing (1.35x at k=6, 1.53x at k=8).
    """
    return TierStudy(
        fat_tree_points=[study_pair(fat_tree(k), seed) for k in fat_tree_ks],
        leaf_spine_points=[
            study_pair(leaf_spine(x, y), seed) for x, y in leaf_spine_configs
        ],
    )


def render_tiers(study: TierStudy) -> str:
    header = (
        f"{'baseline':<20}{'servers':>8}{'dist':>6}{'flat dist':>11}"
        f"{'ideal gain':>12}{'obliv gain':>12}"
    )
    lines = [
        "Equipment-relative flat-rebuild gains: 3-tier vs 2-tier Clos "
        "(uniform server-level demand)",
        header,
        "-" * len(header),
    ]
    for p in study.fat_tree_points + study.leaf_spine_points:
        lines.append(
            f"{p.baseline:<20}{p.servers:>8}{p.baseline_mean_distance:>6.2f}"
            f"{p.rebuild_mean_distance:>11.2f}{p.ideal_gain:>12.2f}"
            f"{p.oblivious_gain:>12.2f}"
        )
    lines.append("")
    lines.append(
        f"ideal gain over fat-tree: {study.max_fat_tree_gain():.2f}x ; "
        f"over leaf-spine: {study.max_leaf_spine_gain():.2f}x — "
        "the hyperscale expander result shrinks at 2 tiers"
    )
    return "\n".join(lines)
