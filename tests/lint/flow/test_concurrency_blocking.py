"""The deep-blocking-under-lock rule and its effect lattice."""

from __future__ import annotations

from repro.lint.flow import deep_lint_paths
from repro.lint.flow.concurrency import (
    BlockingAnalysis,
    DeepBlockingUnderLock,
    concurrency_facts,
)
from repro.lint.flow.concurrency.blocking import (
    JOINS_PROCESS,
    LONG_POLLS,
    SLEEPS,
    WAITS_NETWORK,
    classify_external,
    classify_unresolved,
)

from tests.lint.flow.util import build_fixture_graph

#: A sleep reached transitively while a lock is held, plus a clean
#: variant that sleeps outside the critical section.
SLEEPY_FIXTURE = {
    "pool.py": (
        "import threading\n"
        "import time\n"
        "\n"
        "\n"
        "class Pool:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.jobs = []\n"
        "\n"
        "    def bad(self):\n"
        "        with self._lock:\n"
        "            self._backoff()\n"
        "            self.jobs.append(1)\n"
        "\n"
        "    def good(self):\n"
        "        self._backoff()\n"
        "        with self._lock:\n"
        "            self.jobs.append(1)\n"
        "\n"
        "    def _backoff(self):\n"
        "        time.sleep(0.01)\n"
    ),
}


class TestClassifiers:
    def test_external_classification(self):
        assert classify_external("time.sleep") == SLEEPS
        assert classify_external("threading.Thread.join") == JOINS_PROCESS
        assert (
            classify_external("multiprocessing.connection.wait")
            == JOINS_PROCESS
        )
        assert (
            classify_external("urllib.request.urlopen") == WAITS_NETWORK
        )
        assert classify_external("queue.Queue.get") == LONG_POLLS
        assert classify_external("math.sqrt") is None

    def test_unresolved_stream_syntax(self):
        assert classify_unresolved("self.wfile.write") == WAITS_NETWORK
        assert classify_unresolved("self.rfile.read") == WAITS_NETWORK
        assert classify_unresolved("self.jobs.append") is None


class TestBlockingAnalysis:
    def test_sleep_propagates_bottom_up(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, SLEEPY_FIXTURE, "ppkg")
        facts = concurrency_facts(graph)
        analysis = BlockingAnalysis(graph, facts.model)
        assert SLEEPS in analysis.effects_of("ppkg.pool.Pool._backoff")
        assert SLEEPS in analysis.effects_of("ppkg.pool.Pool.bad")

    def test_explain_names_the_origin(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, SLEEPY_FIXTURE, "ppkg")
        facts = concurrency_facts(graph)
        analysis = BlockingAnalysis(graph, facts.model)
        explanation = analysis.explain("ppkg.pool.Pool.bad", SLEEPS)
        assert "time.sleep" in explanation


class TestDeepBlockingUnderLock:
    def test_transitive_sleep_under_lock_flagged_once(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, SLEEPY_FIXTURE, "ppkg")
        findings = list(DeepBlockingUnderLock().check(graph))
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "deep-blocking-under-lock"
        assert "Pool.bad holds Pool._lock" in finding.message
        assert "'sleeps'" in finding.message

    def test_direct_external_call_under_lock(self, tmp_path):
        fixture = dict(SLEEPY_FIXTURE)
        fixture["pool.py"] = fixture["pool.py"].replace(
            "            self._backoff()\n"
            "            self.jobs.append(1)\n",
            "            time.sleep(0.01)\n"
            "            self.jobs.append(1)\n",
        )
        _, graph = build_fixture_graph(tmp_path, fixture, "ppkg")
        findings = list(DeepBlockingUnderLock().check(graph))
        assert len(findings) == 1
        assert "calling time.sleep" in findings[0].message

    def test_allowance_absorbs_the_effect(self, tmp_path):
        fixture = dict(SLEEPY_FIXTURE)
        fixture["pool.py"] = fixture["pool.py"].replace(
            "    def bad(self):\n",
            "    def bad(self):  # repro-effect: allow=sleeps\n",
        )
        _, graph = build_fixture_graph(tmp_path, fixture, "ppkg")
        assert list(DeepBlockingUnderLock().check(graph)) == []

    def test_cond_wait_holding_only_its_condition_is_legal(self, tmp_path):
        fixture = {
            "cv.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Waiter:\n"
                "    def __init__(self):\n"
                "        self._cond = threading.Condition()\n"
                "        self.ready = False\n"
                "\n"
                "    def block(self):\n"
                "        with self._cond:\n"
                "            while not self.ready:\n"
                "                self._cond.wait()\n"
            ),
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "cvpkg")
        assert list(DeepBlockingUnderLock().check(graph)) == []

    def test_cond_wait_holding_an_extra_lock_is_flagged(self, tmp_path):
        fixture = {
            "cv.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Waiter:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._cond = threading.Condition()\n"
                "        self.ready = False\n"
                "\n"
                "    def block(self):\n"
                "        with self._lock:\n"
                "            with self._cond:\n"
                "                while not self.ready:\n"
                "                    self._cond.wait()\n"
            ),
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "cvpkg")
        findings = list(DeepBlockingUnderLock().check(graph))
        assert len(findings) == 1
        message = findings[0].message
        assert "waits on condition Waiter._cond" in message
        assert "Waiter._lock" in message

    def test_worker_join_under_lock_via_typed_receiver(self, tmp_path):
        fixture = {
            "mgr.py": (
                "import threading\n"
                "from typing import List\n"
                "\n"
                "\n"
                "class Manager:\n"
                "    workers: List[threading.Thread]\n"
                "\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.workers = []\n"
                "\n"
                "    def stop(self):\n"
                "        with self._lock:\n"
                "            for worker in self.workers:\n"
                "                worker.join()\n"
                "\n"
                "    def spawn(self):\n"
                "        worker: threading.Thread = threading.Thread()\n"
                "        with self._lock:\n"
                "            self.workers.append(worker)\n"
                "        worker.start()\n"
            ),
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "mpkg")
        findings = list(DeepBlockingUnderLock().check(graph))
        assert len(findings) == 1
        assert "'joins-process'" in findings[0].message

    def test_stream_write_under_lock(self, tmp_path):
        fixture = {
            "h.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Handler:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.sent = 0\n"
                "\n"
                "    def reply(self, body):\n"
                "        with self._lock:\n"
                "            self.wfile.write(body)\n"
                "            self.sent += 1\n"
            ),
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "hpkg")
        findings = list(DeepBlockingUnderLock().check(graph))
        assert len(findings) == 1
        assert "'waits-network'" in findings[0].message

    def test_suppression_comment_silences(self, tmp_path):
        fixture = dict(SLEEPY_FIXTURE)
        fixture["pool.py"] = fixture["pool.py"].replace(
            "            self._backoff()\n"
            "            self.jobs.append(1)\n",
            "            self._backoff()  "
            "# repro-lint: disable=deep-blocking-under-lock\n"
            "            self.jobs.append(1)\n",
        )
        build_fixture_graph(tmp_path, fixture, "ppkg")
        findings, _ = deep_lint_paths(
            [str(tmp_path / "ppkg")],
            rule_names=["deep-blocking-under-lock"],
            package="ppkg",
        )
        assert findings == []
