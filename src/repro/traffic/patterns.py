"""Elementary traffic patterns: uniform/A2A, rack-to-rack, permutation.

These are the first two workloads of Section 5.2; permutation traffic is
included as the standard additional stressor used throughout the
topology-design literature.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.traffic.matrix import CanonicalCluster, RackPair, TrafficMatrix


def uniform(cluster: CanonicalCluster, name: str = "A2A") -> TrafficMatrix:
    """Uniform/A2A: every inter-rack pair equally weighted.

    Each flow gets a random source and destination server, so at rack
    level every ordered pair of distinct racks carries the same weight.
    """
    weights: Dict[RackPair, float] = {
        (r1, r2): 1.0
        for r1 in range(cluster.num_racks)
        for r2 in range(cluster.num_racks)
        if r1 != r2
    }
    return TrafficMatrix(cluster, weights, name=name)


def rack_to_rack(
    cluster: CanonicalCluster,
    src_rack: int = 0,
    dst_rack: int = 1,
    name: str = "R2R",
) -> TrafficMatrix:
    """Rack-to-rack: all servers of one rack send to all of another."""
    if src_rack == dst_rack:
        raise ValueError("src and dst racks must differ")
    return TrafficMatrix(cluster, {(src_rack, dst_rack): 1.0}, name=name)


def permutation(
    cluster: CanonicalCluster,
    seed: int = 0,
    name: str = "permutation",
) -> TrafficMatrix:
    """A random rack-level permutation: each rack sends to one other rack.

    A classic near-worst-case pattern for oversubscribed trees; included
    for the ablation benchmarks.
    """
    rng = random.Random(seed)
    racks = list(range(cluster.num_racks))
    targets = racks[:]
    # Fisher-Yates until derangement (no rack sends to itself).
    while True:
        rng.shuffle(targets)
        if all(r != t for r, t in zip(racks, targets)):
            break
    weights = {(r, t): 1.0 for r, t in zip(racks, targets)}
    return TrafficMatrix(cluster, weights, name=name)
