"""Weighted max-min fair bandwidth allocation by progressive filling.

This is the fluid model both simulators share.  Long-lived TCP flows
sharing a network converge approximately to a max-min fair allocation on
their paths; progressive filling computes it exactly: all entities' fair
level rises together, a link saturates, the entities crossing it freeze,
repeat.

The allocator is generic over "entities" (individual flows in the FCT
simulator, rack-pair commodities in the throughput solver): entity ``i``
consumes ``value`` units of link ``l`` per unit of its fair level
``lambda_i``, and its rate is ``lambda_i`` times its weight.  For a flow,
weight 1 and value 1 on every link of its path recovers classic max-min;
for a commodity of ``w`` flows splitting over many paths, weight ``w``
and value ``w * fraction(l)`` makes each *flow* of the commodity as fair
as a standalone flow.

Two entry points share one numpy core (:func:`fill_levels`):

* :func:`progressive_filling` — the legacy list-of-pairs interface.  It
  validates and flattens its input per call; fine for one-shot solves.
* :class:`Incidence` — a persistent flat entity→link incidence that the
  array-backed engine updates incrementally on flow admit/finish, so the
  per-event flatten disappears from the simulation hot loop entirely.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

#: Relative tolerance for declaring a link saturated.
_EPSILON = 1e-12

#: Smallest positive subnormal double.  ``max(demand, tiny)`` leaves
#: every positive demand bit-identical while keeping zero-demand links
#: out of 0/0; see the guarded division in :func:`fill_levels`.
_SUBNORMAL_TINY = 5e-324


class AllocationError(RuntimeError):
    """Raised when the allocation cannot make progress (bad inputs)."""


class FillRecorder(Protocol):
    """Observer for :func:`fill_levels` filling rounds.

    A recorder sees every round of a solve exactly as the solver computed
    it — the compressed link ids, the demand and pre-subtraction remaining
    vectors over them, the chosen increment, and the freeze decision.
    :mod:`repro.sim.warmfill` uses one to snapshot a solve so the next
    event can be replayed incrementally instead of re-solved from scratch.
    Recording never changes a float operation of the solve itself.
    """

    def on_round(
        self,
        links: np.ndarray,
        demand: np.ndarray,
        rem_pre: np.ndarray,
        increment: float,
        current: float,
        frozen: np.ndarray,
        sat_mask: np.ndarray,
        tie_mask: np.ndarray,
        forced: bool,
    ) -> None:
        """One filling round, in compressed link space."""
        ...

    def on_done(self, levels: np.ndarray, iterations: int) -> None:
        """The solve finished normally with these levels."""
        ...


# repro-perf: allow=deep-alloc-in-hot-loop -- amortized geometric growth
def _fit(current: np.ndarray, n: int) -> np.ndarray:
    """``current`` if it holds ``n`` elements, else a doubled buffer."""
    if len(current) >= n:
        return current
    return np.empty(max(n, 2 * len(current), 16), dtype=current.dtype)


class FillScratch:
    """Reusable buffers for :func:`fill_levels`.

    One solve needs several O(entities) / O(links) temporaries.  An
    event-driven caller re-solves after every admission and completion;
    keeping one instance alive across events turns those per-event
    allocations into buffer reuses.  Buffers grow geometrically and
    never shrink, so the steady-state solve allocates nothing but its
    result.
    """

    def __init__(self) -> None:
        self._active = np.empty(0, dtype=bool)
        self._remap = np.empty(0, dtype=np.intp)
        self._iota = np.empty(0, dtype=np.intp)
        self._remaining = np.empty(0)
        self._saturation = np.empty(0)
        self._headroom = np.empty(0)
        self._divisor = np.empty(0)
        self._unused = np.empty(0, dtype=bool)

    def active(self, n: int) -> np.ndarray:
        """Length-``n`` bool buffer (contents unspecified)."""
        self._active = _fit(self._active, n)
        return self._active[:n]

    def remap(self, n: int) -> np.ndarray:
        """Length-``n`` intp buffer (contents unspecified)."""
        self._remap = _fit(self._remap, n)
        return self._remap[:n]

    # repro-perf: allow=deep-alloc-in-hot-loop -- amortized geometric growth
    def iota(self, n: int) -> np.ndarray:
        """``[0, 1, ..., n-1]`` without a per-call ``np.arange``."""
        if len(self._iota) < n:
            self._iota = np.arange(
                max(n, 2 * len(self._iota), 16), dtype=np.intp
            )
        return self._iota[:n]

    def remaining(self, n: int) -> np.ndarray:
        """Length-``n`` float buffer (contents unspecified)."""
        self._remaining = _fit(self._remaining, n)
        return self._remaining[:n]

    def saturation(self, n: int) -> np.ndarray:
        """Length-``n`` float buffer (contents unspecified)."""
        self._saturation = _fit(self._saturation, n)
        return self._saturation[:n]

    def headroom(self, n: int) -> np.ndarray:
        """Length-``n`` float buffer (contents unspecified)."""
        self._headroom = _fit(self._headroom, n)
        return self._headroom[:n]

    def divisor(self, n: int) -> np.ndarray:
        """Length-``n`` float buffer (contents unspecified)."""
        self._divisor = _fit(self._divisor, n)
        return self._divisor[:n]

    def unused(self, n: int) -> np.ndarray:
        """Length-``n`` bool buffer (contents unspecified)."""
        self._unused = _fit(self._unused, n)
        return self._unused[:n]


# repro-hot: per-event -- re-solved after every admission and completion
def fill_levels(
    ent: np.ndarray,
    lnk: np.ndarray,
    val: np.ndarray,
    caps: np.ndarray,
    active: np.ndarray,
    links: Optional[np.ndarray] = None,
    scratch: Optional[FillScratch] = None,
    recorder: Optional[FillRecorder] = None,
) -> Tuple[np.ndarray, int]:
    """Progressive filling on a pre-flattened incidence.

    Parameters
    ----------
    ent, lnk, val:
        Parallel arrays: incidence entry ``j`` says entity ``ent[j]``
        consumes ``val[j] * lambda`` on link ``lnk[j]``.  Entries must
        already be validated (positive values, in-range link ids).
    caps:
        Positive capacity per link id.
    active:
        Boolean mask of entities whose levels should rise; entities
        starting inactive keep level 0 and contribute no demand.  The
        mask is copied, not mutated.
    links:
        Optional sorted array of exactly the distinct link ids among
        *active* entries, when the caller already tracks them (the flow
        simulator keeps per-link reference counts).  Skips the
        ``np.unique`` sort on the hot path; semantics are unchanged.
    scratch:
        Optional :class:`FillScratch` holding reusable work buffers.
        Callers that solve repeatedly (the event loop) pass a persistent
        instance so the steady-state solve allocates only its result;
        one-shot callers omit it and pay fresh buffers.  Results are
        identical either way.
    recorder:
        Optional :class:`FillRecorder` that observes each round.  The
        warm-start layer passes one to snapshot the solve; recording
        adds bookkeeping but changes no float operation, so levels are
        identical with or without it.

    Returns
    -------
    (levels, iterations):
        ``lambda`` per entity and the number of filling rounds run.

    Notes
    -----
    The loop works in a compressed link space (only links referenced by
    active entries) and keeps a working copy of the active entries that
    shrinks as entities freeze.  Both transformations are exact: links
    with no active entries carry zero demand and infinite headroom, so
    dropping them changes no float operation, and the working entries
    preserve admission order, so ``bincount`` accumulates demand sums in
    the identical order the full-mask formulation used.
    """
    if scratch is None:
        # repro-perf: allow=deep-recompile-in-loop -- one-shot callers
        scratch = FillScratch()
    level = np.zeros(len(active))
    mask: np.ndarray = scratch.active(len(active))
    np.copyto(mask, active)
    active = mask
    sel = active[ent]
    if sel.all():
        w_ent, w_lnk, w_val = ent, lnk, val
    else:
        w_ent, w_lnk, w_val = ent[sel], lnk[sel], val[sel]
    if not w_ent.size and active.any():
        raise AllocationError("active entities consume no capacity")
    # Compress to the referenced links; ids stay ascending, so argmin
    # tie-breaks agree with the full link space.
    if links is None:
        # repro-perf: allow=deep-alloc-in-hot-loop -- legacy-only sort
        links, w_lnk = np.unique(w_lnk, return_inverse=True)
    else:
        # Scatter-then-gather beats searchsorted: O(1) per entry with no
        # binary-search comparisons, and every w_lnk value is in links.
        remap = scratch.remap(len(caps))
        remap[links] = scratch.iota(len(links))
        w_lnk = remap[w_lnk]
    num_links = len(links)
    remaining: np.ndarray = scratch.remaining(num_links)
    saturation: np.ndarray = scratch.saturation(num_links)
    headroom: np.ndarray = scratch.headroom(num_links)
    divisor: np.ndarray = scratch.divisor(num_links)
    unused: np.ndarray = scratch.unused(num_links)
    np.take(caps, links, out=remaining)
    np.multiply(remaining, _EPSILON, out=saturation)
    current = 0.0
    iterations = 0

    while w_ent.size:
        iterations += 1
        demand = np.bincount(w_lnk, weights=w_val, minlength=num_links)
        used = demand > 0
        if not used.any():
            raise AllocationError("active entities consume no capacity")
        # Guarded full division instead of a masked one: ``max(d, tiny)``
        # with the smallest subnormal equals ``d`` for every positive
        # demand, so used links divide by the identical float, and the
        # ``where=``-masked inner loop (5-10x slower than plain ufunc
        # dispatch at these sizes) disappears from the hot path.  Unused
        # links still end up at +inf, exactly as the mask produced.
        np.maximum(demand, _SUBNORMAL_TINY, out=divisor)
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            np.divide(remaining, divisor, out=headroom)
        np.logical_not(used, out=unused)
        np.copyto(headroom, np.inf, where=unused)
        increment = float(headroom.min())
        if not math.isfinite(increment) or increment < 0:
            raise AllocationError("allocation cannot make progress")
        rem_pre = remaining.copy() if recorder is not None else None  # repro-perf: allow=deep-alloc-in-hot-loop -- snapshot taken only when a recorder is caching rounds for warm starts
        current += increment
        remaining -= increment * demand
        # Freeze entities crossing any saturated link they use.  A link
        # saturated in an earlier round has no active entries left (its
        # entities froze with it), so the ``used`` guard is implicit in
        # the working-set filtering below.
        saturated_links = used & (remaining <= saturation)
        touches = saturated_links[w_lnk]
        frozen = w_ent[touches]
        was_forced = frozen.size == 0
        if was_forced:
            # Numerical corner: force the single most-loaded link.
            forced = int(np.argmin(headroom))
            frozen = w_ent[w_lnk == forced]
        level[frozen] = current
        active[frozen] = False
        keep = active[w_ent]
        w_ent = w_ent[keep]
        w_lnk = w_lnk[keep]
        w_val = w_val[keep]
        if recorder is not None:
            assert rem_pre is not None
            recorder.on_round(
                links,
                demand,
                rem_pre,
                increment,
                current,
                frozen,
                saturated_links,
                used & (headroom == increment),
                was_forced,
            )

    if recorder is not None:
        recorder.on_done(level, iterations)
    return level, iterations


def progressive_filling(
    entity_links: Sequence[Sequence[Tuple[int, float]]],
    capacities: Sequence[float],
) -> np.ndarray:
    """Max-min fair levels for entities consuming capacity on links.

    Parameters
    ----------
    entity_links:
        ``entity_links[i]`` lists ``(link_index, value)`` pairs: entity i
        consumes ``value * lambda_i`` on that link.  Values must be
        positive; an entity with no links gets an infinite level, which
        is reported as an error because it indicates a modelling bug.
    capacities:
        Positive capacity per link index.

    Returns
    -------
    numpy.ndarray
        ``lambda_i`` per entity, the max-min fair levels.
    """
    num_entities = len(entity_links)
    caps = np.asarray(capacities, dtype=float)
    if np.any(caps <= 0):
        raise AllocationError("all link capacities must be positive")
    num_links = len(caps)

    # Flatten the incidence into parallel arrays for numpy bincount use.
    entity_index: List[int] = []
    link_index: List[int] = []
    values: List[float] = []
    for i, links in enumerate(entity_links):
        if not links:
            raise AllocationError(f"entity {i} uses no links")
        for link, value in links:
            if value <= 0:
                raise AllocationError(
                    f"entity {i} has non-positive value {value} on link {link}"
                )
            if not 0 <= link < num_links:
                raise AllocationError(f"entity {i} references bad link {link}")
            entity_index.append(i)
            link_index.append(link)
            values.append(value)
    ent = np.array(entity_index, dtype=np.intp)
    lnk = np.array(link_index, dtype=np.intp)
    val = np.array(values, dtype=float)

    active = np.ones(num_entities, dtype=bool)
    level, _iterations = fill_levels(ent, lnk, val, caps, active)
    return level


def flow_rates(
    flow_paths: Sequence[Sequence[int]],
    capacities: Sequence[float],
) -> np.ndarray:
    """Max-min fair rates for unit-weight flows over integer link ids."""
    entity_links = [
        [(link, 1.0) for link in path] for path in flow_paths
    ]
    return progressive_filling(entity_links, capacities)


class Incidence:
    """A persistent flat entity→link incidence for the engine's hot loop.

    Stores the same parallel ``(ent, lnk, val)`` arrays that
    :func:`progressive_filling` flattens per call, but keeps them alive
    across events: :meth:`append` adds one entity's entries on flow
    admit, :meth:`compact` drops retired entities' entries on finish.
    Arrays grow by doubling, so the steady-state cost per event is a few
    slice writes instead of rebuilding O(flows × path length) Python
    lists.

    Entries stay in admission order (compaction is order-preserving), so
    ``bincount``/``add.at`` reductions over them sum floats in exactly
    the order the legacy per-event rebuild did — bit-for-bit parity.
    """

    _INITIAL_CAPACITY = 1024

    def __init__(self) -> None:
        self._ent = np.empty(self._INITIAL_CAPACITY, dtype=np.intp)
        self._lnk = np.empty(self._INITIAL_CAPACITY, dtype=np.intp)
        self._val = np.empty(self._INITIAL_CAPACITY, dtype=float)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def ent(self) -> np.ndarray:
        """Entity id per entry (view; do not mutate)."""
        return self._ent[: self._size]

    @property
    def lnk(self) -> np.ndarray:
        """Link id per entry (view; do not mutate)."""
        return self._lnk[: self._size]

    @property
    def val(self) -> np.ndarray:
        """Consumption value per entry (view; do not mutate)."""
        return self._val[: self._size]

    # repro-perf: allow=deep-alloc-in-hot-loop -- amortized geometric growth
    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        capacity = len(self._ent)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_ent", "_lnk", "_val"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, name, grown)

    def append(self, entity: int, links: Sequence[int], value: float = 1.0) -> None:
        """Add ``(entity, link, value)`` entries for each link in order."""
        count = len(links)
        self._reserve(count)
        start = self._size
        end = start + count
        self._ent[start:end] = entity
        self._lnk[start:end] = links
        self._val[start:end] = value
        self._size = end

    def compact(self, keep_entity: np.ndarray) -> None:
        """Drop entries whose entity id has ``keep_entity[id]`` False.

        Order-preserving: surviving entries keep their relative order,
        so float-summation order over the incidence is unchanged.
        """
        ent = self._ent[: self._size]
        mask = keep_entity[ent]
        kept = int(np.count_nonzero(mask))
        if kept == self._size:
            return
        self._ent[:kept] = ent[mask]
        self._lnk[:kept] = self._lnk[: self._size][mask]
        self._val[:kept] = self._val[: self._size][mask]
        self._size = kept


class LinkIndex:
    """Assigns dense integer ids to hashable link keys.

    Both simulators address links by arbitrary keys (directed switch
    pairs, per-server access links); this maps them to the dense indices
    the allocator wants.
    """

    def __init__(self) -> None:
        self._ids: Dict[object, int] = {}
        self._keys: List[object] = []
        self._capacities: List[float] = []

    def add(self, key: object, capacity: float) -> int:
        """Register a link (idempotent); capacity must match on re-add."""
        if key in self._ids:
            existing = self._capacities[self._ids[key]]
            if existing != capacity:
                raise AllocationError(
                    f"link {key!r} re-registered with different capacity"
                )
            return self._ids[key]
        if capacity <= 0:
            raise AllocationError(f"link {key!r} has non-positive capacity")
        index = len(self._capacities)
        self._ids[key] = index
        self._keys.append(key)
        self._capacities.append(capacity)
        return index

    def id_of(self, key: object) -> int:
        return self._ids[key]

    def key_of(self, index: int) -> object:
        return self._keys[index]

    def capacity_of(self, index: int) -> float:
        return self._capacities[index]

    def __contains__(self, key: object) -> bool:
        return key in self._ids

    def __len__(self) -> int:
        return len(self._capacities)

    @property
    def capacities(self) -> List[float]:
        return list(self._capacities)
