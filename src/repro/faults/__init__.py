"""Fault injection: seeded fault models and the degraded-network transform.

See :mod:`repro.faults.models` for what can break and
:mod:`repro.faults.apply` for turning a sampled scenario into a
degraded :class:`~repro.core.network.Network`.
"""

from repro.faults.apply import apply_fault_set, physical_link_events
from repro.faults.models import (
    DEFAULT_GRAY_CAPACITY,
    FAULT_KINDS,
    FaultModelError,
    FaultSet,
    FaultSpec,
    sample_fault_set,
    shared_risk_groups,
)

__all__ = [
    "DEFAULT_GRAY_CAPACITY",
    "FAULT_KINDS",
    "FaultModelError",
    "FaultSet",
    "FaultSpec",
    "apply_fault_set",
    "physical_link_events",
    "sample_fault_set",
    "shared_risk_groups",
]
