"""The harness's single, injectable source of wall-clock time.

Everything in ``repro.harness`` (and the CLI) that needs real time —
manifest timestamps, cache entry ages, job wall-time accounting — reads
it through this module, never through ``time`` directly.  That buys two
things: tests pin time with :func:`fixed_clock` instead of sleeping or
monkeypatching stdlib, and the ``no-wallclock`` lint rule's allowlist is
exactly this one file, so a stray ``time.time()`` anywhere else in the
harness or the simulators is a gate failure.

``now()`` is epoch seconds (timestamps you store); ``perf()`` is a
monotonic high-resolution reading (durations you subtract).  Keep the
distinction: ``now`` can step with NTP, ``perf`` has an arbitrary epoch.
"""

from __future__ import annotations

import contextlib
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional


@dataclass(frozen=True)
class Clock:
    """A pair of time sources: wall epoch seconds and a monotonic timer."""

    now: Callable[[], float]
    perf: Callable[[], float]


SYSTEM_CLOCK = Clock(now=time.time, perf=time.perf_counter)

_active: Clock = SYSTEM_CLOCK


def active_clock() -> Clock:
    """The clock currently in effect (system unless a test injected one)."""
    return _active


def now() -> float:
    """Wall-clock epoch seconds from the active clock."""
    return _active.now()


def perf() -> float:
    """Monotonic high-resolution seconds from the active clock."""
    # repro-perf: allow=deep-hot-dispatch -- swappable-clock indirection is this module's purpose
    return _active.perf()


def set_clock(clock: Clock) -> Clock:
    """Install ``clock`` process-wide; returns the previous one."""
    global _active
    previous = _active
    _active = clock
    return previous


@dataclass
class TickingClock:
    """A deterministic clock for tests: advances a fixed step per read.

    Both sources share one timeline, so a manifest's ``started_at`` and
    its ``wall_seconds`` stay mutually consistent under test.
    """

    start: float = 1_000_000_000.0
    step: float = 1.0
    _ticks: Iterator[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._ticks = itertools.count()

    def _read(self) -> float:
        return self.start + self.step * next(self._ticks)

    def as_clock(self) -> Clock:
        return Clock(now=self._read, perf=self._read)


@contextlib.contextmanager
def fixed_clock(
    clock: Optional[Clock] = None,
    start: float = 1_000_000_000.0,
    step: float = 1.0,
) -> Iterator[Clock]:
    """Temporarily replace the active clock (tests).

    With no ``clock`` argument, installs a :class:`TickingClock` that
    starts at ``start`` and advances ``step`` seconds per read.
    """
    installed = (
        clock
        if clock is not None
        else TickingClock(start=start, step=step).as_clock()
    )
    previous = set_clock(installed)
    try:
        yield installed
    finally:
        set_clock(previous)
