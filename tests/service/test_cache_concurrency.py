"""Cross-process cache safety: N writers x M readers, no torn reads.

The entry write path is private-temp-file + atomic rename, and PR 6
suffixed temp names with (pid, per-process counter) so two processes —
or two threads of one process — writing the same key can never collide
on the temp file itself.  These tests hammer one key from many
processes and assert every read is a complete, valid payload, and that
the surviving entry is byte-for-byte one writer's full payload (the
rename's winner), never an interleaving.
"""

import itertools
import json
import multiprocessing

import pytest

from repro.harness.cache import ResultCache
from repro.harness.jobs import JobSpec

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="stress workers are forked to share the spec cheaply",
)

SPEC = JobSpec.make("selftest", mode="ok", value=1)
WRITERS = 4
READERS = 2
ROUNDS = 25

#: Each writer writes a recognizably-whole payload: its id repeated.
def _payload_for_writer(writer_id):
    return {"writer": writer_id, "blob": f"w{writer_id}" * 2048}


def _writer(root, writer_id, failures):
    cache = ResultCache(root)
    for _ in range(ROUNDS):
        try:
            cache.put(
                SPEC.key(), SPEC, _payload_for_writer(writer_id), 0.1
            )
        except Exception as exc:  # any put error is a failure
            failures.put(f"writer {writer_id}: {exc!r}")
            return


def _reader(root, reader_id, failures):
    cache = ResultCache(root)
    for _ in range(ROUNDS * 2):
        try:
            result = cache.get(SPEC.key())
        except Exception as exc:
            failures.put(f"reader {reader_id}: {exc!r}")
            return
        if result is None:
            continue  # not yet written, or mid-replace: fine
        writer_id = result.get("writer")
        if result != _payload_for_writer(writer_id):
            failures.put(
                f"reader {reader_id}: torn payload for writer "
                f"{writer_id}"
            )
            return


@fork_only
class TestWriterReaderStress:
    def test_no_torn_reads_and_whole_winner(self, tmp_path):
        root = tmp_path / "cache"
        ResultCache(root).put(SPEC.key(), SPEC, _payload_for_writer(0),
                              0.1)
        failures = multiprocessing.Queue()
        procs = [
            multiprocessing.Process(
                target=_writer, args=(root, writer_id, failures)
            )
            for writer_id in range(1, WRITERS + 1)
        ] + [
            multiprocessing.Process(
                target=_reader, args=(root, reader_id, failures)
            )
            for reader_id in range(READERS)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60.0)
            assert not proc.is_alive(), "stress process hung"
            assert proc.exitcode == 0
        problems = []
        while not failures.empty():
            problems.append(failures.get())
        assert problems == []
        # the survivor is exactly one writer's complete payload
        cache = ResultCache(root)
        final = cache.get(SPEC.key())
        assert final == _payload_for_writer(final["writer"])
        # and no temp debris survived the stampede
        assert [p for p in root.rglob("*.tmp")] == []

    def test_winner_is_deterministic_under_serial_replay(self, tmp_path):
        """Sequential writes (any interleaving's serialization) end on
        the last writer — os.replace is last-writer-wins."""
        root = tmp_path / "cache"
        cache = ResultCache(root)
        for writer_id in (1, 2, 3):
            cache.put(
                SPEC.key(), SPEC, _payload_for_writer(writer_id), 0.1
            )
        assert cache.get(SPEC.key()) == _payload_for_writer(3)


class TestTempNameRegression:
    """The PR 6 fix: temp names carry (pid, counter), so same-process
    and cross-process writers never share a temp path."""

    def test_temp_names_are_unique_within_a_process(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = SPEC.key()
        assert cache._temp_path_for(key) != cache._temp_path_for(key)

    def test_temp_name_encodes_pid(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "cache")
        name = cache._temp_path_for(SPEC.key()).name
        assert f".{os.getpid()}." in name
        assert name.endswith(".tmp")

    def test_stale_temp_from_recycled_pid_does_not_block_put(
        self, tmp_path
    ):
        """A leftover temp file with our exact next name (a crashed
        process with a recycled pid) must not wedge put(): the writer
        skips to a fresh counter value."""
        import os

        from repro.harness import cache as cache_module

        cache = ResultCache(tmp_path / "cache")
        key = SPEC.key()
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # plant collisions for the next two counter values
        counter = cache_module._TMP_COUNTER
        upcoming = [next(counter) for _ in range(2)]
        cache_module._TMP_COUNTER = itertools.chain(
            iter(upcoming), counter
        )
        try:
            for value in upcoming:
                stale = path.parent / (
                    f".{key[:8]}.{os.getpid()}.{value}.tmp"
                )
                stale.write_text("stale")
            cache.put(key, SPEC, {"echo": 1}, 0.1)
        finally:
            cache_module._TMP_COUNTER = counter
        assert cache.get(key) == {"echo": 1}

    def test_payload_on_disk_is_whole_json(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(SPEC.key(), SPEC, _payload_for_writer(7), 0.1)
        payload = json.loads(cache.path_for(SPEC.key()).read_text())
        assert payload["result"] == _payload_for_writer(7)
