"""no-wallclock: simulation and harness code may not read real time.

Simulated time is the only time that exists inside ``sim``, ``routing``,
``faults`` and ``topology`` — a wall-clock read there either leaks into
results (breaking byte-identical reruns) or silently couples behavior to
machine speed.  Harness code *does* need wall time (manifests, cache
timestamps, job timing), so every read there flows through the single
injectable source in ``repro/harness/clock.py`` — the one file this rule
allowlists — keeping tests independent of real time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule

_BANNED_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

_SCOPED_PACKAGES = (
    "sim", "routing", "faults", "topology", "harness", "service",
)

#: The one sanctioned wall-clock reader (see module docstring).
_ALLOWLIST = ("harness/clock.py",)


@register_rule
class NoWallclock(Rule):
    name = "no-wallclock"
    summary = (
        "wall-clock reads (time.time, perf_counter, datetime.now) in "
        "sim/routing/faults/topology/harness code"
    )
    invariant = (
        "simulator output depends only on (inputs, seed); harness time "
        "flows through the injectable repro.harness.clock source"
    )

    def applies(self, context: FileContext) -> bool:
        return (
            context.in_package(*_SCOPED_PACKAGES)
            and not context.is_repro_file(*_ALLOWLIST)
            and not context.is_test
        )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = context.resolve(node.func)
            if dotted in _BANNED_CALLS:
                yield self.finding(
                    context, node.lineno, node.col_offset,
                    f"wall-clock read '{dotted}'; simulation code must "
                    "be time-free, harness code must go through "
                    "repro.harness.clock",
                )
