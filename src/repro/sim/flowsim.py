"""Event-driven flow-level simulator: the stand-in for htsim (Section 5.3).

Flows arrive at their start times, share bandwidth max-min fairly with
every other active flow (the fluid limit of long-lived TCP), and depart
when their bytes are delivered.  Rates are recomputed at every arrival
and departure, so between events the system is piecewise constant and
completion times are exact under the fluid model.

Each flow occupies its source server's uplink, its destination server's
downlink, and the directed network links of the switch path its first
packet was ECMP-hashed onto (``RoutingScheme.sample_path``).  Intra-rack
flows use only the server links, which is how flat networks keep local
traffic off the fabric.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.network import Network
from repro.routing.base import RoutingScheme
from repro.sim.maxmin import LinkIndex, flow_rates
from repro.sim.results import FctResults, FlowRecord
from repro.traffic.flows import Flow
from repro.traffic.matrix import Placement

#: Bytes below which a flow counts as finished (guards float round-off).
_RESIDUAL_BYTES = 1e-6


@dataclass
class _ActiveFlow:
    flow: Flow
    remaining: float
    links: List[int]
    path: Tuple[int, ...]
    src_server: int
    dst_server: int


class FlowSimulator:
    """Simulates a flow workload on one (topology, routing) combination."""

    def __init__(
        self,
        network: Network,
        routing: RoutingScheme,
        placement: Placement,
        seed: int = 0,
        hop_latency_s: float = 0.0,
    ) -> None:
        """``hop_latency_s`` adds a fixed per-link latency to each flow's
        completion time (propagation + store-and-forward), improving
        small-flow fidelity; it does not affect bandwidth sharing.  The
        default 0 reproduces the pure fluid model."""
        if hop_latency_s < 0:
            raise ValueError("hop latency must be non-negative")
        if routing.network is not network:
            raise ValueError("routing was built for a different network")
        if placement.network is not network:
            raise ValueError("placement targets a different network")
        self.network = network
        self.routing = routing
        self.placement = placement
        self.hop_latency_s = hop_latency_s
        self._rng = random.Random(seed)
        self._links = LinkIndex()
        for (u, v), capacity in network.directed_capacities().items():
            self._links.add(("net", u, v), capacity)
        #: Bytes carried per link id, filled during :meth:`run`.
        self._link_bytes: Dict[int, float] = {}
        self._elapsed = 0.0

    # ------------------------------------------------------------------

    def _server_link(self, direction: str, server: int) -> int:
        return self._links.add(
            (direction, server), self.network.server_link_capacity
        )

    def _admit(self, flow: Flow) -> _ActiveFlow:
        """Resolve endpoints, hash a path, and build the link list."""
        src = self.placement.network_server(flow.src_server)
        dst = self.placement.network_server(flow.dst_server)
        links = [self._server_link("up", src)]
        if dst != src:
            links.append(self._server_link("down", dst))
        src_rack = self.network.switch_of_server(src)
        dst_rack = self.network.switch_of_server(dst)
        if src_rack != dst_rack:
            path = self.routing.sample_path(src_rack, dst_rack, self._rng)
            for u, v in zip(path, path[1:]):
                links.append(self._links.id_of(("net", u, v)))
        else:
            path = (src_rack,)
        return _ActiveFlow(
            flow=flow,
            remaining=flow.size_bytes,
            links=links,
            path=path,
            src_server=src,
            dst_server=dst,
        )

    # ------------------------------------------------------------------

    def run(self, flows: Sequence[Flow]) -> FctResults:
        """Simulate the workload to completion and return all FCTs."""
        arrivals = sorted(flows, key=lambda f: f.start_time)
        results = FctResults()
        active: List[_ActiveFlow] = []
        now = 0.0
        next_arrival = 0

        while active or next_arrival < len(arrivals):
            # Admit every flow starting exactly now (zero-width batch).
            while (
                next_arrival < len(arrivals)
                and arrivals[next_arrival].start_time <= now + 1e-15
            ):
                active.append(self._admit(arrivals[next_arrival]))
                next_arrival += 1

            if not active:
                now = arrivals[next_arrival].start_time
                continue

            rates = flow_rates(
                [entry.links for entry in active], self._links.capacities
            )

            # Earliest completion under current rates, in seconds.
            times = np.array(
                [entry.remaining for entry in active]
            ) * 8.0 / (rates * 1e9)
            finish_dt = float(times.min())
            arrival_dt = (
                arrivals[next_arrival].start_time - now
                if next_arrival < len(arrivals)
                else np.inf
            )
            dt = min(finish_dt, arrival_dt)
            if dt < 0:
                raise RuntimeError("simulation time went backwards")

            # Drain bytes at the constant rates over dt.
            drained = rates * 1e9 / 8.0 * dt
            now += dt
            still_active: List[_ActiveFlow] = []
            for entry, spent in zip(active, drained):
                entry.remaining -= spent
                if spent > 0.0:
                    for link in entry.links:
                        self._link_bytes[link] = (
                            self._link_bytes.get(link, 0.0) + spent
                        )
                if entry.remaining <= _RESIDUAL_BYTES and dt == finish_dt:
                    latency = self.hop_latency_s * len(entry.links)
                    results.add(
                        FlowRecord(
                            src_server=entry.src_server,
                            dst_server=entry.dst_server,
                            size_bytes=entry.flow.size_bytes,
                            start_time=entry.flow.start_time,
                            finish_time=now + latency,
                            path=entry.path,
                        )
                    )
                else:
                    still_active.append(entry)
            active = still_active

        self._elapsed = now
        return results

    # ------------------------------------------------------------------
    # Post-run analysis
    # ------------------------------------------------------------------

    def link_utilization(self) -> Dict[object, float]:
        """Average utilization per link over the run, keyed by link key.

        Keys are ``("net", u, v)`` for directed network links and
        ``("up"/"down", server)`` for host links; only links that carried
        traffic appear.  Must be called after :meth:`run`.
        """
        if self._elapsed <= 0.0:
            raise RuntimeError("run() has not completed yet")
        report: Dict[object, float] = {}
        for link_id, carried in self._link_bytes.items():
            capacity_bps = self._links.capacity_of(link_id) * 1e9 / 8.0
            report[self._links.key_of(link_id)] = carried / (
                capacity_bps * self._elapsed
            )
        return report

    def hottest_links(self, count: int = 5) -> List[Tuple[object, float]]:
        """The ``count`` most utilized links, hottest first."""
        utilization = self.link_utilization()
        ranked = sorted(utilization.items(), key=lambda kv: -kv[1])
        return ranked[:count]


def simulate_fct(
    network: Network,
    routing: RoutingScheme,
    placement: Placement,
    flows: Sequence[Flow],
    seed: int = 0,
) -> FctResults:
    """Convenience wrapper: build the simulator and run one workload."""
    return FlowSimulator(network, routing, placement, seed=seed).run(flows)
