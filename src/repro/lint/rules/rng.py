"""no-unseeded-rng: all randomness must flow through an injected RNG.

Module-level ``random.*`` / ``numpy.random.*`` calls draw from hidden
global state: two call sites interleave differently when code moves,
and reruns of "the same" experiment stop being byte-identical.  The
sanctioned pattern everywhere in this repository is a
``random.Random(seed)`` (or ``numpy.random.default_rng(seed)``)
constructed from an explicit seed and passed down.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule

#: ``random`` module functions that read or mutate the hidden global RNG.
_BANNED_RANDOM = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: ``numpy.random`` attributes that construct *seedable* generators —
#: everything else on the module draws from the hidden legacy global.
_ALLOWED_NUMPY = frozenset({
    "Generator", "RandomState", "SeedSequence", "default_rng",
})


@register_rule
class NoUnseededRng(Rule):
    name = "no-unseeded-rng"
    summary = (
        "bare random.* / numpy.random.* module calls instead of an "
        "injected Random(seed)"
    )
    invariant = (
        "every random draw is attributable to an explicit seed, so any "
        "experiment cell can be replayed bit-for-bit"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = context.resolve(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[0] == "random" and len(parts) == 2:
                if parts[1] in _BANNED_RANDOM:
                    yield self.finding(
                        context, node.lineno, node.col_offset,
                        f"call to global-state '{dotted}'; construct a "
                        "random.Random(seed) and pass it down instead",
                    )
            elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
                if parts[2] not in _ALLOWED_NUMPY:
                    yield self.finding(
                        context, node.lineno, node.col_offset,
                        f"call to legacy global '{dotted}'; use "
                        "numpy.random.default_rng(seed) and pass the "
                        "generator down instead",
                    )
