"""deep_lint_paths: the library entry the CLI and CI build on."""

from __future__ import annotations

import pathlib

from repro.lint.flow import deep_lint_paths

BAD_WORK = (
    "import random\n"
    "\n"
    "\n"
    "def make():\n"
    "    return random.Random()\n"
)


def _write_package(tmp_path: pathlib.Path, work_source: str):
    root = tmp_path / "src" / "repro"
    root.mkdir(parents=True)
    (root / "__init__.py").write_text("")
    (root / "work.py").write_text(work_source)
    return root


class TestDeepLintPaths:
    def test_finds_package_and_reports(self, tmp_path, monkeypatch):
        _write_package(tmp_path, BAD_WORK)
        monkeypatch.chdir(tmp_path)
        findings, stats = deep_lint_paths(["src"])
        assert len(findings) == 1
        assert findings[0].rule == "deep-seed-provenance"
        assert findings[0].path == str(
            pathlib.Path("src") / "repro" / "work.py"
        )
        assert stats["resolved_fraction"] > 0.0

    def test_suppression_comment_honored(self, tmp_path, monkeypatch):
        _write_package(
            tmp_path,
            BAD_WORK.replace(
                "return random.Random()",
                "return random.Random()"
                "  # repro-lint: disable=deep-seed-provenance",
            ),
        )
        monkeypatch.chdir(tmp_path)
        findings, _ = deep_lint_paths(["src"])
        assert findings == []

    def test_rule_selection(self, tmp_path, monkeypatch):
        _write_package(tmp_path, BAD_WORK)
        monkeypatch.chdir(tmp_path)
        findings, _ = deep_lint_paths(
            ["src"], rule_names=["deep-unit-consistency"]
        )
        assert findings == []

    def test_path_filter_limits_reports(self, tmp_path, monkeypatch):
        """The whole package is analyzed but only requested files are
        reported — the changed-files pre-commit contract."""
        root = _write_package(tmp_path, BAD_WORK)
        (root / "other.py").write_text(
            "import random\n"
            "\n"
            "\n"
            "def other():\n"
            "    return random.Random()\n"
        )
        monkeypatch.chdir(tmp_path)
        findings, _ = deep_lint_paths([str(root / "other.py")])
        assert len(findings) == 1
        assert findings[0].path.endswith("other.py")

    def test_no_package_returns_empty(self, tmp_path):
        findings, stats = deep_lint_paths([str(tmp_path)])
        assert findings == []
        assert stats == {}
