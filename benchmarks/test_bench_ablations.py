"""E9/E10: ablations over the paper's design choices.

* K sweep (Section 4's "K = 2 offers a good tradeoff"): more K = more
  paths but longer detours; K=2 should fix R2R without hurting uniform
  traffic much.
* DRing shape: at fixed racks, wider supernodes buy shorter diameters at
  the cost of switch radix.
* Failures (Section 7's open question): one link failure leaves SU(2)
  with ample disjoint paths, and BGP reconverges in a handful of rounds.
"""

import pytest

from conftest import save_artifact
from repro.experiments import (
    run_dring_shape_sweep,
    run_failure_study,
    run_k_sweep,
)
from repro.topology import dring
from repro.traffic import CanonicalCluster


@pytest.fixture(scope="module")
def network():
    return dring(8, 2, servers_per_rack=6)


@pytest.fixture(scope="module")
def cluster():
    return CanonicalCluster(16, 6)


@pytest.fixture(scope="module")
def k_sweep(network, cluster):
    points = run_k_sweep(network, cluster, ks=(1, 2, 3), num_flows=600, seed=0)
    lines = [f"{'K':>3}{'pattern':>10}{'median ms':>12}{'p99 ms':>10}{'paths':>8}"]
    for p in points:
        lines.append(
            f"{p.k:>3}{p.pattern:>10}{p.median_ms:>12.4f}{p.p99_ms:>10.4f}"
            f"{p.mean_paths:>8.1f}"
        )
    save_artifact("ablation_k_sweep.txt", "\n".join(lines))
    return points


def test_bench_k_sweep(benchmark, k_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_kp = {(p.k, p.pattern): p for p in k_sweep}
    # K=2 improves the R2R tail over plain shortest paths (K=1)...
    assert by_kp[(2, "r2r")].p99_ms <= by_kp[(1, "r2r")].p99_ms * 1.05
    # ...while path diversity grows monotonically with K.
    assert (
        by_kp[(1, "uniform")].mean_paths
        <= by_kp[(2, "uniform")].mean_paths
        <= by_kp[(3, "uniform")].mean_paths
    )


def test_bench_dring_shape_sweep(benchmark):
    points = benchmark.pedantic(
        run_dring_shape_sweep,
        kwargs={"shapes": ((12, 2), (8, 3), (6, 4)), "num_flows": 400},
        rounds=1,
        iterations=1,
    )
    lines = [f"{'m':>4}{'n':>4}{'racks':>7}{'degree':>8}{'diam':>6}{'p99 ms':>10}"]
    for p in points:
        lines.append(
            f"{p.m:>4}{p.n:>4}{p.racks:>7}{p.network_degree:>8}"
            f"{p.diameter:>6}{p.p99_ms:>10.4f}"
        )
    save_artifact("ablation_dring_shape.txt", "\n".join(lines))
    # Wider supernodes shrink the diameter at equal rack count.
    assert points[-1].diameter <= points[0].diameter


def test_bench_failure_study(benchmark, network):
    report = benchmark.pedantic(
        run_failure_study,
        args=(network,),
        kwargs={"num_failures": 1, "seed": 0},
        rounds=1,
        iterations=1,
    )
    save_artifact(
        "ablation_failures.txt",
        (
            f"failed links: {report.failed_links}\n"
            f"reconvergence rounds: {report.reconvergence_rounds}\n"
            f"min SU(2) paths before: {report.min_su2_paths_before}\n"
            f"min SU(2) paths after: {report.min_su2_paths_after}\n"
            f"still connected: {report.still_connected}"
        ),
    )
    assert report.still_connected
    assert report.min_su2_paths_after >= 1
    assert report.reconvergence_rounds <= 12


def test_bench_scheme_zoo(benchmark):
    """Section 2's routing landscape: the paper's deployable SU(2) vs the
    impractical KSP (Jellyfish/MPTCP) and VLB baselines."""
    from repro.experiments import run_scheme_zoo
    from repro.traffic import CanonicalCluster

    net = dring(8, 2, servers_per_rack=6)
    cluster = CanonicalCluster(16, 6)
    points = benchmark.pedantic(
        run_scheme_zoo,
        args=(net, cluster),
        kwargs={"num_flows": 600, "seed": 0},
        rounds=1,
        iterations=1,
    )
    lines = [f"{'pattern':>9}{'scheme':>9}{'median ms':>11}{'p99 ms':>9}{'hops':>7}"]
    for p in points:
        lines.append(
            f"{p.pattern:>9}{p.scheme:>9}{p.median_ms:>11.4f}"
            f"{p.p99_ms:>9.4f}{p.mean_hops:>7.2f}"
        )
    save_artifact("scheme_zoo.txt", "\n".join(lines))
    by = {(p.scheme, p.pattern): p for p in points}
    assert by[("su(2)", "r2r")].p99_ms <= by[("ecmp", "r2r")].p99_ms / 2
    assert by[("su(2)", "r2r")].p99_ms <= by[("vlb", "r2r")].p99_ms * 1.5


def test_bench_heterogeneous(benchmark):
    """Section 5.1's deferred heterogeneous case: at constant 3:1
    oversubscription, faster uplinks keep the flat advantage — provided
    servers are spread radix-proportionally (a reproduction finding:
    even spreading turns the fat ex-spines into hubs)."""
    from repro.experiments import run_heterogeneous_study

    points = benchmark.pedantic(
        run_heterogeneous_study, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    lines = [f"{'uplinks':>8}{'leafspine p99':>15}{'flat p99':>10}{'gain':>7}"]
    for p in points:
        lines.append(
            f"{'x' + str(p.uplink_mult):>8}{p.leafspine_p99_ms:>15.3f}"
            f"{p.flat_p99_ms:>10.3f}{p.flat_gain:>7.2f}"
        )
    save_artifact("heterogeneous.txt", "\n".join(lines))
    assert all(p.flat_gain > 0.9 for p in points)
