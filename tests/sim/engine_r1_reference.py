"""Verbatim freeze of the round-1 engine (PR 5/PR 9 state of the tree).

The round-2 refactor replaces the from-scratch waterfilling re-solve per
event with a warm-started allocator.  Its benchmark gate — ``>= 10x on a
512-rack / 100k-flow fig4 cell with bit-identical records`` — compares
against *this* module: the array-backed engine exactly as it stood
before the refactor (persistent incidence, compressed link space, fresh
``fill_levels`` solve at every event).

Like ``tests/sim/legacy_reference.py``, this is a reference artifact:
do not modernize it, do not share code with ``repro.sim`` beyond the
topology/routing/placement infrastructure both sides must agree on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.network import Network
from repro.routing.base import RoutingScheme
from repro.sim.results import FctResults, FlowRecord
from repro.traffic.flows import Flow
from repro.traffic.matrix import Placement

_EPSILON = 1e-12
_RESIDUAL_BYTES = 1e-6
_COMPLETION_RTOL = 1e-12


class R1AllocationError(RuntimeError):
    """Raised when the allocation cannot make progress (bad inputs)."""


def _fit(current: np.ndarray, n: int) -> np.ndarray:
    if len(current) >= n:
        return current
    return np.empty(max(n, 2 * len(current), 16), dtype=current.dtype)


class R1FillScratch:
    """Round-1 reusable buffers for :func:`r1_fill_levels`."""

    def __init__(self) -> None:
        self._active = np.empty(0, dtype=bool)
        self._remap = np.empty(0, dtype=np.intp)
        self._iota = np.empty(0, dtype=np.intp)
        self._remaining = np.empty(0)
        self._saturation = np.empty(0)
        self._headroom = np.empty(0)

    def active(self, n: int) -> np.ndarray:
        self._active = _fit(self._active, n)
        return self._active[:n]

    def remap(self, n: int) -> np.ndarray:
        self._remap = _fit(self._remap, n)
        return self._remap[:n]

    def iota(self, n: int) -> np.ndarray:
        if len(self._iota) < n:
            self._iota = np.arange(
                max(n, 2 * len(self._iota), 16), dtype=np.intp
            )
        return self._iota[:n]

    def remaining(self, n: int) -> np.ndarray:
        self._remaining = _fit(self._remaining, n)
        return self._remaining[:n]

    def saturation(self, n: int) -> np.ndarray:
        self._saturation = _fit(self._saturation, n)
        return self._saturation[:n]

    def headroom(self, n: int) -> np.ndarray:
        self._headroom = _fit(self._headroom, n)
        return self._headroom[:n]


def r1_fill_levels(
    ent: np.ndarray,
    lnk: np.ndarray,
    val: np.ndarray,
    caps: np.ndarray,
    active: np.ndarray,
    links: Optional[np.ndarray] = None,
    scratch: Optional[R1FillScratch] = None,
) -> Tuple[np.ndarray, int]:
    """Round-1 progressive filling: from-scratch solve per call."""
    if scratch is None:
        scratch = R1FillScratch()
    level = np.zeros(len(active))
    mask: np.ndarray = scratch.active(len(active))
    np.copyto(mask, active)
    active = mask
    sel = active[ent]
    if sel.all():
        w_ent, w_lnk, w_val = ent, lnk, val
    else:
        w_ent, w_lnk, w_val = ent[sel], lnk[sel], val[sel]
    if not w_ent.size and active.any():
        raise R1AllocationError("active entities consume no capacity")
    if links is None:
        links, w_lnk = np.unique(w_lnk, return_inverse=True)
    else:
        remap = scratch.remap(len(caps))
        remap[links] = scratch.iota(len(links))
        w_lnk = remap[w_lnk]
    num_links = len(links)
    remaining: np.ndarray = scratch.remaining(num_links)
    saturation: np.ndarray = scratch.saturation(num_links)
    headroom: np.ndarray = scratch.headroom(num_links)
    np.take(caps, links, out=remaining)
    np.multiply(remaining, _EPSILON, out=saturation)
    current = 0.0
    iterations = 0

    while w_ent.size:
        iterations += 1
        demand = np.bincount(w_lnk, weights=w_val, minlength=num_links)
        used = demand > 0
        if not used.any():
            raise R1AllocationError("active entities consume no capacity")
        headroom.fill(np.inf)
        np.divide(remaining, demand, out=headroom, where=used)
        increment = float(headroom.min())
        if not math.isfinite(increment) or increment < 0:
            raise R1AllocationError("allocation cannot make progress")
        current += increment
        remaining -= increment * demand
        saturated_links = used & (remaining <= saturation)
        touches = saturated_links[w_lnk]
        frozen = w_ent[touches]
        if frozen.size == 0:
            forced = int(np.argmin(headroom))
            frozen = w_ent[w_lnk == forced]
        level[frozen] = current
        active[frozen] = False
        keep = active[w_ent]
        w_ent = w_ent[keep]
        w_lnk = w_lnk[keep]
        w_val = w_val[keep]

    return level, iterations


class R1Incidence:
    """Round-1 persistent flat entity-to-link incidence."""

    _INITIAL_CAPACITY = 1024

    def __init__(self) -> None:
        self._ent = np.empty(self._INITIAL_CAPACITY, dtype=np.intp)
        self._lnk = np.empty(self._INITIAL_CAPACITY, dtype=np.intp)
        self._val = np.empty(self._INITIAL_CAPACITY, dtype=float)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def ent(self) -> np.ndarray:
        return self._ent[: self._size]

    @property
    def lnk(self) -> np.ndarray:
        return self._lnk[: self._size]

    @property
    def val(self) -> np.ndarray:
        return self._val[: self._size]

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        capacity = len(self._ent)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_ent", "_lnk", "_val"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, name, grown)

    def append(
        self, entity: int, links: Sequence[int], value: float = 1.0
    ) -> None:
        count = len(links)
        self._reserve(count)
        start = self._size
        end = start + count
        self._ent[start:end] = entity
        self._lnk[start:end] = links
        self._val[start:end] = value
        self._size = end

    def compact(self, keep_entity: np.ndarray) -> None:
        ent = self._ent[: self._size]
        mask = keep_entity[ent]
        kept = int(np.count_nonzero(mask))
        if kept == self._size:
            return
        self._ent[:kept] = ent[mask]
        self._lnk[:kept] = self._lnk[: self._size][mask]
        self._val[:kept] = self._val[: self._size][mask]
        self._size = kept


@dataclass
class _R1ActiveFlow:
    flow: Flow
    links: np.ndarray
    path: Tuple[int, ...]
    src_server: int
    dst_server: int


class R1FlowSimulator:
    """The round-1 event loop: one from-scratch allocator solve per event."""

    def __init__(
        self,
        network: Network,
        routing: RoutingScheme,
        placement: Placement,
        seed: int = 0,
        hop_latency_s: float = 0.0,
    ) -> None:
        if hop_latency_s < 0:
            raise ValueError("hop latency must be non-negative")
        if routing.network is not network:
            raise ValueError("routing was built for a different network")
        if placement.network is not network:
            raise ValueError("placement targets a different network")
        self.network = network
        self.routing = routing
        self.placement = placement
        self.hop_latency_s = hop_latency_s
        self._rng = random.Random(seed)

        table = network.link_table()
        bad = np.flatnonzero(table.capacities <= 0)
        if bad.size:
            key = ("net",) + table.pairs[int(bad[0])]
            raise R1AllocationError(f"link {key!r} has non-positive capacity")
        self._table = table
        self._compiled = routing.compile(table)
        self._num_net = len(table)
        self._num_servers = network.num_servers
        self._server_cap = network.server_link_capacity
        self._caps = np.concatenate(
            [
                table.capacities,
                np.full(2 * self._num_servers, float(self._server_cap)),
            ]
        )

        self._incidence = R1Incidence()
        self._fill_scratch = R1FillScratch()
        self._link_refs = np.zeros(len(self._caps), dtype=np.int64)
        self._meta: List[_R1ActiveFlow] = []
        self._slot_alive = np.zeros(0, dtype=bool)
        self._remaining = np.zeros(0)
        self._spent = np.zeros(0)
        self._num_active = 0
        self._link_bytes = np.zeros(len(self._caps))
        self._elapsed = 0.0

    def _grow_slots(self, total: int) -> None:
        capacity = len(self._slot_alive)
        if total <= capacity:
            return
        capacity = max(capacity * 2, total, 64)
        alive = np.zeros(capacity, dtype=bool)
        alive[: len(self._slot_alive)] = self._slot_alive
        remaining = np.zeros(capacity)
        remaining[: len(self._remaining)] = self._remaining
        spent = np.zeros(capacity)
        spent[: len(self._spent)] = self._spent
        self._slot_alive = alive
        self._remaining = remaining
        self._spent = spent

    def _admit(self, flow: Flow) -> None:
        src = self.placement.network_server(flow.src_server)
        dst = self.placement.network_server(flow.dst_server)
        if self._server_cap <= 0:
            raise R1AllocationError(
                f"link {('up', src)!r} has non-positive capacity"
            )
        links = [self._num_net + src]
        if dst != src:
            links.append(self._num_net + self._num_servers + dst)
        src_rack = self.network.switch_of_server(src)
        dst_rack = self.network.switch_of_server(dst)
        if src_rack != dst_rack:
            path, net_links = self._compiled.sample(
                src_rack, dst_rack, self._rng
            )
            links.extend(net_links)
        else:
            path = (src_rack,)
        link_ids = np.asarray(links, dtype=np.intp)
        slot = len(self._meta)
        self._meta.append(
            _R1ActiveFlow(
                flow=flow,
                links=link_ids,
                path=path,
                src_server=src,
                dst_server=dst,
            )
        )
        self._grow_slots(slot + 1)
        self._slot_alive[slot] = True
        self._remaining[slot] = flow.size_bytes
        self._incidence.append(slot, link_ids)
        np.add.at(self._link_refs, link_ids, 1)
        self._num_active += 1

    def run(self, flows: Sequence[Flow]) -> FctResults:
        arrivals = sorted(flows, key=lambda f: f.start_time)
        results = FctResults()
        now = 0.0
        next_arrival = 0
        inc = self._incidence

        while self._num_active or next_arrival < len(arrivals):
            while (
                next_arrival < len(arrivals)
                and arrivals[next_arrival].start_time <= now + 1e-15
            ):
                self._admit(arrivals[next_arrival])
                next_arrival += 1

            if not self._num_active:
                now = arrivals[next_arrival].start_time
                continue

            nslots = len(self._meta)
            alive_mask = self._slot_alive[:nslots]
            alive = np.flatnonzero(alive_mask)

            levels, _iterations = r1_fill_levels(
                inc.ent, inc.lnk, inc.val, self._caps, alive_mask,
                links=np.flatnonzero(self._link_refs > 0),
                scratch=self._fill_scratch,
            )
            rates_bps = levels[alive]
            rates_bps *= 1e9

            times = self._remaining[alive] * 8.0 / rates_bps
            finish_dt = float(times.min())
            arrival_dt = (
                arrivals[next_arrival].start_time - now
                if next_arrival < len(arrivals)
                else np.inf
            )
            dt = min(finish_dt, arrival_dt)
            if dt < 0:
                raise RuntimeError("simulation time went backwards")

            drained = rates_bps / 8.0 * dt
            now += dt
            self._remaining[alive] -= drained

            spent = self._spent
            spent[alive] = drained
            entry_spent = spent[inc.ent]
            touched = entry_spent > 0.0
            np.add.at(
                self._link_bytes, inc.lnk[touched], entry_spent[touched]
            )

            if finish_dt - dt <= finish_dt * _COMPLETION_RTOL:
                done = alive[self._remaining[alive] <= _RESIDUAL_BYTES]
                for slot in done:
                    entry = self._meta[slot]
                    latency = self.hop_latency_s * len(entry.links)
                    results.add(
                        FlowRecord(
                            src_server=entry.src_server,
                            dst_server=entry.dst_server,
                            size_bytes=entry.flow.size_bytes,
                            start_time=entry.flow.start_time,
                            finish_time=now + latency,
                            path=entry.path,
                        )
                    )
                    self._slot_alive[slot] = False
                    np.subtract.at(self._link_refs, entry.links, 1)
                if done.size:
                    self._num_active -= int(done.size)
                    inc.compact(self._slot_alive[:nslots])

        self._elapsed = now
        return results


def r1_simulate_fct(
    network: Network,
    routing: RoutingScheme,
    placement: Placement,
    flows: Sequence[Flow],
    seed: int = 0,
) -> FctResults:
    """Round-1 engine convenience wrapper, mirroring ``simulate_fct``."""
    return R1FlowSimulator(network, routing, placement, seed=seed).run(flows)
