"""Tests for the flat-topology local search (Section 7's open question)."""

import networkx as nx

from repro.topology import (
    dring,
    hill_climb,
    jellyfish,
    throughput_objective,
    wiring_objective,
)


class TestHillClimb:
    def test_never_worsens_objective(self):
        net = jellyfish(12, 4, servers_per_switch=4, seed=0)
        result = hill_climb(net, steps=25, seed=0)
        assert result.final_score >= result.initial_score

    def test_preserves_equipment(self):
        net = jellyfish(12, 4, servers_per_switch=4, seed=0)
        result = hill_climb(net, steps=25, seed=0)
        optimized = result.network
        assert optimized.num_servers == net.num_servers
        for switch in net.switches:
            assert optimized.network_degree(switch) == net.network_degree(
                switch
            )

    def test_result_connected(self):
        net = jellyfish(12, 4, servers_per_switch=4, seed=1)
        result = hill_climb(net, steps=25, seed=1)
        assert nx.is_connected(result.network.graph)

    def test_input_untouched(self):
        net = jellyfish(12, 4, servers_per_switch=4, seed=2)
        edges = sorted(net.graph.edges)
        hill_climb(net, steps=15, seed=2)
        assert sorted(net.graph.edges) == edges

    def test_improves_a_random_graph(self):
        # A random RRG is rarely locally optimal; the climb should find
        # at least one improving swap.
        net = jellyfish(16, 8, servers_per_switch=6, seed=1)
        result = hill_climb(net, steps=40, seed=1)
        assert result.accepted_moves > 0
        assert result.final_score > result.initial_score

    def test_dring_is_locally_optimal(self):
        """The small finding: at this size no 2-opt swap improves the
        DRing's uniform SU(2) throughput — evidence for the paper's
        claim that it is a good small-scale design point."""
        net = dring(8, 2, servers_per_rack=6)
        result = hill_climb(net, steps=40, seed=1)
        assert result.accepted_moves == 0
        assert result.final_score == result.initial_score

    def test_wiring_objective_penalizes_long_cables(self):
        net = dring(8, 2, servers_per_rack=6)
        assert wiring_objective(net) < throughput_objective(net)

    def test_deterministic(self):
        net = jellyfish(12, 4, servers_per_switch=4, seed=3)
        a = hill_climb(net, steps=20, seed=5)
        b = hill_climb(net, steps=20, seed=5)
        assert a.final_score == b.final_score
        assert sorted(a.network.graph.edges) == sorted(b.network.graph.edges)
