"""network-mutation-discipline: Network internals mutate only via primitives.

PR 2 made ``Network.remove_link`` / ``set_link_capacity_scale`` the
multiplicity-aware mutation primitives: they keep ``mult``,
``cap_scale`` and edge existence consistent, which every simulator and
routing scheme depends on through ``effective_link_mult`` /
``directed_capacities``.  A direct ``something.graph.remove_edge(...)``
or ``something.graph[u][v]["mult"] = ...`` elsewhere bypasses those
invariants (e.g. dropping a whole trunk when one cable failed).

The rule flags mutating calls and adjacency-attribute writes on any
``.graph`` attribute outside ``core/network.py``.  Writes to
``.graph.graph[...]`` (networkx graph-level metadata) and mutations of
local bare ``nx.Graph`` variables during topology construction are not
flagged — the discipline applies to built ``Network`` objects.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule

_MUTATORS = frozenset({
    "add_edge", "remove_edge", "add_node", "remove_node",
    "add_edges_from", "remove_edges_from", "add_nodes_from",
    "remove_nodes_from", "add_weighted_edges_from", "clear",
    "clear_edges", "update",
})


def _is_graph_attribute(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == "graph"


def _adjacency_write_base(target: ast.AST) -> int:
    """Subscript nesting depth above a ``.graph`` attribute, else 0.

    ``x.graph[u][v]["mult"]`` has depth 3 over ``x.graph`` — an
    adjacency write.  ``x.graph.graph["meta"]`` has depth 1 over
    ``x.graph.graph`` whose *base* attribute is the metadata dict, and
    depth 0 over a plain name — both fine.
    """
    depth = 0
    while isinstance(target, ast.Subscript):
        depth += 1
        target = target.value
    if depth >= 2 and _is_graph_attribute(target):
        return depth
    return 0


@register_rule
class NetworkMutationDiscipline(Rule):
    name = "network-mutation"
    summary = (
        "direct .graph adjacency mutation outside core/network.py "
        "(use remove_link / set_link_capacity_scale)"
    )
    invariant = (
        "mult, cap_scale and edge existence stay mutually consistent "
        "because every mutation goes through the Network primitives"
    )

    def applies(self, context: FileContext) -> bool:
        return (
            bool(context.repro_subpath)
            and not context.is_repro_file("core/network.py")
            and not context.is_test
        )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                    and _is_graph_attribute(func.value)
                ):
                    yield self.finding(
                        context, node.lineno, node.col_offset,
                        f".graph.{func.attr}() bypasses the Network "
                        "mutation primitives; use remove_link / "
                        "set_link_capacity_scale (or justify a "
                        "suppression)",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if _adjacency_write_base(target):
                        yield self.finding(
                            context, node.lineno, node.col_offset,
                            "direct write to .graph adjacency "
                            "attributes; use the Network mutation "
                            "primitives",
                        )
                    elif (
                        isinstance(target, ast.Attribute)
                        and target.attr == "graph"
                    ):
                        yield self.finding(
                            context, node.lineno, node.col_offset,
                            "rebinding a .graph attribute wholesale; "
                            "construct a new Network instead",
                        )
