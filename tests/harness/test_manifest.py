"""Tests for run manifests and progress reporting."""

import io
import json

import pytest

from repro.harness.executor import FAILED, HIT, RAN, JobOutcome
from repro.harness.jobs import JobSpec
from repro.harness.manifest import RunManifest, collect_env
from repro.harness.progress import NullProgress, ProgressPrinter


def outcome(status, seed=0, seconds=1.0, attempts=1, error=""):
    spec = JobSpec.make("selftest", seed=seed, mode="ok")
    return JobOutcome(
        spec=spec, key=spec.key(), status=status, seconds=seconds,
        attempts=attempts, error=error,
    )


@pytest.fixture
def manifest():
    outcomes = [
        outcome(HIT, seed=0, seconds=0.0),
        outcome(RAN, seed=1, seconds=2.0),
        outcome(RAN, seed=2, seconds=3.0),
        outcome(FAILED, seed=3, attempts=2, error="worker process crashed"),
    ]
    return RunManifest.from_outcomes(
        outcomes, sweep="fig4", wall_seconds=5.5, scale="small",
        seed=0, workers=2, cache_dir="/tmp/cache", started_at=123.0,
    )


class TestAccounting:
    def test_totals(self, manifest):
        assert manifest.total == 4
        assert manifest.hits == 1
        assert manifest.executed == 2
        assert len(manifest.failures) == 1
        assert manifest.hit_rate == 0.25
        assert manifest.compute_seconds == 5.0

    def test_empty_manifest_has_zero_hit_rate(self):
        empty = RunManifest.from_outcomes([], sweep="fig4", wall_seconds=0.0)
        assert empty.hit_rate == 0.0


class TestSerialization:
    def test_json_round_trip(self, manifest):
        text = manifest.to_json()
        back = RunManifest.from_json(text)
        assert back.sweep == "fig4"
        assert back.workers == 2
        assert back.total == 4
        assert back.hit_rate == manifest.hit_rate
        assert back.outcomes == manifest.outcomes

    def test_json_has_totals_block(self, manifest):
        payload = json.loads(manifest.to_json())
        assert payload["totals"] == {
            "jobs": 4, "cache_hits": 1, "executed": 2, "failed": 1,
            "cancelled": 0, "hit_rate": 0.25, "compute_seconds": 5.0,
        }

    def test_save_creates_parents(self, manifest, tmp_path):
        path = manifest.save(tmp_path / "deep" / "run.json")
        assert path.exists()
        assert RunManifest.from_json(path.read_text()).total == 4


class TestRender:
    def test_render_mentions_counts_and_failures(self, manifest):
        text = manifest.render()
        assert "4 jobs" in text
        assert "1 hits / 2 executed" in text
        assert "25% hit rate" in text
        assert "worker process crashed" in text

    def test_render_no_failures(self):
        clean = RunManifest.from_outcomes(
            [outcome(RAN)], sweep="fig5", wall_seconds=1.0
        )
        assert "failures: none" in clean.render()


class TestEnv:
    def test_collect_env_keys(self):
        env = collect_env()
        assert set(env) == {"python", "platform", "repro_version"}


class TestProgress:
    def test_printer_formats_line(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer(outcome(RAN, seconds=1.5), done=3, total=10)
        line = stream.getvalue()
        assert "[ 3/10]" in line
        assert "selftest" in line
        assert "(1.5s)" in line

    def test_printer_marks_failures_and_retries(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer(
            outcome(FAILED, attempts=2, error="boom"), done=1, total=1
        )
        line = stream.getvalue()
        assert "FAIL" in line
        assert "attempt 2" in line
        assert "boom" in line

    def test_null_progress_is_silent(self, capsys):
        NullProgress()(outcome(RAN), done=1, total=1)
        assert capsys.readouterr() == ("", "")
