"""Jellyfish-style regular (and near-regular) random graphs.

The paper uses a regular random graph (RRG) as its expander baseline
(Section 5.1), built from the *same equipment* as the leaf-spine: servers
are redistributed evenly across all switches (including former spines)
and a random graph is applied to the remaining ports.

The constructor here supports arbitrary per-switch network-degree
sequences, because flattening a leaf-spine yields a non-uniform sequence
(38/39 servers per switch leaves 26/25 network ports).  The construction
is the standard stub-matching with local rewiring to repair self-loops
and parallel edges, which is how the original Jellyfish construction
operates in practice.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.core.network import Network, NetworkValidationError, distribute_evenly
from repro.core.units import DEFAULT_LINK_GBPS

_MAX_REPAIR_ROUNDS = 200


def _stub_matching(
    degrees: Mapping[int, int], rng: random.Random
) -> List[Tuple[int, int]]:
    """Random perfect matching over port stubs; may contain bad edges."""
    stubs: List[int] = []
    for node in sorted(degrees):
        stubs.extend([node] * degrees[node])
    if len(stubs) % 2 != 0:
        raise NetworkValidationError(
            "degree sequence has odd total; cannot wire all ports"
        )
    rng.shuffle(stubs)
    return [(stubs[i], stubs[i + 1]) for i in range(0, len(stubs), 2)]


def _repair(
    edges: List[Tuple[int, int]], rng: random.Random
) -> List[Tuple[int, int]]:
    """Rewire self-loops and duplicate edges via random 2-opt swaps.

    Each round picks every bad edge and swaps one endpoint with a random
    other edge; degrees are preserved by construction.  Raises after a
    bounded number of rounds so pathological degree sequences fail loudly
    instead of looping forever.
    """
    for _round in range(_MAX_REPAIR_ROUNDS):
        seen = set()
        bad_indices = []
        for i, (u, v) in enumerate(edges):
            key = (min(u, v), max(u, v))
            if u == v or key in seen:
                bad_indices.append(i)
            else:
                seen.add(key)
        if not bad_indices:
            return edges
        for i in bad_indices:
            j = rng.randrange(len(edges))
            if i == j:
                continue
            u, v = edges[i]
            a, b = edges[j]
            # Swap one endpoint: (u, v), (a, b) -> (u, b), (a, v).
            edges[i] = (u, b)
            edges[j] = (a, v)
    raise NetworkValidationError(
        "could not repair random graph into a simple graph; "
        "degree sequence is too constrained"
    )


def _reconnect(graph: nx.Graph, rng: random.Random) -> None:
    """Merge components with degree-preserving 2-opt swaps, in place.

    Picks one edge from each of two components and swaps endpoints,
    which joins the components without touching any degree.  Fails
    loudly when a component has no edges to trade (a degree sequence
    that cannot be connected).
    """
    for _ in range(graph.number_of_nodes()):
        components = [list(c) for c in nx.connected_components(graph)]
        if len(components) == 1:
            return
        edges_by_component = []
        for component in components:
            subgraph_edges = [
                (u, v) for u, v in graph.edges(component)
            ]
            edges_by_component.append(subgraph_edges)
        first, second = edges_by_component[0], edges_by_component[1]
        if not first or not second:
            raise NetworkValidationError(
                "degree sequence cannot form a connected graph "
                "(an isolated component has no edges to rewire)"
            )
        u, v = rng.choice(first)
        a, b = rng.choice(second)
        graph.remove_edge(u, v)
        graph.remove_edge(a, b)
        graph.add_edge(u, a)
        graph.add_edge(v, b)
    if not nx.is_connected(graph):  # pragma: no cover - defensive
        raise NetworkValidationError("could not connect the random graph")


def _havel_hakimi_edges(
    degrees: Mapping[int, int], rng: random.Random
) -> List[Tuple[int, int]]:
    """Deterministic construction + randomizing swaps.

    Fallback for dense degree sequences (e.g. 10 switches of degree 8)
    where blind stub repair almost never terminates: Havel-Hakimi builds
    one valid simple graph, then degree-preserving double-edge swaps
    randomize it.  Connectivity is restored by further swaps if needed.
    """
    nodes = sorted(degrees)
    sequence = [degrees[node] for node in nodes]
    graph = nx.havel_hakimi_graph(sequence)
    relabel = {i: nodes[i] for i in range(len(nodes))}
    graph = nx.relabel_nodes(graph, relabel)
    num_edges = graph.number_of_edges()
    if num_edges >= 2:
        # Near-complete graphs admit few or no swaps; treat a swap
        # failure as "already as random as it gets".
        try:
            nx.double_edge_swap(
                graph,
                nswap=4 * num_edges,
                max_tries=400 * num_edges,
                seed=rng.randrange(2**31),
            )
        except nx.NetworkXException:
            pass
    if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
        _reconnect(graph, rng)
    return list(graph.edges())


def _repair_self_loops(
    edges: List[Tuple[int, int]], rng: random.Random
) -> List[Tuple[int, int]]:
    """Multigraph repair: remove self-loops only, parallel links allowed.

    Used when a degree sequence exceeds what a simple graph can host
    (heterogeneous equipment with big spines); trunked parallel links
    are physically fine and fold into edge multiplicity.
    """
    for _round in range(_MAX_REPAIR_ROUNDS):
        bad = [i for i, (u, v) in enumerate(edges) if u == v]
        if not bad:
            return edges
        for i in bad:
            j = rng.randrange(len(edges))
            if i == j:
                continue
            u, v = edges[i]
            a, b = edges[j]
            edges[i] = (u, b)
            edges[j] = (a, v)
    raise NetworkValidationError("could not remove self-loops")


def random_multigraph_edges(
    degrees: Mapping[int, int], seed: int = 0
) -> List[Tuple[int, int]]:
    """A random multigraph (parallel links allowed) with exact degrees.

    Connectivity is restored with the same degree-preserving component
    merges as the simple-graph path.
    """
    for node, degree in degrees.items():
        if degree < 0:
            raise NetworkValidationError(f"negative degree at switch {node}")
    rng = random.Random(seed)
    edges = _stub_matching(degrees, rng)
    edges = _repair_self_loops(edges, rng)
    graph = nx.Graph()
    graph.add_nodes_from(degrees)
    graph.add_edges_from(edges)
    if len(degrees) > 1 and not nx.is_connected(graph):
        # Merge components on the folded graph, then re-expand one
        # arbitrary multi-edge per swap; degrees stay intact because the
        # swap machinery trades one edge from each side.
        multi_edges = list(edges)
        for _ in range(len(degrees)):
            graph = nx.Graph()
            graph.add_nodes_from(degrees)
            graph.add_edges_from(multi_edges)
            components = [list(c) for c in nx.connected_components(graph)]
            if len(components) == 1:
                break
            comp_a = set(components[0])
            in_a = [i for i, (u, v) in enumerate(multi_edges) if u in comp_a]
            out_a = [
                i for i, (u, v) in enumerate(multi_edges) if u not in comp_a
            ]
            if not in_a or not out_a:
                raise NetworkValidationError(
                    "degree sequence cannot form a connected multigraph"
                )
            i, j = rng.choice(in_a), rng.choice(out_a)
            u, v = multi_edges[i]
            a, b = multi_edges[j]
            multi_edges[i] = (u, b)
            multi_edges[j] = (a, v)
        edges = multi_edges
    return edges


def random_graph_edges(
    degrees: Mapping[int, int], seed: int = 0
) -> List[Tuple[int, int]]:
    """A uniform-ish simple random graph with the given degree sequence."""
    for node, degree in degrees.items():
        if degree < 0:
            raise NetworkValidationError(f"negative degree at switch {node}")
        if degree >= len(degrees):
            raise NetworkValidationError(
                f"degree {degree} at switch {node} impossible with "
                f"{len(degrees)} switches"
            )
    rng = random.Random(seed)
    try:
        edges = _stub_matching(degrees, rng)
        edges = _repair(edges, rng)
        graph = nx.Graph(edges)
        graph.add_nodes_from(degrees)
        if len(degrees) > 1 and not nx.is_connected(graph):
            _reconnect(graph, rng)
            edges = list(graph.edges())
        return edges
    except NetworkValidationError:
        if not nx.is_graphical(sorted(degrees.values(), reverse=True)):
            raise
        return _havel_hakimi_edges(degrees, rng)


def jellyfish(
    num_switches: int,
    network_degree: int,
    servers_per_switch: int,
    link_capacity: float = DEFAULT_LINK_GBPS,
    seed: int = 0,
    name: str = "",
) -> Network:
    """A regular random graph with uniform server spreading.

    Parameters mirror the Jellyfish paper: each of ``num_switches``
    switches exposes ``network_degree`` network ports and hosts
    ``servers_per_switch`` servers.
    """
    degrees = {i: network_degree for i in range(num_switches)}
    edges = random_graph_edges(degrees, seed=seed)
    servers = {i: servers_per_switch for i in range(num_switches)}
    network = Network(
        _edges_to_graph(edges, num_switches),
        servers,
        link_capacity=link_capacity,
        name=name or f"jellyfish({num_switches},d={network_degree})",
    )
    network.validate(max_radix=network_degree + servers_per_switch)
    return network


def _proportional_counts(
    radixes: Sequence[int], total_servers: int
) -> List[int]:
    """Largest-remainder apportionment of servers by switch radix.

    Heterogeneous equipment (big ex-spines) flattens badly under even
    spreading — the fat switches keep ~all their ports as network links
    and become hubs.  Radix-proportional spreading keeps the
    network-to-server ratio uniform across switches instead.
    """
    total_ports = sum(radixes)
    raw = [radix * total_servers / total_ports for radix in radixes]
    counts = [int(value) for value in raw]
    leftovers = sorted(
        range(len(radixes)), key=lambda i: raw[i] - counts[i], reverse=True
    )
    for index in leftovers[: total_servers - sum(counts)]:
        counts[index] += 1
    return counts


def jellyfish_from_equipment(
    radixes: Sequence[int],
    total_servers: int,
    link_capacity: float = DEFAULT_LINK_GBPS,
    seed: int = 0,
    name: str = "",
    spreading: str = "even",
) -> Network:
    """Build an RRG from a pile of switches, Section 5.1 style.

    ``radixes[i]`` is the port count of switch ``i``.  Servers are spread
    as evenly as possible (``spreading="even"``, the paper's recipe) or
    proportionally to radix (``spreading="proportional"``, the right
    choice for heterogeneous equipment — see the heterogeneity
    ablation); every remaining port is wired into the random graph.
    Ports that cannot be paired (odd totals) are trimmed one at a time
    from the highest-degree switches, mirroring the unavoidable leftover
    port of an odd configuration.
    """
    num_switches = len(radixes)
    if num_switches < 2:
        raise NetworkValidationError("need at least two switches")
    if total_servers < num_switches:
        raise NetworkValidationError(
            "flat network needs at least one server per switch"
        )
    if spreading == "even":
        server_counts = distribute_evenly(total_servers, num_switches)
    elif spreading == "proportional":
        server_counts = sorted(
            _proportional_counts(
                sorted(radixes, reverse=True), total_servers
            ),
            reverse=True,
        )
    else:
        raise ValueError(f"unknown spreading {spreading!r}")
    # Assign the larger server shares to the larger switches.
    order = sorted(range(num_switches), key=lambda i: -radixes[i])
    servers: Dict[int, int] = {}
    degrees: Dict[int, int] = {}
    for rank, switch in enumerate(order):
        servers[switch] = server_counts[rank]
        degree = radixes[switch] - server_counts[rank]
        if degree <= 0:
            raise NetworkValidationError(
                f"switch {switch} has no ports left for network links"
            )
        degrees[switch] = degree
    if sum(degrees.values()) % 2 != 0:
        victim = max(degrees, key=lambda s: degrees[s])
        degrees[victim] -= 1
    if max(degrees.values()) >= num_switches:
        # Heterogeneous equipment (big spines) cannot form a simple
        # graph; fall back to a random multigraph with trunked links.
        edges = random_multigraph_edges(degrees, seed=seed)
    else:
        edges = random_graph_edges(degrees, seed=seed)
    network = Network(
        _edges_to_graph(edges, num_switches),
        servers,
        link_capacity=link_capacity,
        name=name or f"rrg(equipment,{num_switches}sw)",
    )
    network.validate(max_radix=max(radixes))
    return network


def expand_jellyfish(
    network: Network,
    servers_on_new_switch: Optional[int] = None,
    seed: int = 0,
) -> Network:
    """Add one switch to an RRG, Jellyfish's incremental procedure.

    Repeatedly removes a random existing link (u, v) and replaces it
    with (u, new) and (v, new) until the new switch reaches the fabric's
    network degree, touching exactly degree/2 existing links — the
    incremental-expansion property Jellyfish is famous for.  Returns a
    new :class:`Network`; the input is unchanged.
    """
    rng = random.Random(seed)
    degrees = [network.network_degree(s) for s in network.switches]
    target_degree = max(degrees)
    if target_degree % 2 != 0:
        target_degree -= 1
    if target_degree < 2:
        raise NetworkValidationError("fabric degree too small to expand into")
    graph = network.graph.copy()
    new_switch = max(network.switches) + 1
    graph.add_node(new_switch)
    attempts = 0
    while graph.degree(new_switch) < target_degree:
        attempts += 1
        if attempts > 100 * target_degree:
            raise NetworkValidationError("could not expand the random graph")
        u, v = rng.choice(list(graph.edges))
        if u == new_switch or v == new_switch:
            continue
        if graph.has_edge(u, new_switch) or graph.has_edge(v, new_switch):
            continue
        graph.remove_edge(u, v)
        graph.add_edge(u, new_switch, mult=1)
        graph.add_edge(v, new_switch, mult=1)
    servers = {s: network.servers_at(s) for s in network.racks}
    if servers_on_new_switch is None:
        servers_on_new_switch = max(servers.values())
    servers[new_switch] = servers_on_new_switch
    expanded = Network(
        graph,
        servers,
        link_capacity=network.link_capacity,
        server_link_capacity=network.server_link_capacity,
        name=f"{network.name}+1",
    )
    expanded.validate()
    return expanded


def _edges_to_graph(edges: Sequence[Tuple[int, int]], num_switches: int) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(range(num_switches))
    for u, v in edges:
        if graph.has_edge(u, v):
            graph[u][v]["mult"] += 1
        else:
            graph.add_edge(u, v, mult=1)
    return graph
