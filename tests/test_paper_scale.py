"""Validation at the paper's full Section 5.1 scale.

These tests build the actual instances the paper evaluates — the
3072-server leaf-spine(48,16), its flat RRG rebuild, and the 80-rack
2988-server DRing — and check the analytical claims and a sample of the
steady-state results at that scale.  Packet/flow-level FCT sweeps stay
in the scaled-down suites; everything here runs in seconds.
"""

import random

import pytest

from repro.bgp import check_theorem1
from repro.core.metrics import nsr, oversubscription, udf
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim import cs_throughput
from repro.topology import flatten, leaf_spine, paper_dring


@pytest.fixture(scope="module")
def paper_leafspine():
    return leaf_spine(48, 16)


@pytest.fixture(scope="module")
def paper_rrg(paper_leafspine):
    return flatten(paper_leafspine, seed=0, name="rrg-paper")


@pytest.fixture(scope="module")
def paper_ring():
    return paper_dring()


class TestInstanceShapes:
    def test_leafspine_matches_section_5_1(self, paper_leafspine):
        assert paper_leafspine.num_racks == 64
        assert paper_leafspine.num_servers == 3072
        assert oversubscription(paper_leafspine) == pytest.approx(3.0)

    def test_rrg_same_equipment(self, paper_leafspine, paper_rrg):
        assert paper_rrg.num_switches == paper_leafspine.num_switches
        assert paper_rrg.num_servers == paper_leafspine.num_servers
        assert paper_rrg.is_flat()

    def test_dring_matches_section_5_1(self, paper_ring):
        assert paper_ring.num_racks == 80
        assert paper_ring.num_servers == 2988
        # "about 2.8% fewer servers" than the leaf-spine.
        assert 1 - 2988 / 3072 == pytest.approx(0.0273, abs=1e-3)

    def test_udf_at_scale(self, paper_leafspine, paper_rrg):
        assert udf(paper_leafspine, paper_rrg) == pytest.approx(2.0, rel=0.01)

    def test_flat_nsr_dominates(self, paper_leafspine, paper_ring):
        assert nsr(paper_ring).mean > nsr(paper_leafspine).mean


class TestControlPlaneAtScale:
    def test_theorem1_sampled_pairs(self, paper_ring):
        rng = random.Random(0)
        pairs = rng.sample(list(paper_ring.rack_pairs()), 60)
        assert check_theorem1(paper_ring, 2, pairs=pairs) == []

    def test_su2_path_diversity_for_adjacent_racks(self, paper_ring):
        su2 = ShortestUnionRouting(paper_ring, 2)
        n = paper_ring.graph.graph["dring_n"]
        # Racks in adjacent supernodes (offset n and 2n in id space).
        for dst in (n, 2 * n):
            assert su2.disjoint_path_lower_bound(0, dst) >= n + 1


class TestThroughputAtScale:
    def test_skewed_cs_favours_the_dring(self, paper_leafspine, paper_ring):
        # Figure 5(c/d) regime: 200 clients -> 1400 servers.
        ls = cs_throughput(
            paper_leafspine, EcmpRouting(paper_leafspine), 200, 1400, seed=3
        )
        dr = cs_throughput(
            paper_ring, ShortestUnionRouting(paper_ring, 2), 200, 1400, seed=3
        )
        assert dr.mean_flow_gbps / ls.mean_flow_gbps > 1.05

    def test_skewed_small_values_near_udf(self, paper_leafspine, paper_ring):
        # Figure 5(a/b) regime: one rack of clients, a few server racks.
        # (The extreme C=20 corner is fabric-limited on our 80-rack DRing
        # instance; a full client rack shows the oversubscription-masking
        # gain cleanly.)
        ls = cs_throughput(
            paper_leafspine, EcmpRouting(paper_leafspine), 48, 260, seed=1
        )
        dr = cs_throughput(
            paper_ring, ShortestUnionRouting(paper_ring, 2), 48, 260, seed=1
        )
        ratio = dr.mean_flow_gbps / ls.mean_flow_gbps
        assert ratio > 1.3

    def test_incast_identical_everywhere(self, paper_leafspine, paper_ring):
        # C-S corner C=S=1: a single server pair is host-limited on any
        # topology, so both must deliver the same throughput.
        ls = cs_throughput(
            paper_leafspine, EcmpRouting(paper_leafspine), 1, 1, seed=0
        )
        dr = cs_throughput(
            paper_ring, ShortestUnionRouting(paper_ring, 2), 1, 1, seed=0
        )
        assert ls.total_gbps == pytest.approx(dr.total_gbps)
