"""Routing schemes: ECMP, Shortest-Union(K), KSP and VLB baselines."""

from repro.routing.base import (
    Path,
    RoutingError,
    RoutingScheme,
    path_is_simple,
    path_is_valid,
)
from repro.routing.ecmp import EcmpRouting
from repro.routing.shortest_union import ShortestUnionRouting, shortest_union_paths
from repro.routing.ksp import KShortestPathsRouting
from repro.routing.vlb import VlbRouting
from repro.routing.adaptive import CoarseAdaptiveRouting, bottleneck_load

__all__ = [
    "Path",
    "RoutingError",
    "RoutingScheme",
    "path_is_simple",
    "path_is_valid",
    "EcmpRouting",
    "ShortestUnionRouting",
    "shortest_union_paths",
    "KShortestPathsRouting",
    "VlbRouting",
    "CoarseAdaptiveRouting",
    "bottleneck_load",
]
