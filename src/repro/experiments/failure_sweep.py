"""Failure-resilience sweep: degradation curves under injected faults.

The paper argues (Section 3) that flat, spineless topologies degrade
more gracefully than leaf-spine because capacity and path diversity are
spread over many small switches instead of concentrated in a spine
layer.  This experiment quantifies that claim: for each (topology,
routing scheme, fault model, failure fraction, trial) cell it

1. samples a seeded fault scenario (:mod:`repro.faults`),
2. applies it to get a degraded network, measures surviving
   connectivity with :meth:`Network.partitioned_racks`,
3. *recomputes routing on the degraded topology* — the post-reconvergence
   state — and compares throughput, tail FCT and path diversity against
   the healthy network under the same demands,
4. prices the reconvergence itself by replaying the scenario's physical
   link-down events through the OSPF engine.

Every cell is a pure function of ``(scale, topology, scheme, spec,
trial, seed)``, which is what lets the sweep harness content-address it.
Fault scenarios and flow workloads deliberately do *not* fold the
routing scheme into their seeds: ECMP and SU(K) face byte-identical
failures and byte-identical offered traffic, so their columns are
directly comparable.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.network import Network
from repro.core.seeding import stable_seed
from repro.experiments.runner import Scale
from repro.faults import (
    DEFAULT_GRAY_CAPACITY,
    FaultSet,
    FaultSpec,
    apply_fault_set,
    physical_link_events,
    sample_fault_set,
)
from repro.igp.ospf import build_converged_igp
from repro.routing import EcmpRouting, RoutingScheme, ShortestUnionRouting
from repro.sim.flowsim import FlowSimulator
from repro.sim.throughput import tm_throughput
from repro.topology import dring, flatten, leaf_spine, xpander
from repro.traffic import (
    Placement,
    generate_flows,
    spine_utilization_load,
    uniform,
    window_for_budget,
)

#: Topologies the sweep covers by default (paper suite + one expander).
FAULT_TOPOLOGIES: Tuple[str, ...] = ("leaf-spine", "dring", "rrg", "xpander")

#: Routing schemes compared under every scenario.
FAULT_SCHEMES: Tuple[str, ...] = ("ecmp", "su2")

#: Default failed fractions for the degradation curves.
DEFAULT_FRACTIONS: Tuple[float, ...] = (0.02, 0.05, 0.10)

#: Rack pairs sampled for the path-diversity (dilution) statistic.
_PATH_SAMPLE_PAIRS = 40


def derived_seed(*parts: Any) -> int:
    """A cross-process-stable seed from heterogeneous parts.

    Alias of :func:`repro.core.seeding.stable_seed` (promoted there so
    the traffic layer can use it); kept here because cached faults
    results content-address through this math.
    """
    return stable_seed(*parts)


def build_fault_topology(kind: str, scale: Scale, seed: int = 0) -> Network:
    """Build one sweep topology at the given scale (same recipes as cli)."""
    if kind == "leaf-spine":
        return leaf_spine(scale.leaf_x, scale.leaf_y)
    if kind == "dring":
        return dring(
            scale.dring_m, scale.dring_n, total_servers=scale.dring_servers
        )
    if kind == "rrg":
        return flatten(
            leaf_spine(scale.leaf_x, scale.leaf_y), seed=seed, name="rrg"
        )
    if kind == "xpander":
        return xpander(7, 4, servers_per_rack=scale.leaf_x // 2, seed=seed)
    raise ValueError(
        f"unknown fault-sweep topology {kind!r}; know {list(FAULT_TOPOLOGIES)}"
    )


def _build_routing(scheme: str, network: Network) -> RoutingScheme:
    if scheme == "ecmp":
        return EcmpRouting(network)
    if scheme == "su2":
        return ShortestUnionRouting(network, 2)
    raise ValueError(
        f"unknown fault-sweep scheme {scheme!r}; know {list(FAULT_SCHEMES)}"
    )


# ----------------------------------------------------------------------
# One sweep cell
# ----------------------------------------------------------------------


def _reconvergence_cost(
    network: Network, fault_set: FaultSet
) -> Tuple[int, int]:
    """(rounds, LSAs) to re-flood the scenario's link-down events.

    Events replay one physical cable at a time against a converged OSPF
    fabric — the incremental repair an operator's control plane actually
    performs.  Gray failures produce no events (the adjacency stays up),
    so their cost is honestly zero.
    """
    events = physical_link_events(network, fault_set)
    if not events:
        return 0, 0
    fabric = build_converged_igp(network)
    rounds = 0
    lsas = 0
    for u, v in events:
        report = fabric.fail_link(u, v)
        rounds += report.rounds
        lsas += report.lsas_flooded
    return rounds, lsas


def _mean_path_count(
    routing: RoutingScheme, pairs: Sequence[Tuple[int, int]]
) -> float:
    if not pairs:
        return 0.0
    return sum(len(routing.paths(a, b)) for a, b in pairs) / len(pairs)


def _shared_flows(scale: Scale, topology: str, trial: int, seed: int):
    """The workload every scheme/fraction of one trial receives.

    Calibrated exactly like Figure 4: 30% of the baseline leaf-spine's
    spine capacity, truncated-Pareto sizes, uniform A2A endpoints.  The
    seed folds in topology and trial but *not* scheme or fraction, so
    degraded and healthy runs of both schemes push identical flows.
    """
    cluster = scale.cluster
    tm = uniform(cluster)
    baseline = leaf_spine(scale.leaf_x, scale.leaf_y)
    load = spine_utilization_load(baseline, tm, 0.30)
    window, num_flows = window_for_budget(
        load.offered_gbps,
        scale.max_flows,
        scale.window_seconds,
        size_cap=scale.size_cap_bytes,
    )
    flows = generate_flows(
        tm,
        num_flows,
        window,
        seed=derived_seed("faults-flows", seed, topology, trial),
        size_cap=scale.size_cap_bytes,
    )
    return cluster, flows


def run_failure_cell(
    scale: Scale,
    topology: str,
    scheme: str,
    kind: str = "link",
    fraction: float = 0.05,
    trial: int = 0,
    seed: int = 0,
    capacity_factor: float = DEFAULT_GRAY_CAPACITY,
) -> Dict[str, Any]:
    """Run one failure-sweep cell; returns a JSON-serializable record.

    Disconnection is a measured outcome, not an error: traffic is
    restricted to the largest surviving rack component and the record
    reports how much of the fabric that component retains.
    """
    network = build_fault_topology(topology, scale, seed=seed)
    spec = FaultSpec(kind, fraction, capacity_factor)
    fault_seed = derived_seed(
        "faults-scenario", seed, topology, kind, fraction, trial
    )
    if fraction > 0:
        fault_set = sample_fault_set(network, spec, fault_seed)
    else:
        fault_set = FaultSet()
    degraded = apply_fault_set(network, fault_set)
    # The healthy baseline is a same-generation copy: Graph.copy() does
    # not preserve adjacency iteration order, so sampling-based routing
    # on the original and on a copy can diverge even with equal seeds.
    # Two copies of the same original iterate identically, which makes
    # the fraction-0 cell an exact baseline (every ratio is 1.0).
    healthy = network.copy()

    groups = degraded.partitioned_racks()
    surviving = set(groups[0]) if groups else set()
    racks_total = len(network.racks)
    rounds, lsas = _reconvergence_cost(network, fault_set)

    record: Dict[str, Any] = {
        "topology": topology,
        "scheme": scheme,
        "kind": kind,
        "fraction": fraction,
        "trial": trial,
        "fault_fingerprint": fault_set.fingerprint(),
        "links_removed": len(fault_set.removed_links),
        "switches_failed": len(fault_set.failed_switches),
        "links_degraded": len(fault_set.degraded_links),
        "racks_total": racks_total,
        "racks_surviving": len(surviving),
        "partitions": len(groups),
        "ospf_rounds": rounds,
        "ospf_lsas": lsas,
        "throughput_ratio": 0.0,
        "path_ratio": 0.0,
        "fct_ratio": None,
        "healthy_p99_ms": None,
        "degraded_p99_ms": None,
        "hottest_links": [],
    }
    if len(surviving) < 2:
        # The fabric (as far as this traffic is concerned) is gone.
        return record

    healthy_routing = _build_routing(scheme, healthy)
    degraded_routing = _build_routing(scheme, degraded)

    # Steady-state throughput under uniform demands between surviving
    # racks — the same demand set on both networks, so the ratio
    # isolates the capacity the faults took, not the demand change.
    demands = {
        (a, b): 1.0 for a in surviving for b in surviving if a != b
    }
    healthy_tput = tm_throughput(healthy, healthy_routing, demands)
    degraded_tput = tm_throughput(degraded, degraded_routing, demands)
    record["healthy_mean_gbps"] = healthy_tput.mean_flow_gbps
    record["degraded_mean_gbps"] = degraded_tput.mean_flow_gbps
    record["throughput_ratio"] = (
        degraded_tput.mean_flow_gbps / healthy_tput.mean_flow_gbps
    )

    # Path-count dilution over a seeded sample of surviving rack pairs.
    pairs = sorted((a, b) for a in surviving for b in surviving if a < b)
    if len(pairs) > _PATH_SAMPLE_PAIRS:
        pair_rng = random.Random(
            derived_seed("faults-pairs", seed, topology, kind, fraction, trial)
        )
        pairs = sorted(pair_rng.sample(pairs, _PATH_SAMPLE_PAIRS))
    healthy_paths = _mean_path_count(healthy_routing, pairs)
    degraded_paths = _mean_path_count(degraded_routing, pairs)
    record["healthy_mean_paths"] = healthy_paths
    record["degraded_mean_paths"] = degraded_paths
    record["path_ratio"] = (
        degraded_paths / healthy_paths if healthy_paths > 0 else 0.0
    )

    # Tail FCT under the Figure 4 load recipe, healthy vs degraded.
    cluster, flows = _shared_flows(scale, topology, trial, seed)
    sim_seed = derived_seed("faults-sim", seed, topology, trial)
    healthy_placement = Placement(cluster, healthy)
    healthy_fct = FlowSimulator(
        healthy, healthy_routing, healthy_placement, seed=sim_seed
    ).run(flows)
    degraded_placement = Placement(cluster, degraded)
    kept = [
        flow
        for flow in flows
        if degraded_placement.rack_of(flow.src_server) in surviving
        and degraded_placement.rack_of(flow.dst_server) in surviving
    ]
    record["flows_total"] = len(flows)
    record["flows_surviving"] = len(kept)
    if kept:
        degraded_sim = FlowSimulator(
            degraded, degraded_routing, degraded_placement, seed=sim_seed
        )
        degraded_fct = degraded_sim.run(kept)
        record["healthy_p99_ms"] = healthy_fct.p99_fct_ms()
        record["degraded_p99_ms"] = degraded_fct.p99_fct_ms()
        record["fct_ratio"] = (
            record["degraded_p99_ms"] / record["healthy_p99_ms"]
        )
        fabric_util = {
            key: util
            for key, util in degraded_sim.link_utilization().items()
            if key[0] == "net"
        }
        # Tie-break on the link key so the report is stable across runs.
        record["hottest_links"] = [
            [f"{u}->{v}", round(float(util), 4)]
            for (_net, u, v), util in sorted(
                fabric_util.items(), key=lambda kv: (-kv[1], kv[0])
            )[:5]
        ]
    return record


# ----------------------------------------------------------------------
# Aggregation and rendering
# ----------------------------------------------------------------------


def failure_table_from_cells(
    cells: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Average per-trial cells into one row per curve point.

    Rows are keyed (kind, topology, scheme, fraction) and averaged over
    trials; ``fct_ratio`` averages only the trials whose surviving
    component carried any flows.
    """
    grouped: Dict[Tuple[str, str, str, float], List[Dict[str, Any]]] = {}
    for cell in cells:
        key = (
            cell["kind"],
            cell["topology"],
            cell["scheme"],
            cell["fraction"],
        )
        grouped.setdefault(key, []).append(cell)
    rows: List[Dict[str, Any]] = []
    for (kind, topology, scheme, fraction), members in sorted(
        grouped.items()
    ):
        fct_ratios = [
            m["fct_ratio"] for m in members if m["fct_ratio"] is not None
        ]
        rows.append(
            {
                "kind": kind,
                "topology": topology,
                "scheme": scheme,
                "fraction": fraction,
                "trials": len(members),
                "throughput_ratio": _mean(
                    [m["throughput_ratio"] for m in members]
                ),
                "fct_ratio": _mean(fct_ratios) if fct_ratios else None,
                "path_ratio": _mean([m["path_ratio"] for m in members]),
                "surviving_fraction": _mean(
                    [
                        m["racks_surviving"] / m["racks_total"]
                        for m in members
                        if m["racks_total"]
                    ]
                ),
                "ospf_rounds": _mean([m["ospf_rounds"] for m in members]),
                "ospf_lsas": _mean([m["ospf_lsas"] for m in members]),
            }
        )
    return rows


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def render_failure_sweep(cells: Sequence[Dict[str, Any]]) -> str:
    """Text degradation table, one section per fault kind."""
    rows = failure_table_from_cells(cells)
    lines: List[str] = []
    for kind in dict.fromkeys(row["kind"] for row in rows):
        if lines:
            lines.append("")
        lines.append(f"Failure resilience — {kind} faults")
        lines.append(
            f"{'topology':<12}{'scheme':<8}{'fail%':>7}{'thpt':>8}"
            f"{'p99 FCT':>9}{'paths':>8}{'racks':>8}{'ospf rnds':>11}"
            f"{'lsas':>8}"
        )
        for row in rows:
            if row["kind"] != kind:
                continue
            fct = (
                f"{row['fct_ratio']:.2f}x"
                if row["fct_ratio"] is not None
                else "-"
            )
            lines.append(
                f"{row['topology']:<12}{row['scheme']:<8}"
                f"{100 * row['fraction']:>6.1f}%"
                f"{row['throughput_ratio']:>7.2f}x"
                f"{fct:>9}"
                f"{row['path_ratio']:>7.2f}x"
                f"{100 * row['surviving_fraction']:>7.1f}%"
                f"{row['ospf_rounds']:>11.1f}"
                f"{row['ospf_lsas']:>8.1f}"
            )
    return "\n".join(lines)


def render_hot_links(cells: Sequence[Dict[str, Any]]) -> str:
    """Hottest degraded fabric links per curve, from the worst scenario.

    Surfaces :meth:`FlowSimulator.link_utilization` through the CLI: for
    each (topology, scheme) the cell with the highest failed fraction
    (first trial) shows where the surviving traffic concentrates.
    """
    worst: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for cell in cells:
        if not cell["hottest_links"]:
            continue
        key = (cell["topology"], cell["scheme"])
        best = worst.get(key)
        if (
            best is None
            or (cell["fraction"], -cell["trial"])
            > (best["fraction"], -best["trial"])
        ):
            worst[key] = cell
    if not worst:
        return ""
    lines = ["Hottest fabric links under the worst surveyed scenario"]
    for (topology, scheme), cell in sorted(worst.items()):
        links = ", ".join(
            f"{label} {100 * util:.0f}%" for label, util in cell["hottest_links"]
        )
        lines.append(
            f"  {topology} ({scheme}) at {100 * cell['fraction']:.1f}% "
            f"{cell['kind']} faults: {links}"
        )
    return "\n".join(lines)
