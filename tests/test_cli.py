"""Tests for the command-line interface."""


import pytest

from repro.cli import main


class TestParsing:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestLightCommands:
    def test_summarize(self, capsys):
        assert main(["summarize"]) == 0
        out = capsys.readouterr().out
        assert "leaf-spine" in out and "dring" in out

    def test_udf(self, capsys):
        assert main(["udf"]) == 0
        out = capsys.readouterr().out
        assert "UDF" in out and "2.000" in out

    def test_verify_dring(self, capsys):
        assert main(["verify", "--topology", "dring", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out

    def test_verify_leafspine(self, capsys):
        assert main(["verify", "--topology", "leaf-spine"]) == 0
        assert "verified" in capsys.readouterr().out


class TestConfigsCommand:
    def test_writes_cisco_configs(self, tmp_path, capsys):
        out_dir = tmp_path / "cfg"
        assert (
            main(
                [
                    "configs",
                    "--topology",
                    "dring",
                    "--out",
                    str(out_dir),
                ]
            )
            == 0
        )
        files = sorted(out_dir.glob("router-*.cfg"))
        assert len(files) == 24  # SMALL DRing has 24 racks
        assert "router bgp" in files[0].read_text()

    def test_writes_frr_configs(self, tmp_path, capsys):
        out_dir = tmp_path / "frr"
        assert (
            main(
                [
                    "configs",
                    "--format",
                    "frr",
                    "--out",
                    str(out_dir),
                ]
            )
            == 0
        )
        files = sorted(out_dir.glob("router-*.conf"))
        assert files
        assert files[0].read_text().startswith("frr version")


class TestExperimentCommands:
    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "throughput(DRing)/throughput(leaf-spine)" in out

    def test_microburst(self, capsys):
        assert main(["microburst"]) == 0
        assert "Microburst" in capsys.readouterr().out

    def test_other_topologies(self, capsys):
        assert main(["other-topologies"]) == 0
        assert "slimfly" in capsys.readouterr().out


class TestFaultsCommand:
    @pytest.fixture(scope="class")
    def tiny_scale(self):
        from repro.experiments.runner import Scale, register_scale

        return register_scale(
            Scale(
                name="tiny-cli-faults",
                leaf_x=6,
                leaf_y=2,
                dring_m=6,
                dring_n=2,
                dring_servers=48,
                max_flows=100,
                window_seconds=0.02,
                size_cap_bytes=10e6,
            )
        )

    def test_faults_smoke_and_warm_cache(self, tiny_scale, tmp_path, capsys):
        args = [
            "faults",
            "--scale",
            tiny_scale.name,
            "--topology",
            "dring",
            "--scheme",
            "ecmp",
            "--fractions",
            "0.1",
            "--trials",
            "1",
            "--jobs",
            "1",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "Failure resilience — link faults" in cold.out
        assert "dring" in cold.out
        assert "Hottest fabric links" in cold.out
        # Warm rerun: same table, every cell a cache hit.
        assert main(args) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "1 hits / 0 executed" in warm.err

    def test_faults_seed_determinism(self, tiny_scale, tmp_path, capsys):
        args = [
            "faults",
            "--scale",
            tiny_scale.name,
            "--topology",
            "rrg",
            "--scheme",
            "su2",
            "--kind",
            "gray",
            "--fractions",
            "0.2",
            "--trials",
            "1",
            "--seed",
            "5",
            "--no-cache",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first


class TestMlCommand:
    @pytest.fixture(scope="class")
    def tiny_scale(self):
        from repro.experiments.runner import Scale, register_scale

        return register_scale(
            Scale(
                name="tiny-cli-ml",
                leaf_x=6,
                leaf_y=2,
                dring_m=6,
                dring_n=2,
                dring_servers=48,
                max_flows=100,
                window_seconds=0.02,
                size_cap_bytes=10e6,
            )
        )

    def test_ml_smoke_and_warm_cache(self, tiny_scale, tmp_path, capsys):
        args = [
            "ml",
            "--scale",
            tiny_scale.name,
            "--topology",
            "dring",
            "--scheme",
            "ecmp",
            "--policy",
            "compact",
            "--placement-seeds",
            "0",
            "--jobs",
            "1",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "ML collectives — mean iteration time" in cold.out
        assert "dring" in cold.out
        # Warm rerun: same table, every cell a cache hit.
        assert main(args) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "1 hits / 0 executed" in warm.err

    def test_ml_seed_threads_into_placements(
        self, tiny_scale, tmp_path, capsys
    ):
        base = [
            "ml",
            "--scale",
            tiny_scale.name,
            "--topology",
            "leaf-spine",
            "--scheme",
            "ecmp",
            "--policy",
            "random",
            "--jobs",
            "1",
            "--no-cache",
        ]
        assert main(base + ["--seed", "1"]) == 0
        first = capsys.readouterr().out
        assert main(base + ["--seed", "1"]) == 0
        assert capsys.readouterr().out == first
        assert main(base + ["--seed", "2"]) == 0
        # A different run seed draws different placements: the random-
        # policy table moves (no hard-coded placement seed anywhere).
        assert capsys.readouterr().out != first


class TestExportCommand:
    def test_json_to_stdout(self, capsys):
        assert main(["export", "--topology", "dring"]) == 0
        out = capsys.readouterr().out
        assert '"name"' in out and '"links"' in out

    def test_dot_to_file(self, tmp_path, capsys):
        target = tmp_path / "net.dot"
        assert (
            main(
                [
                    "export",
                    "--topology",
                    "leaf-spine",
                    "--format",
                    "dot",
                    "--out",
                    str(target),
                ]
            )
            == 0
        )
        assert target.read_text().startswith("graph ")

    def test_json_round_trips_through_cli(self, tmp_path, capsys):
        from repro.core.export import from_json

        target = tmp_path / "net.json"
        main(["export", "--topology", "rrg", "--out", str(target)])
        clone = from_json(target.read_text())
        assert clone.is_flat()


class TestExtendedTopologyChoices:
    def test_verify_dragonfly(self, capsys):
        assert main(["verify", "--topology", "dragonfly"]) == 0
        assert "dragonfly" in capsys.readouterr().out

    def test_export_xpander(self, capsys):
        assert main(["export", "--topology", "xpander"]) == 0
        assert "xpander" in capsys.readouterr().out

    def test_export_fat_tree_dot(self, capsys):
        assert main(["export", "--topology", "fat-tree", "--format", "dot"]) == 0
        assert "fat-tree" in capsys.readouterr().out


class TestCacheCommand:
    def seed_cache(self, tmp_path, count=2):
        from repro.harness.cache import ResultCache
        from repro.harness.jobs import JobSpec

        root = tmp_path / "cache"
        cache = ResultCache(root)
        for value in range(count):
            spec = JobSpec.make("selftest", mode="ok", value=value)
            cache.put(spec.key(), spec, {"echo": value}, 0.1)
        return root

    def test_ls_reports_total_and_age(self, tmp_path, capsys):
        root = self.seed_cache(tmp_path)
        assert main(["cache", "ls", "--cache-dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "2 results" in out and "bytes total" in out
        assert out.count("age ") == 2

    def test_ls_empty(self, tmp_path, capsys):
        assert main(
            ["cache", "ls", "--cache-dir", str(tmp_path / "none")]
        ) == 0
        assert "empty" in capsys.readouterr().out

    def test_prune_requires_budget(self, tmp_path, capsys):
        root = self.seed_cache(tmp_path)
        assert main(["cache", "prune", "--cache-dir", str(root)]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_prune_evicts_to_budget(self, tmp_path, capsys):
        root = self.seed_cache(tmp_path)
        assert main([
            "cache", "prune", "--cache-dir", str(root),
            "--max-bytes", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "pruned 2 entries" in out
        assert out.count("evicted") == 2
        assert main(["cache", "ls", "--cache-dir", str(root)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_clear(self, tmp_path, capsys):
        root = self.seed_cache(tmp_path)
        assert main(["cache", "clear", "--cache-dir", str(root)]) == 0
        assert "removed 2" in capsys.readouterr().out


class TestServiceCommands:
    @pytest.fixture
    def server(self, tmp_path):
        import threading

        from repro.service import (
            JobManager,
            ServiceStore,
            create_server,
        )

        store = ServiceStore(tmp_path / "store")
        manager = JobManager(store, workers=1).start()
        httpd = create_server("127.0.0.1", 0, manager, store)
        thread = threading.Thread(
            target=httpd.serve_forever, daemon=True
        )
        thread.start()
        yield httpd.url
        manager.shutdown()
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=10.0)

    def test_submit_wait_status_results(self, server, capsys):
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("service workers fork")
        assert main([
            "submit", "--server", server, "--experiment", "selftest",
            "--param", "mode=ok", "--param", "value=3", "--wait",
        ]) == 0
        out = capsys.readouterr().out
        assert "job-000001" in out and "done" in out
        assert main(["status", "--server", server]) == 0
        assert "done" in capsys.readouterr().out
        assert main(["results", "--server", server]) == 0
        assert "1 cached results" in capsys.readouterr().out
        assert main(["leaderboard", "--server", server]) == 0
        assert "no rankable results" in capsys.readouterr().out

    def test_submit_rejects_bad_param(self, capsys):
        assert main([
            "submit", "--server", "http://127.0.0.1:1",
            "--experiment", "selftest", "--param", "oops",
        ]) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_submit_unreachable_server_fails_cleanly(self, capsys):
        assert main([
            "submit", "--server", "http://127.0.0.1:1",
            "--experiment", "selftest",
        ]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_local_leaderboard_from_cache_dir(self, tmp_path, capsys):
        from repro.harness.jobs import JobSpec
        from repro.service import ServiceStore

        store = ServiceStore(tmp_path / "store")
        spec = JobSpec.make(
            "fig4", scale="tiny", scheme="DRing (su2)", pattern="A2A"
        )
        store.put(spec.key(), spec, {
            "records": [[0, 1, 1e6, 0.0, 0.002, [0, 1]]]
        }, 0.1)
        assert main([
            "leaderboard", "--cache-dir", str(tmp_path / "store"),
        ]) == 0
        out = capsys.readouterr().out
        assert "DRing (su2)" in out and "leaderboard by p99_fct_ms" in out
