"""The lint pipeline: collect files, run rules, apply suppressions.

``lint_source`` checks one in-memory source (tests hand it fixture
strings with virtual paths, so path-scoped rules can be exercised
without touching the working tree); ``lint_paths`` walks files and
directories the way the CLI does.  A file that fails to parse yields a
single ``syntax-error`` finding rather than aborting the run.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, List, Optional, Sequence, Union

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, rules_by_name
from repro.lint.suppressions import collect_suppressions

#: Directory names never descended into.
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".mypy_cache", ".ruff_cache", ".venv",
    "build", "dist", "node_modules",
})

PathLike = Union[str, pathlib.Path]


def iter_python_files(paths: Sequence[PathLike]) -> List[pathlib.Path]:
    """Every ``.py`` file under ``paths``, sorted, skipping cache dirs."""
    files: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS & set(candidate.parts):
                    files.append(candidate)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def lint_source(
    source: str,
    path: PathLike,
    rules: Optional[Iterable[Rule]] = None,
) -> List[Finding]:
    """Lint one source text under a (possibly virtual) path."""
    path_text = pathlib.PurePath(path).as_posix()
    try:
        context = FileContext.parse(source, path_text)
    except SyntaxError as exc:
        return [
            Finding(
                path=path_text,
                line=exc.lineno or 1,
                column=(exc.offset or 1) - 1,
                rule="syntax-error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    active = list(rules) if rules is not None else rules_by_name(None)
    suppressions = collect_suppressions(source)
    findings: List[Finding] = []
    for rule in active:
        if not rule.applies(context):
            continue
        for finding in rule.check(context):
            if not suppressions.suppresses(finding):
                findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Sequence[PathLike],
    rule_names: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint files and directory trees; findings sorted by location."""
    rules = rules_by_name(rule_names)
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(
            lint_source(path.read_text(encoding="utf-8"), path, rules)
        )
    return sorted(findings)
