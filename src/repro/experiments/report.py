"""One-shot report: regenerate every paper artifact into a directory.

``python -m repro report --out results/`` runs each experiment driver at
the requested scale and writes the rendered tables — the same artifacts
the benchmark suite produces, without the benchmarking machinery.
Useful for CI jobs and for refreshing EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.runner import SMALL, Scale


def _fig4(scale: Scale, seed: int) -> str:
    from repro.experiments.fig4_fct import run_fig4

    result = run_fig4(scale, seed=seed)
    return result.median_table() + "\n\n" + result.p99_table()


def _fig5(scale: Scale, seed: int) -> str:
    from repro.experiments.fig5_heatmap import run_fig5

    panels = run_fig5(scale, seed=seed)
    return panels["ecmp"].render() + "\n\n" + panels["su2"].render()


def _fig6(scale: Scale, seed: int) -> str:
    from repro.experiments.fig6_scale import Fig6Config, render_fig6, run_fig6

    return render_fig6(run_fig6(Fig6Config(), seed=seed))


def _udf(scale: Scale, seed: int) -> str:
    from repro.experiments.udf_table import render_udf_table, run_udf_table

    return render_udf_table(run_udf_table(seed=seed))


def _microburst(scale: Scale, seed: int) -> str:
    from repro.experiments.microburst import render_microburst, run_microburst

    return render_microburst(run_microburst(scale, seed=seed))


def _other_topologies(scale: Scale, seed: int) -> str:
    from repro.experiments.other_topologies import (
        render_other_topologies,
        run_other_topologies,
    )

    return render_other_topologies(run_other_topologies(seed=seed))


def _expansion(scale: Scale, seed: int) -> str:
    from repro.experiments.expansion import render_expansion, run_expansion_study

    return render_expansion(run_expansion_study(seed=seed))


def _dynamic(scale: Scale, seed: int) -> str:
    from repro.experiments.dynamic import (
        render_dynamic,
        run_dynamic_study,
        skewed_demand,
        uniform_demand,
    )

    results = {
        "skewed": run_dynamic_study(skewed_demand(16, 3, seed=seed)),
        "uniform": run_dynamic_study(uniform_demand(16)),
    }
    return render_dynamic(results)


def _tiers(scale: Scale, seed: int) -> str:
    from repro.experiments.tiers import render_tiers, run_tier_study

    return render_tiers(run_tier_study(seed=seed))


def _scheme_zoo(scale: Scale, seed: int) -> str:
    from repro.experiments.ablations import run_scheme_zoo
    from repro.topology import dring
    from repro.traffic import CanonicalCluster

    net = dring(8, 2, servers_per_rack=6)
    cluster = CanonicalCluster(16, 6)
    points = run_scheme_zoo(net, cluster, seed=seed)
    lines = [
        f"{'pattern':>9}{'scheme':>9}{'median ms':>11}{'p99 ms':>9}{'hops':>7}"
    ]
    for p in points:
        lines.append(
            f"{p.pattern:>9}{p.scheme:>9}{p.median_ms:>11.4f}"
            f"{p.p99_ms:>9.4f}{p.mean_hops:>7.2f}"
        )
    return "\n".join(lines)


def _permutation(scale: Scale, seed: int) -> str:
    from repro.experiments.permutation import (
        render_permutation,
        run_permutation_study,
    )

    return render_permutation(run_permutation_study(seed=seed))


def _heterogeneous(scale: Scale, seed: int) -> str:
    from repro.experiments.ablations import run_heterogeneous_study

    points = run_heterogeneous_study(seed=seed)
    lines = [f"{'uplinks':>8}{'leafspine p99':>15}{'flat p99':>10}{'gain':>7}"]
    for p in points:
        lines.append(
            f"{'x' + str(p.uplink_mult):>8}{p.leafspine_p99_ms:>15.3f}"
            f"{p.flat_p99_ms:>10.3f}{p.flat_gain:>7.2f}"
        )
    return "\n".join(lines)


def _cabling(scale: Scale, seed: int) -> str:
    from repro.core.cabling import compare_cabling, render_cabling
    from repro.topology import dring, flatten, leaf_spine

    ls = leaf_spine(scale.leaf_x, scale.leaf_y)
    networks = [
        ls,
        flatten(ls, seed=seed, name="rrg"),
        dring(scale.dring_m, scale.dring_n, total_servers=scale.dring_servers),
    ]
    return render_cabling(compare_cabling(networks))


def _verify(scale: Scale, seed: int) -> str:
    from repro.bgp import verify_fabric
    from repro.topology import dring

    network = dring(
        scale.dring_m, scale.dring_n, total_servers=scale.dring_servers
    )
    stats = verify_fabric(network, 2)
    return (
        f"{network.name}: Theorem 1 + Shortest-Union(2) verified over "
        f"{stats['pairs']} pairs ({stats['rounds']} rounds, "
        f"{stats['updates']} updates)"
    )


#: artifact name -> generator; ordered roughly by paper section.
ARTIFACTS: Dict[str, Callable[[Scale, int], str]] = {
    "udf_table": _udf,
    "fig4_fct": _fig4,
    "fig5_heatmaps": _fig5,
    "fig6_scale": _fig6,
    "theorem1_verification": _verify,
    "microburst": _microburst,
    "other_topologies": _other_topologies,
    "expansion_churn": _expansion,
    "dynamic_networks": _dynamic,
    "tiers": _tiers,
    "scheme_zoo": _scheme_zoo,
    "permutation_boundary": _permutation,
    "cabling": _cabling,
    "heterogeneous": _heterogeneous,
}


# Writing artifacts and timing them for INDEX.txt is this function's
# whole job; neither effect can reach a cached job runner from here.
def generate_report(  # repro-effect: allow=reads-clock,does-io
    out_dir: pathlib.Path,
    scale: Scale = SMALL,
    seed: int = 0,
    only: Optional[List[str]] = None,
) -> List[Tuple[str, float]]:
    """Write every artifact (or the requested subset) to ``out_dir``.

    Returns ``(artifact, seconds)`` timings; raises KeyError on unknown
    artifact names so typos do not silently skip work.
    """
    names = list(ARTIFACTS) if only is None else list(only)
    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        raise KeyError(f"unknown artifacts: {unknown}; know {list(ARTIFACTS)}")
    out_dir.mkdir(parents=True, exist_ok=True)
    timings: List[Tuple[str, float]] = []
    for name in names:
        start = time.perf_counter()
        text = ARTIFACTS[name](scale, seed)
        (out_dir / f"{name}.txt").write_text(text + "\n")
        timings.append((name, time.perf_counter() - start))
    index = "\n".join(
        f"{name}.txt  ({seconds:.1f}s)" for name, seconds in timings
    )
    (out_dir / "INDEX.txt").write_text(index + "\n")
    return timings
