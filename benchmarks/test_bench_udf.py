"""E6: the Section 3.1 analysis table — UDF(leaf-spine(x, y)) = 2.

Paper claim: the Uplink-to-Downlink Factor of any leaf-spine is exactly
2, independent of x and y, so a flat rebuild can deliver up to twice the
throughput when racks bottleneck.  The benchmark regenerates the table
(closed-form and empirically constructed) and times the construction.
"""

import pytest

from conftest import save_artifact
from repro.experiments import figure1_numbers, render_udf_table, run_udf_table


def test_bench_udf_table(benchmark):
    rows = benchmark.pedantic(run_udf_table, rounds=3, iterations=1)
    save_artifact("udf_table.txt", render_udf_table(rows))
    for row in rows:
        assert row.udf_closed_form == pytest.approx(2.0)
        assert row.udf_empirical == pytest.approx(2.0, rel=0.1)


def test_bench_figure1_numbers(benchmark):
    numbers = benchmark.pedantic(figure1_numbers, rounds=3, iterations=1)
    assert numbers["leafspine_ports_per_server"] == pytest.approx(0.5)
    assert numbers["flat_ports_per_server"] == pytest.approx(1.0)
