#!/usr/bin/env python3
"""Quickstart: build the paper's three topologies and compare them.

Builds a leaf-spine, an equal-equipment RRG and a DRing, prints their
structural summaries (NSR, oversubscription, path lengths, bisection),
then runs one skewed workload through the flow-level simulator to show
the paper's headline effect: flat topologies mask rack oversubscription.

Run:  python examples/quickstart.py
"""

from repro.core import summarize, summary_table
from repro.experiments import SMALL
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim import simulate_fct
from repro.topology import dring, flatten, leaf_spine
from repro.traffic import (
    Placement,
    fb_skewed,
    generate_flows,
    spine_utilization_load,
    window_for_budget,
)


def main() -> None:
    # --- topologies built from comparable equipment --------------------
    ls = leaf_spine(SMALL.leaf_x, SMALL.leaf_y)
    rrg = flatten(ls, seed=0, name="rrg")
    dr = dring(SMALL.dring_m, SMALL.dring_n, total_servers=SMALL.dring_servers)

    print("Structural comparison (Section 3):\n")
    print(summary_table([summarize(net) for net in (ls, rrg, dr)]))

    # --- one skewed workload, three schemes ----------------------------
    cluster = SMALL.cluster
    tm = fb_skewed(cluster, seed=0)
    load = spine_utilization_load(ls, tm)
    window, num_flows = window_for_budget(
        load.offered_gbps, SMALL.max_flows, SMALL.window_seconds,
        size_cap=SMALL.size_cap_bytes,
    )
    flows = generate_flows(
        tm, num_flows, window, seed=0, size_cap=SMALL.size_cap_bytes
    )
    print(
        f"\nFB-skewed workload: {num_flows} flows, "
        f"{load.offered_gbps:.0f} Gbps offered (30% spine utilization)\n"
    )

    schemes = [
        ("leaf-spine + ECMP", ls, EcmpRouting(ls)),
        ("RRG + SU(2)", rrg, ShortestUnionRouting(rrg, 2)),
        ("DRing + SU(2)", dr, ShortestUnionRouting(dr, 2)),
    ]
    print(f"{'scheme':<22}{'median FCT (ms)':>18}{'p99 FCT (ms)':>16}")
    for label, net, routing in schemes:
        results = simulate_fct(net, routing, Placement(cluster, net), flows)
        print(
            f"{label:<22}{results.median_fct_ms():>18.3f}"
            f"{results.p99_fct_ms():>16.3f}"
        )

    print(
        "\nFlat topologies (RRG, DRing) should show clearly lower tail "
        "FCTs: skewed traffic bottlenecks a minority of leaf-spine rack "
        "uplinks, while a flat network's extra network links absorb it."
    )


if __name__ == "__main__":
    main()
