"""Tests for the elementary traffic patterns."""

import pytest

from repro.traffic import permutation, rack_to_rack, uniform


class TestUniform:
    def test_all_pairs_present_and_equal(self, small_cluster):
        tm = uniform(small_cluster)
        racks = small_cluster.num_racks
        assert len(tm.weights) == racks * (racks - 1)
        assert len(set(tm.weights.values())) == 1

    def test_every_rack_sends(self, small_cluster):
        tm = uniform(small_cluster)
        assert tm.sending_racks() == list(range(small_cluster.num_racks))


class TestRackToRack:
    def test_single_pair(self, small_cluster):
        tm = rack_to_rack(small_cluster, 2, 5)
        assert tm.weights == {(2, 5): 1.0}

    def test_rejects_same_rack(self, small_cluster):
        with pytest.raises(ValueError):
            rack_to_rack(small_cluster, 3, 3)


class TestPermutation:
    def test_is_derangement(self, small_cluster):
        tm = permutation(small_cluster, seed=0)
        assert all(src != dst for src, dst in tm.weights)

    def test_every_rack_sends_once(self, small_cluster):
        tm = permutation(small_cluster, seed=1)
        sources = [src for src, _dst in tm.weights]
        targets = [dst for _src, dst in tm.weights]
        assert sorted(sources) == list(range(small_cluster.num_racks))
        assert sorted(targets) == list(range(small_cluster.num_racks))

    def test_deterministic_in_seed(self, small_cluster):
        assert (
            permutation(small_cluster, seed=4).weights
            == permutation(small_cluster, seed=4).weights
        )
