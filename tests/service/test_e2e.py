"""Acceptance: fig4 and ML cells submitted over HTTP, end to end.

The ISSUE 6 acceptance loop — start the service against an empty
store, submit one Figure-4 cell through the real HTTP API, observe at
least one progress event carrying SimTrace stats, fetch the stored
result, see the cell ranked on ``/leaderboard``, and confirm a warm
resubmit completes as a 100% cache hit without re-running.  The ISSUE 7
loop rides the same fixture: an ML collective cell submits through the
service and ranks on the ``iteration_time`` leaderboard.
"""

import multiprocessing
import threading

import pytest

from repro.experiments.runner import Scale, register_scale
from repro.service.api import create_server
from repro.service.client import ServiceClient
from repro.service.jobs import JobManager
from repro.service.store import ServiceStore

TINY = register_scale(
    Scale(
        name="tiny-svc-fig4",
        leaf_x=6,
        leaf_y=2,
        dring_m=6,
        dring_n=2,
        dring_servers=48,
        max_flows=60,
        window_seconds=0.02,
        size_cap_bytes=10e6,
    )
)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="workers must inherit the registered tiny scale",
)

CELL = {
    "experiment": "fig4",
    "scale": "tiny-svc-fig4",
    "scheme": "DRing (su2)",
    "pattern": "A2A",
    "seed": 0,
}

ML_CELL = {
    "experiment": "ml",
    "scale": "tiny-svc-fig4",
    "scheme": "ecmp",
    "pattern": "dring",
    "seed": 0,
    "params": {"policy": "compact", "placement_seed": 0},
}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("e2e") / "store"
    store = ServiceStore(root)
    manager = JobManager(store, workers=1).start()
    server = create_server("127.0.0.1", 0, manager, store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield ServiceClient(server.url, timeout=120.0), store
    manager.shutdown()
    server.shutdown()
    server.server_close()
    thread.join(timeout=10.0)


@fork_only
class TestFig4OverHttp:
    def test_full_loop(self, service):
        client, store = service

        # 1. submit the cell; stream its events to completion
        job = client.submit(CELL)
        events = []
        final = client.wait(job["id"], on_event=events.append)
        assert final["state"] == "done"
        assert final["cache_hit"] is False

        # 2. at least one progress event carries SimTrace stats
        progress = [e for e in events if e["kind"] == "progress"]
        assert len(progress) >= 1
        outcome = progress[0]["outcome"]
        assert outcome["status"] == "ran"
        trace = outcome["sim_trace"]
        assert trace["counters"]  # the engine counted real work

        # 3. the stored result is a complete per-flow record set
        payload = client.result(final["key"])
        assert payload["spec"]["scheme"] == "DRing (su2)"
        assert len(payload["result"]["records"]) > 0

        # 4. the cell ranks on the leaderboard
        board = client.leaderboard()
        assert board["metric"] == "p99_fct_ms"
        [row] = board["rows"]
        assert row["rank"] == 1
        assert row["scheme"] == "DRing (su2)"
        assert row["pattern"] == "A2A"
        assert row["p99_fct_ms"] > 0

        # 5. warm resubmit: same key, served from cache, no re-run
        hits_before = store.hits
        rerun = client.wait(client.submit(CELL)["id"])
        assert rerun["state"] == "done"
        assert rerun["cache_hit"] is True
        assert rerun["key"] == final["key"]
        assert store.hits > hits_before
        # a hit produces no fresh flow records: still exactly one entry
        assert client.results()["count"] == 1


@fork_only
class TestMlOverHttp:
    def test_full_loop(self, service):
        client, store = service

        # 1. submit the ML cell; run to completion
        final = client.wait(client.submit(ML_CELL)["id"])
        assert final["state"] == "done"

        # 2. the stored result carries the iteration-time headline
        payload = client.result(final["key"])
        assert payload["spec"]["experiment"] == "ml"
        params = {k: v for k, v in payload["spec"]["params"]}
        assert params["policy"] == "compact"
        assert payload["result"]["iteration_time_s"] > 0.0
        assert payload["result"]["num_jobs"] == 3

        # 3. the cell ranks on the iteration_time leaderboard, and
        #    fig4 cells in the same store never cross-compete
        board = client.leaderboard(metric="iteration_time")
        assert board["metric"] == "iteration_time"
        assert len(board["rows"]) >= 1
        assert all(
            row["experiment"] == "ml" for row in board["rows"]
        )
        top = board["rows"][0]
        assert top["rank"] == 1
        assert top["iteration_time"] == pytest.approx(
            payload["result"]["iteration_time_s"]
        )

        # 4. warm resubmit is a pure cache hit
        hits_before = store.hits
        rerun = client.wait(client.submit(ML_CELL)["id"])
        assert rerun["state"] == "done"
        assert rerun["cache_hit"] is True
        assert rerun["key"] == final["key"]
        assert store.hits > hits_before
