"""Tests for the next-hop DAG walk/propagation primitives."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.dag import DagError, fractions, walk


def diamond(node):
    """s -> a,b -> t diamond with equal weights."""
    table = {
        "s": [("a", 1.0), ("b", 1.0)],
        "a": [("t", 1.0)],
        "b": [("t", 1.0)],
        "t": [],
    }
    return table[node]


def weighted_diamond(node):
    table = {
        "s": [("a", 3.0), ("b", 1.0)],
        "a": [("t", 1.0)],
        "b": [("t", 1.0)],
        "t": [],
    }
    return table[node]


class TestWalk:
    def test_walk_reaches_destination(self, rng):
        path = walk(diamond, "s", "t", rng)
        assert path[0] == "s" and path[-1] == "t"
        assert len(path) == 3

    def test_walk_uses_both_branches(self):
        rng = random.Random(0)
        seen = {tuple(walk(diamond, "s", "t", rng)) for _ in range(200)}
        assert ("s", "a", "t") in seen
        assert ("s", "b", "t") in seen

    def test_weighted_walk_prefers_heavy_branch(self):
        rng = random.Random(0)
        count_a = sum(
            1 for _ in range(2000) if walk(weighted_diamond, "s", "t", rng)[1] == "a"
        )
        assert 0.70 < count_a / 2000 < 0.80

    def test_dead_end_raises(self, rng):
        def broken(node):
            return {"s": [("x", 1.0)], "x": []}[node]

        with pytest.raises(DagError):
            walk(broken, "s", "t", rng)

    def test_cycle_raises(self, rng):
        def loop(node):
            return {"s": [("a", 1.0)], "a": [("s", 1.0)]}[node]

        with pytest.raises(DagError):
            walk(loop, "s", "t", rng, max_hops=10)


class TestFractions:
    def test_equal_split(self):
        flows = fractions(diamond, "s", "t")
        assert flows[("s", "a")] == pytest.approx(0.5)
        assert flows[("s", "b")] == pytest.approx(0.5)
        assert flows[("a", "t")] == pytest.approx(0.5)

    def test_weighted_split(self):
        flows = fractions(weighted_diamond, "s", "t")
        assert flows[("s", "a")] == pytest.approx(0.75)
        assert flows[("s", "b")] == pytest.approx(0.25)

    def test_conservation_at_destination(self):
        flows = fractions(diamond, "s", "t")
        into_t = sum(v for (a, b), v in flows.items() if b == "t")
        assert into_t == pytest.approx(1.0)

    def test_multi_layer_dag(self):
        def layered(node):
            table = {
                "s": [("a", 1.0), ("b", 1.0)],
                "a": [("c", 1.0), ("d", 1.0)],
                "b": [("d", 1.0)],
                "c": [("t", 1.0)],
                "d": [("t", 1.0)],
                "t": [],
            }
            return table[node]

        flows = fractions(layered, "s", "t")
        assert flows[("d", "t")] == pytest.approx(0.75)
        assert flows[("c", "t")] == pytest.approx(0.25)

    def test_dead_end_raises(self):
        def broken(node):
            return {"s": [("x", 1.0)], "x": []}[node]

        with pytest.raises(DagError):
            fractions(broken, "s", "t")

    @given(fan=st.integers(min_value=1, max_value=12))
    @settings(max_examples=15, deadline=None)
    def test_fanout_splits_evenly(self, fan):
        def star(node):
            if node == "s":
                return [(i, 1.0) for i in range(fan)]
            if isinstance(node, int):
                return [("t", 1.0)]
            return []

        flows = fractions(star, "s", "t")
        for i in range(fan):
            assert flows[("s", i)] == pytest.approx(1.0 / fan)
