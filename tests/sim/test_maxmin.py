"""Tests for the progressive-filling max-min allocator.

Includes the hypothesis property tests of the three defining invariants:
feasibility (no link over capacity), non-waste (every flow is bottlenecked
somewhere), and the max-min property itself (no flow can be raised without
lowering a flow at or below its level).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.maxmin import (
    AllocationError,
    LinkIndex,
    flow_rates,
    progressive_filling,
)


class TestBasicCases:
    def test_single_flow_gets_full_link(self):
        rates = flow_rates([[0]], [10.0])
        assert rates[0] == pytest.approx(10.0)

    def test_two_flows_share_equally(self):
        rates = flow_rates([[0], [0]], [10.0])
        assert list(rates) == pytest.approx([5.0, 5.0])

    def test_classic_three_flow_example(self):
        # Flow A uses links 0 and 1; B uses 0; C uses 1. caps 10 each.
        rates = flow_rates([[0, 1], [0], [1]], [10.0, 10.0])
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(5.0)
        assert rates[2] == pytest.approx(5.0)

    def test_bottleneck_hierarchy(self):
        # Link 0 cap 2 shared by flows 0,1; link 1 cap 10 used by flows 1,2.
        rates = flow_rates([[0], [0, 1], [1]], [2.0, 10.0])
        assert rates[0] == pytest.approx(1.0)
        assert rates[1] == pytest.approx(1.0)
        assert rates[2] == pytest.approx(9.0)

    def test_weighted_entities(self):
        # Entity of weight 3 vs weight 1 on one unit link: levels equal,
        # rates proportional to weight.
        levels = progressive_filling([[(0, 3.0)], [(0, 1.0)]], [8.0])
        assert levels[0] == pytest.approx(levels[1])
        assert 3 * levels[0] + levels[1] == pytest.approx(8.0)


class TestValidation:
    def test_rejects_empty_path(self):
        with pytest.raises(AllocationError):
            flow_rates([[]], [10.0])

    def test_rejects_bad_link_index(self):
        with pytest.raises(AllocationError):
            flow_rates([[5]], [10.0])

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(AllocationError):
            flow_rates([[0]], [0.0])

    def test_rejects_nonpositive_value(self):
        with pytest.raises(AllocationError):
            progressive_filling([[(0, -1.0)]], [10.0])


@st.composite
def allocation_problems(draw):
    num_links = draw(st.integers(min_value=1, max_value=8))
    capacities = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=100.0),
            min_size=num_links,
            max_size=num_links,
        )
    )
    num_flows = draw(st.integers(min_value=1, max_value=12))
    flows = [
        sorted(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=num_links - 1),
                    min_size=1,
                    max_size=num_links,
                )
            )
        )
        for _ in range(num_flows)
    ]
    return flows, capacities


class TestMaxMinProperties:
    @given(problem=allocation_problems())
    @settings(max_examples=80, deadline=None)
    def test_feasible(self, problem):
        flows, capacities = problem
        rates = flow_rates(flows, capacities)
        loads = np.zeros(len(capacities))
        for path, rate in zip(flows, rates):
            for link in path:
                loads[link] += rate
        assert np.all(loads <= np.asarray(capacities) * (1 + 1e-6))

    @given(problem=allocation_problems())
    @settings(max_examples=80, deadline=None)
    def test_every_flow_bottlenecked(self, problem):
        flows, capacities = problem
        rates = flow_rates(flows, capacities)
        loads = np.zeros(len(capacities))
        for path, rate in zip(flows, rates):
            for link in path:
                loads[link] += rate
        for path in flows:
            saturated = any(
                loads[link] >= capacities[link] * (1 - 1e-6) for link in path
            )
            assert saturated, "a flow has headroom everywhere: waste"

    @given(problem=allocation_problems())
    @settings(max_examples=80, deadline=None)
    def test_max_min_property(self, problem):
        # A flow's rate can only be limited by a saturated link where it
        # is among the largest flows (no smaller flow blocks it).
        flows, capacities = problem
        rates = flow_rates(flows, capacities)
        loads = np.zeros(len(capacities))
        for path, rate in zip(flows, rates):
            for link in path:
                loads[link] += rate
        for i, path in enumerate(flows):
            has_fair_bottleneck = False
            for link in path:
                if loads[link] >= capacities[link] * (1 - 1e-6):
                    max_on_link = max(
                        rates[j]
                        for j, other in enumerate(flows)
                        if link in other
                    )
                    if rates[i] >= max_on_link * (1 - 1e-6):
                        has_fair_bottleneck = True
                        break
            assert has_fair_bottleneck

    @given(problem=allocation_problems())
    @settings(max_examples=40, deadline=None)
    def test_all_rates_positive(self, problem):
        flows, capacities = problem
        rates = flow_rates(flows, capacities)
        assert np.all(rates > 0)


class TestLinkIndex:
    def test_assigns_dense_ids(self):
        index = LinkIndex()
        assert index.add("a", 1.0) == 0
        assert index.add("b", 2.0) == 1
        assert index.add("a", 1.0) == 0  # idempotent
        assert len(index) == 2
        assert index.capacities == [1.0, 2.0]

    def test_rejects_capacity_conflict(self):
        index = LinkIndex()
        index.add("a", 1.0)
        with pytest.raises(AllocationError):
            index.add("a", 2.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(AllocationError):
            LinkIndex().add("a", 0.0)

    def test_contains_and_lookup(self):
        index = LinkIndex()
        index.add("x", 5.0)
        assert "x" in index
        assert "y" not in index
        assert index.id_of("x") == 0
