"""Shared benchmark infrastructure.

Every benchmark module regenerates one paper artifact (figure or table),
asserts its qualitative shape (who wins, roughly by what factor), and
writes the rendered artifact to ``bench_results/`` next to this file so
EXPERIMENTS.md can reference concrete numbers.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "bench_results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(name: str, text: str) -> None:
    """Write one rendered artifact (also printed for -s runs)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n--- {name} ---\n{text}\n")
