"""Engine acceptance: the array-backed simulator is >= 3x the legacy one.

Times one Figure 4 grid cell (A2A on the DRing under SU(2) at the MEDIUM
scale, seed 0) through the compiled engine and through the verbatim seed
implementation kept in ``tests/sim/legacy_reference.py``.  Both produce
bit-identical results (asserted here too — a fast wrong answer is not a
speedup); the engine must finish the cell at least 3x faster.  The
timings are saved as the artifact.
"""

import importlib.util
import pathlib
import sys
import time

from conftest import save_artifact
from repro.experiments import MEDIUM
from repro.experiments.fig4_fct import _pattern_flows, fig4_patterns
from repro.experiments.runner import build_scheme
from repro.sim import FlowSimulator

_LEGACY_PATH = (
    pathlib.Path(__file__).parent.parent
    / "tests" / "sim" / "legacy_reference.py"
)

REQUIRED_SPEEDUP = 3.0
ROUNDS = 3


def _load_legacy():
    spec = importlib.util.spec_from_file_location(
        "legacy_reference", _LEGACY_PATH
    )
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves string annotations through sys.modules, so
    # the module must be registered before its body executes.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def _fig4_cell_inputs():
    pattern = {p.label: p for p in fig4_patterns(MEDIUM, seed=0)}["A2A"]
    tut = build_scheme("DRing (su2)", MEDIUM, seed=0)
    flows = _pattern_flows(MEDIUM, pattern, 0, 0.30)
    placement = tut.placement(shuffle=pattern.random_placement, seed=0)
    return tut, placement, flows


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_engine_3x_over_legacy(benchmark):
    legacy = _load_legacy()
    tut, placement, flows = _fig4_cell_inputs()

    engine_results = {}
    legacy_results = {}

    def run_engine():
        sim = FlowSimulator(tut.network, tut.routing, placement, seed=0)
        engine_results["fct"] = sim.run(flows)

    def run_legacy():
        sim = legacy.LegacyFlowSimulator(
            tut.network, tut.routing, placement, seed=0
        )
        legacy_results["fct"] = sim.run(flows)

    run_engine()  # warm the compiled routing cache once
    engine_seconds = _best_of(run_engine)
    legacy_seconds = _best_of(run_legacy)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Identical physics first: same records, same order, same floats.
    got, want = engine_results["fct"], legacy_results["fct"]
    assert got.num_flows == want.num_flows
    for a, b in zip(got.records, want.records):
        assert (a.src_server, a.dst_server, a.size_bytes) == (
            b.src_server, b.dst_server, b.size_bytes
        )
        assert a.start_time == b.start_time
        assert a.finish_time == b.finish_time
        assert a.path == b.path

    speedup = legacy_seconds / engine_seconds
    save_artifact(
        "sim_engine_speedup.txt",
        "\n".join(
            [
                "fig4 cell A2A / DRing (su2) / medium / seed 0 "
                f"({got.num_flows} flows):",
                f"  legacy simulator: {legacy_seconds * 1000:.1f} ms",
                f"  engine simulator: {engine_seconds * 1000:.1f} ms",
                f"  speedup: {speedup:.1f}x (required >= "
                f"{REQUIRED_SPEEDUP:.0f}x)",
            ]
        ),
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"engine only {speedup:.2f}x over legacy "
        f"({engine_seconds:.3f}s vs {legacy_seconds:.3f}s)"
    )
