"""Shared fixtures: small instances of every topology and routing scheme."""

from __future__ import annotations

import random

import pytest

from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.topology import dring, flatten, jellyfish, leaf_spine, xpander
from repro.traffic import CanonicalCluster


@pytest.fixture
def rng():
    return random.Random(1234)


@pytest.fixture
def small_leafspine():
    """leaf-spine(4, 2): 6 racks x 4 servers, 2 spines."""
    return leaf_spine(4, 2)


@pytest.fixture
def paper_like_leafspine():
    """leaf-spine(12, 4): the SMALL scale baseline, 16 racks x 12 servers."""
    return leaf_spine(12, 4)


@pytest.fixture
def small_dring():
    """DRing(6, 2): 12 racks, degree 8, 4 servers per rack."""
    return dring(6, 2, servers_per_rack=4)


@pytest.fixture
def small_rrg():
    """10-switch RRG of degree 4 with 3 servers per switch."""
    return jellyfish(10, 4, servers_per_switch=3, seed=7)


@pytest.fixture
def small_xpander():
    """Xpander with degree 4, lift 3 (15 switches), 3 servers each."""
    return xpander(4, 3, servers_per_rack=3, seed=7)


@pytest.fixture
def small_flat(small_leafspine):
    """Flat rebuild of leaf-spine(4, 2)."""
    return flatten(small_leafspine, seed=7)


@pytest.fixture
def dring_ecmp(small_dring):
    return EcmpRouting(small_dring)


@pytest.fixture
def dring_su2(small_dring):
    return ShortestUnionRouting(small_dring, 2)


@pytest.fixture
def small_cluster():
    """Canonical space matching leaf-spine(4, 2): 6 racks x 4 servers."""
    return CanonicalCluster(num_racks=6, servers_per_rack=4)
