"""The perf engine: hot-path performance rules for ``repro lint --deep``.

Hot-region inference (:mod:`model`) turns ``# repro-hot`` root
annotations plus the PR-4 call graph into a per-frame map of "how many
loops multiply this statement"; the rules (:mod:`alloc`, :mod:`scans`,
:mod:`dispatch`) judge allocations, scans and dispatch against it, and
:mod:`profile` cross-checks the static hot-set against a real
``cProfile`` run so the roots cannot rot.
"""

from repro.lint.flow.perf.model import (
    DEPTH_CAP,
    FrameFacts,
    HotRoot,
    PerfAllowance,
    PerfModel,
    is_build_entry,
    perf_facts,
)
from repro.lint.flow.perf.profile import (
    COVERAGE_FLOOR,
    TOP_K,
    ProfileCoverage,
    ProfiledFrame,
    profile_hot_coverage,
    render_coverage,
)

__all__ = [
    "COVERAGE_FLOOR",
    "DEPTH_CAP",
    "TOP_K",
    "FrameFacts",
    "HotRoot",
    "PerfAllowance",
    "PerfModel",
    "ProfileCoverage",
    "ProfiledFrame",
    "is_build_entry",
    "perf_facts",
    "profile_hot_coverage",
    "render_coverage",
]
