"""deep-alloc-in-hot-loop: no per-event allocation in hot frames.

The array-backed engine's speedup comes from touching preallocated
buffers; a stray ``np.zeros`` or list display inside the event loop
quietly re-introduces O(events) allocator traffic.  This rule flags
container and ndarray constructors whose *effective* loop depth — the
frame's inter-procedural entry depth plus the lexical depth of the
expression — is at least one.

Deliberately excluded:

* tuples and generator expressions (O(1) or lazy);
* value-producing reductions (``np.flatnonzero``, ``np.bincount``,
  fancy indexing) whose output *is* the computation — only hoistable
  buffer/copy constructors are flagged;
* any numpy call with an ``out=`` argument (that is the fix);
* allocations whose value escapes through ``return``/``yield`` — the
  frame's product cannot be hoisted by the frame;
* memoized regions (built once per cache key).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.program import ModuleInfo, function_statements
from repro.lint.flow.perf.model import (
    _is_numpy_call,
    escaping_names,
    perf_facts,
)
from repro.lint.flow.registry import FlowRule, register_flow_rule

#: numpy constructors that allocate a fresh buffer/copy every call.
_NP_ALLOCATORS = frozenset({
    "array", "asarray", "ascontiguousarray", "zeros", "empty", "ones",
    "full", "zeros_like", "empty_like", "ones_like", "full_like",
    "arange", "concatenate", "stack", "vstack", "hstack", "tile",
    "repeat", "unique", "copy",
})

_BUILTIN_CONTAINERS = frozenset({"list", "dict", "set"})


def _alloc_label(module: ModuleInfo, node: ast.AST) -> Optional[str]:
    """Human label when ``node`` allocates, else None."""
    if isinstance(node, ast.List):
        return "list display"
    if isinstance(node, ast.Dict):
        return "dict display"
    if isinstance(node, ast.Set):
        return "set display"
    if isinstance(node, ast.ListComp):
        return "list comprehension"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.DictComp):
        return "dict comprehension"
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id in _BUILTIN_CONTAINERS:
        return f"{func.id}()"
    if isinstance(func, ast.Attribute):
        if any(kw.arg == "out" for kw in node.keywords):
            return None  # writes into a caller-owned buffer: the fix
        if _is_numpy_call(module, node) and func.attr in _NP_ALLOCATORS:
            return f"np.{func.attr}()"
        if func.attr == "copy" and not node.args and not node.keywords:
            return ".copy()"
    return None


def _exempt_escapes(info: ast.AST, escapes: Set[str]) -> Set[int]:
    """ids of alloc value nodes whose result leaves the frame."""
    exempt: Set[int] = set()
    for stmt in function_statements(info):  # type: ignore[arg-type]
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and target.id in escapes:
                exempt.add(id(stmt.value))
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id in escapes
            ):
                exempt.add(id(stmt.value))
        elif isinstance(stmt, (ast.Return, ast.Yield)):
            if stmt.value is not None:
                exempt.add(id(stmt.value))
    return exempt


@register_flow_rule
class DeepAllocInHotLoop(FlowRule):
    name = "deep-alloc-in-hot-loop"
    summary = (
        "no list/dict/set/ndarray construction inside hot engine loops"
    )
    invariant = (
        "Frames reachable from a # repro-hot root allocate containers "
        "and arrays once, outside their loops — per-event work touches "
        "preallocated scratch buffers (or is justified with "
        "# repro-perf: allow=deep-alloc-in-hot-loop -- reason)."
    )
    engine = "perf"

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        model = perf_facts(graph)
        for info, facts, entry in model.hot_functions():
            module = graph.program.module_of(info)
            exempt = _exempt_escapes(info.node, escaping_names(info))
            for node in function_statements(info.node):
                label = _alloc_label(module, node)
                if label is None:
                    continue
                if id(node) not in facts.depth:
                    continue  # annotation/default, not executed per call
                depth = facts.depth[id(node)]
                if entry + depth < 1:
                    continue
                if id(node) in facts.memo or id(node) in exempt:
                    continue
                line = getattr(node, "lineno", info.line)
                if model.allowed(info, line, self.name):
                    continue
                yield self.finding(
                    module.path, line,
                    getattr(node, "col_offset", 0),
                    f"{label} allocates at loop depth {entry + depth} "
                    f"on the hot path {model.hot_path(info.qname)}; "
                    "hoist it out of the loop or reuse a scratch buffer",
                )
