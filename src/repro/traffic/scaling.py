"""Scaling traffic matrices to a target load (Section 6.1).

The paper scales every TM "so that the network utilization in the spine
layer is 30%": the aggregate inter-rack offered load equals 30% of the
baseline leaf-spine's one-way leaf-to-spine capacity.  Patterns in which
only a few racks participate (rack-to-rack, C-S) are further scaled down
by (sending racks / total racks), so sparse patterns do not concentrate
an absurd per-rack load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.network import Network
from repro.core.units import DEFAULT_SPINE_UTILIZATION
from repro.topology.leafspine import spine_layer_capacity
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class LoadSpec:
    """The offered aggregate load for a TM, in Gbps."""

    offered_gbps: float
    utilization: float
    sparse_factor: float

    def __post_init__(self) -> None:
        if self.offered_gbps <= 0:
            raise ValueError("offered load must be positive")


def spine_utilization_load(
    baseline: Network,
    tm: TrafficMatrix,
    utilization: float = DEFAULT_SPINE_UTILIZATION,
) -> LoadSpec:
    """Offered load giving the target spine utilization on the baseline.

    ``baseline`` must be the leaf-spine the experiment is normalized
    against (the same load is then offered to every topology under
    test).  The sparse-pattern correction divides by
    (total racks / sending racks) exactly as Section 6.1 describes.
    """
    if not 0 < utilization <= 1:
        raise ValueError("utilization must be in (0, 1]")
    capacity = spine_layer_capacity(baseline)
    sending = len(tm.sending_racks())
    total = tm.cluster.num_racks
    sparse_factor = sending / total
    return LoadSpec(
        offered_gbps=utilization * capacity * sparse_factor,
        utilization=utilization,
        sparse_factor=sparse_factor,
    )
