"""float-eq: no exact ``==``/``!=`` on float expressions in the simulators.

Bandwidth shares, FCTs and capacities are accumulated floating-point
quantities; exact equality on them flips with benign refactors
(reassociation, a different reduction order) and with platform math
libraries.  Use ``math.isclose`` or an explicit epsilon.  Exact
comparisons against a genuine sentinel (a value assigned verbatim, never
computed) can be suppressed with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule


def _is_floatish(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    return False


@register_rule
class FloatEquality(Rule):
    name = "float-eq"
    summary = "exact ==/!= against a float expression in sim/ code"
    invariant = (
        "simulator comparisons are robust to floating-point reduction "
        "order, so refactors cannot flip results"
    )

    def applies(self, context: FileContext) -> bool:
        return context.in_package("sim") and not context.is_test

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_floatish(left) or _is_floatish(right):
                    yield self.finding(
                        context, node.lineno, node.col_offset,
                        "exact float equality; use math.isclose or an "
                        "epsilon (or suppress with a sentinel "
                        "justification)",
                    )
                    break
