"""Programmatic verification of the routing design's guarantees.

The paper validates its scheme by spot-checking a GNS3 emulation; with a
simulated control plane we can assert the properties exhaustively:

* **Theorem 1**: the VRF-graph distance between host VRFs equals
  ``max(L, K)`` for racks at physical distance L;
* **path-set equivalence**: the paths BGP actually installs equal the
  Shortest-Union(K) path set;
* the Section 4 claim that on a DRing, SU(2) offers at least ``n + 1``
  edge-disjoint paths between any two racks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.bgp.protocol import BgpFabric, build_converged_fabric
from repro.bgp.vrf import VrfGraph
from repro.core.network import Network


def _su_paths(network: Network, src: int, dst: int, k: int):
    # Imported lazily: repro.routing.shortest_union builds on repro.bgp,
    # so a top-level import here would be circular.
    from repro.routing.shortest_union import shortest_union_paths

    return shortest_union_paths(network, src, dst, k)


@dataclass(frozen=True)
class TheoremViolation:
    """One rack pair where a verified property failed."""

    src: int
    dst: int
    expected: float
    observed: float
    detail: str = ""


def check_theorem1(
    network: Network, k: int, pairs: Optional[Sequence[Tuple[int, int]]] = None
) -> List[TheoremViolation]:
    """Verify dist_vrf((K,u),(K,v)) == max(L, K) over rack pairs.

    Returns the list of violations (empty means the theorem holds).
    """
    vrf = VrfGraph(network, k)
    physical = dict(nx.all_pairs_shortest_path_length(network.graph))
    violations: List[TheoremViolation] = []
    for src, dst in pairs if pairs is not None else network.rack_pairs():
        expected = max(physical[src][dst], k)
        observed = vrf.distance(src, dst)
        if observed != expected:
            violations.append(
                TheoremViolation(src, dst, expected, observed, "vrf distance")
            )
    return violations


def check_bgp_matches_theorem1(
    fabric: BgpFabric, pairs: Optional[Sequence[Tuple[int, int]]] = None
) -> List[TheoremViolation]:
    """Verify the converged BGP metrics equal max(L, K)."""
    network = fabric.network
    k = fabric.vrf_graph.k
    physical = dict(nx.all_pairs_shortest_path_length(network.graph))
    violations: List[TheoremViolation] = []
    for src, dst in pairs if pairs is not None else network.rack_pairs():
        expected = max(physical[src][dst], k)
        observed = fabric.metric(src, dst)
        if observed != expected:
            violations.append(
                TheoremViolation(src, dst, expected, observed, "bgp metric")
            )
    return violations


def check_path_set_equivalence(
    fabric: BgpFabric,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    exact: bool = True,
) -> List[TheoremViolation]:
    """Verify BGP's forwarding paths against the Shortest-Union(K) set.

    With ``exact=True`` the sets must be equal — this holds for K ≤ 2,
    the configuration the paper prototypes.  For K ≥ 3 two effects make
    the realized set diverge (reproduction findings, see EXPERIMENTS.md):

    * a BGP speaker advertises only one representative path per prefix,
      so a receiver whose AS appears in that representative rejects the
      route even when an equal-length alternative through the same
      neighbor would have been loop-free — some SU(K) paths are lost;
    * per-hop multipath *composition* can revisit a router through a
      different VRF: BGP's loop prevention applies to each advertised
      path, not to the trajectory a packet composes across independent
      per-hop hash decisions, so non-simple router-level walks appear.

    Both effects vanish at K ≤ 2.  With ``exact=False`` the check
    becomes the property that does hold for every K: each installed
    path is a valid physical walk whose length equals the Theorem-1
    metric max(L, K), and each *simple* installed path belongs to SU(K).
    """
    network = fabric.network
    k = fabric.vrf_graph.k
    physical = dict(nx.all_pairs_shortest_path_length(network.graph))
    violations: List[TheoremViolation] = []
    for src, dst in pairs if pairs is not None else network.rack_pairs():
        expected = set(_su_paths(network, src, dst, k))
        observed = set(fabric.forwarding_paths(src, dst))
        if exact:
            bad = expected != observed
            detail = (
                f"missing={sorted(expected - observed)} "
                f"extra={sorted(observed - expected)}"
            )
        else:
            low = physical[src][dst]
            high = max(low, k)
            walks_ok = all(
                low <= len(path) - 1 <= high
                and all(
                    network.graph.has_edge(a, b) for a, b in zip(path, path[1:])
                )
                for path in observed
            )
            simple = {p for p in observed if len(set(p)) == len(p)}
            bad = not observed or not walks_ok or not simple <= expected
            detail = f"walks_ok={walks_ok} bogus_simple={sorted(simple - expected)}"
        if bad:
            violations.append(
                TheoremViolation(src, dst, len(expected), len(observed), detail)
            )
    return violations


def min_disjoint_paths_su(
    network: Network, k: int, pairs: Optional[Sequence[Tuple[int, int]]] = None
) -> int:
    """Minimum edge-disjoint SU(K) path count over rack pairs.

    Computed exactly as a max-flow in the subgraph of SU(K) path edges
    with unit edge capacities.  On a DRing the paper claims this is at
    least n + 1 for K = 2.
    """
    best: Optional[int] = None
    for src, dst in pairs if pairs is not None else network.rack_pairs():
        allowed = nx.DiGraph()
        for path in _su_paths(network, src, dst, k):
            for a, b in zip(path, path[1:]):
                allowed.add_edge(a, b, capacity=1)
        value = nx.maximum_flow_value(allowed, src, dst)
        count = int(round(value))
        if best is None or count < best:
            best = count
    if best is None:
        raise ValueError("no rack pairs to check")
    return best


def verify_fabric(network: Network, k: int) -> Dict[str, int]:
    """Run the whole verification suite; raise on any violation.

    Returns summary statistics (pairs checked, convergence rounds) for
    reporting in the benchmark harness.
    """
    fabric = build_converged_fabric(network, k)
    metric_violations = check_bgp_matches_theorem1(fabric)
    if metric_violations:
        raise AssertionError(
            f"bgp metrics failed: {metric_violations[:5]} "
            f"({len(metric_violations)} total)"
        )
    path_violations = check_path_set_equivalence(fabric, exact=(k <= 2))
    if path_violations:
        raise AssertionError(
            f"path-set check failed: {path_violations[:5]} "
            f"({len(path_violations)} total)"
        )
    theorem = check_theorem1(network, k)
    if theorem:
        raise AssertionError(f"Theorem 1 failed: {theorem[:5]}")
    pairs = sum(1 for _ in network.rack_pairs())
    return {
        "pairs": pairs,
        "rounds": fabric.report.rounds,
        "updates": fabric.report.updates_processed,
    }
