"""Tests for the microburst experiment driver."""

import pytest

from repro.experiments import (
    SMALL,
    default_spec,
    render_microburst,
    run_microburst,
)


@pytest.fixture(scope="module")
def result():
    # The default spec's burst intensity (120 flows per bursting rack in
    # 0.4 ms) is what saturates a leaf-spine rack's uplinks.
    return run_microburst(SMALL, seed=0)


class TestMicroburstExperiment:
    def test_all_schemes_measured(self, result):
        assert len(result.p99_ms) == 5
        assert all(v > 0 for v in result.p99_ms.values())

    def test_flat_masks_bursts(self, result):
        # The Section 3 claim: flat topologies absorb microbursts that
        # squeeze the leaf-spine's oversubscribed uplinks.
        assert result.ratio_vs_leafspine("DRing (su2)") > 1.2
        assert result.ratio_vs_leafspine("RRG (su2)") > 1.2

    def test_render(self, result):
        text = render_microburst(result)
        assert "Microburst" in text
        assert "leaf-spine (ecmp)" in text

    def test_default_spec_fits_scale(self):
        spec = default_spec(SMALL)
        assert 1 <= spec.num_bursting_racks <= SMALL.cluster.num_racks


class TestAdaptiveStudy:
    def test_adaptive_matches_best_static(self):
        from repro.experiments import run_adaptive_study
        from repro.topology import dring
        from repro.traffic import CanonicalCluster

        net = dring(8, 2, servers_per_rack=6)
        cluster = CanonicalCluster(16, 6)
        points = run_adaptive_study(net, cluster, num_flows=500, seed=0)
        by_pattern = {p.pattern: p for p in points}
        # The mode choice follows the paper's observation: ECMP for
        # uniform, SU(2) for adjacent-rack R2R.
        assert by_pattern["uniform"].chosen_mode == "ecmp"
        assert by_pattern["r2r"].chosen_mode == "su(2)"
        for point in points:
            assert point.regret <= 1.1
