"""End-to-end: parallel cached fig4 cells == the serial grid, bit for bit.

Runs a reduced Figure 4 grid (2 patterns x 3 core schemes) at a tiny
registered scale three ways — the legacy serial ``run_fig4`` path, the
harness with ``jobs=1``, and the harness with ``jobs=2`` — and asserts
the rendered median/p99 tables are byte-identical.  A warm re-run must
come entirely from cache and still render the same tables.
"""

import multiprocessing

import pytest

from repro.experiments.fig4_fct import fig4_patterns, run_fig4
from repro.experiments.runner import (
    Scale,
    build_suite,
    register_scale,
    scheme_labels,
)
from repro.harness.cache import ResultCache
from repro.harness.executor import HIT, RAN, run_jobs
from repro.harness.jobs import assemble_fig4, fig4_jobs

TINY = register_scale(
    Scale(
        name="tiny-fig4",
        leaf_x=6,
        leaf_y=2,
        dring_m=6,
        dring_n=2,
        dring_servers=48,
        max_flows=150,
        window_seconds=0.02,
        size_cap_bytes=10e6,
    )
)

PATTERNS = ["A2A", "R2R"]
SCHEMES = scheme_labels(include_ecmp_flats=False)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="workers must inherit the registered tiny scale",
)


def harness_tables(jobs, cache=None):
    specs = fig4_jobs("tiny-fig4", seed=0, patterns=PATTERNS,
                      schemes=SCHEMES)
    results, outcomes = run_jobs(specs, jobs=jobs, cache=cache)
    figure = assemble_fig4(specs, results)
    return figure.median_table(), figure.p99_table(), outcomes


@pytest.fixture(scope="module")
def serial_tables():
    patterns = [
        p for p in fig4_patterns(TINY, seed=0) if p.label in PATTERNS
    ]
    suite = build_suite(TINY, seed=0, include_ecmp_flats=False)
    figure = run_fig4(TINY, seed=0, patterns=patterns, suite=suite)
    return figure.median_table(), figure.p99_table()


class TestParallelIdentity:
    def test_harness_serial_matches_legacy_path(self, serial_tables):
        median, p99, outcomes = harness_tables(jobs=1)
        assert all(o.status == RAN for o in outcomes)
        assert median == serial_tables[0]
        assert p99 == serial_tables[1]

    @fork_only
    def test_harness_parallel_matches_legacy_path(self, serial_tables):
        median, p99, outcomes = harness_tables(jobs=2)
        assert all(o.status == RAN for o in outcomes)
        assert median == serial_tables[0]
        assert p99 == serial_tables[1]

    @fork_only
    def test_warm_rerun_is_all_hits_and_identical(
        self, serial_tables, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        harness_tables(jobs=2, cache=cache)
        median, p99, outcomes = harness_tables(jobs=2, cache=cache)
        assert all(o.status == HIT for o in outcomes)
        assert median == serial_tables[0]
        assert p99 == serial_tables[1]
