"""Tests for the ablation drivers."""

import pytest

from repro.experiments import (
    run_dring_shape_sweep,
    run_failure_study,
    run_k_sweep,
)
from repro.topology import dring
from repro.traffic import CanonicalCluster


@pytest.fixture(scope="module")
def net():
    return dring(6, 2, servers_per_rack=4)


@pytest.fixture(scope="module")
def cluster():
    return CanonicalCluster(12, 4)


class TestKSweep:
    def test_points_for_each_k_and_pattern(self, net, cluster):
        points = run_k_sweep(net, cluster, ks=(1, 2), num_flows=150)
        assert len(points) == 4
        assert {p.k for p in points} == {1, 2}
        assert {p.pattern for p in points} == {"uniform", "r2r"}

    def test_path_diversity_grows_with_k(self, net, cluster):
        points = run_k_sweep(net, cluster, ks=(1, 2, 3), num_flows=60)
        by_k = {p.k: p.mean_paths for p in points}
        assert by_k[1] <= by_k[2] <= by_k[3]

    def test_k2_improves_r2r_over_k1(self, net, cluster):
        points = run_k_sweep(net, cluster, ks=(1, 2), num_flows=300, seed=2)
        r2r = {p.k: p.p99_ms for p in points if p.pattern == "r2r"}
        assert r2r[2] <= r2r[1] * 1.05


class TestShapeSweep:
    def test_fixed_rack_budget(self):
        points = run_dring_shape_sweep(
            shapes=((12, 2), (8, 3), (6, 4)), num_flows=100
        )
        assert len({p.racks for p in points}) == 1
        degrees = [p.network_degree for p in points]
        assert degrees == [8, 12, 16]

    def test_wider_supernodes_shrink_diameter(self):
        points = run_dring_shape_sweep(
            shapes=((12, 2), (6, 4)), num_flows=50
        )
        assert points[1].diameter <= points[0].diameter


class TestFailures:
    def test_single_failure_report(self, net):
        report = run_failure_study(net, num_failures=1, seed=0)
        assert report.still_connected
        assert report.reconvergence_rounds >= 1
        assert report.min_su2_paths_after >= 1

    def test_failure_reduces_or_keeps_path_diversity(self, net):
        report = run_failure_study(net, num_failures=2, seed=1)
        if report.still_connected:
            assert (
                report.min_su2_paths_after <= report.min_su2_paths_before
            )

    def test_rejects_failing_everything(self, net):
        with pytest.raises(ValueError):
            run_failure_study(net, num_failures=10_000)


class TestFailureSweep:
    def test_sweep_shapes(self):
        from repro.experiments import run_failure_sweep
        from repro.traffic import CanonicalCluster

        net = dring(8, 2, servers_per_rack=6)
        cluster = CanonicalCluster(16, 6)
        points = run_failure_sweep(
            net, cluster, failure_counts=(0, 1, 2), num_flows=300, seed=1
        )
        assert [p.failed_links for p in points] == [0, 1, 2]
        assert all(p.still_connected for p in points)

    def test_degradation_is_graceful(self):
        from repro.experiments import run_failure_sweep
        from repro.traffic import CanonicalCluster

        net = dring(8, 2, servers_per_rack=6)
        cluster = CanonicalCluster(16, 6)
        points = run_failure_sweep(
            net, cluster, failure_counts=(0, 2), num_flows=400, seed=1
        )
        # Two failed links on a fabric with n+1 disjoint paths per pair:
        # still routable everywhere and tail FCT within 2x of healthy.
        assert points[1].min_su2_paths >= 1
        assert points[1].p99_ms < 2.0 * points[0].p99_ms

    def test_rejects_failing_everything(self):
        from repro.experiments import run_failure_sweep
        from repro.traffic import CanonicalCluster

        net = dring(6, 2, servers_per_rack=4)
        cluster = CanonicalCluster(12, 4)
        with pytest.raises(ValueError):
            run_failure_sweep(net, cluster, failure_counts=(10_000,))


class TestSchemeZoo:
    @pytest.fixture(scope="class")
    def zoo(self):
        from repro.experiments import run_scheme_zoo
        from repro.traffic import CanonicalCluster

        net = dring(8, 2, servers_per_rack=6)
        cluster = CanonicalCluster(16, 6)
        return run_scheme_zoo(net, cluster, num_flows=500, seed=0)

    def test_all_schemes_and_patterns(self, zoo):
        assert {p.scheme for p in zoo} == {"ecmp", "su(2)", "ksp(4)", "vlb"}
        assert {p.pattern for p in zoo} == {"uniform", "r2r"}

    def test_su2_matches_impractical_baselines_on_r2r(self, zoo):
        # The paper's pitch: SU(2) recovers what KSP/MPTCP and VLB offer
        # on the flat network's hard case, using only standard features.
        by = {(p.scheme, p.pattern): p for p in zoo}
        su2 = by[("su(2)", "r2r")].p99_ms
        assert su2 <= by[("ecmp", "r2r")].p99_ms / 2
        assert su2 <= by[("ksp(4)", "r2r")].p99_ms * 1.5
        assert su2 <= by[("vlb", "r2r")].p99_ms * 1.5

    def test_vlb_pays_stretch_on_uniform(self, zoo):
        by = {(p.scheme, p.pattern): p for p in zoo}
        assert (
            by[("vlb", "uniform")].mean_hops
            > by[("ecmp", "uniform")].mean_hops
        )

    def test_hops_ordering(self, zoo):
        by = {(p.scheme, p.pattern): p for p in zoo}
        assert (
            by[("ecmp", "uniform")].mean_hops
            <= by[("su(2)", "uniform")].mean_hops
        )


class TestHeterogeneousStudy:
    def test_constant_oversubscription_configs(self):
        from repro.experiments import run_heterogeneous_study

        points = run_heterogeneous_study(num_flows=800, seed=1)
        assert [p.uplink_mult for p in points] == [1, 2, 4]
        # With radix-proportional spreading, the flat rebuild keeps its
        # skewed-traffic win at every uplink speed class (Section 5.1's
        # "we expect similar results").
        for point in points:
            assert point.flat_gain > 0.9

    def test_even_spreading_breaks_on_heterogeneous_equipment(self):
        """The reproduction finding: the paper's even-spreading recipe
        produces hub-dominated graphs from heterogeneous equipment."""
        from repro.core.metrics import nsr
        from repro.topology import flatten, leaf_spine

        het = leaf_spine(24, 2, uplink_mult=4)
        even = nsr(flatten(het, seed=0))
        prop = nsr(flatten(het, seed=0, spreading="proportional"))
        assert even.maximum / even.minimum > 3
        assert prop.maximum / prop.minimum < 1.5
