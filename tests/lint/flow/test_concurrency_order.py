"""The deep-lock-order rule: acquisition-order cycles and same-path
re-acquisition of non-reentrant locks."""

from __future__ import annotations

from repro.lint.flow import deep_lint_paths
from repro.lint.flow.concurrency import DeepLockOrder, build_lock_order

from tests.lint.flow.util import build_fixture_graph

#: Two locks taken in opposite orders on two paths — the textbook
#: deadlock; `transfer` nests b under a, `audit` nests a under b.
DEADLOCK_FIXTURE = {
    "bank.py": (
        "import threading\n"
        "\n"
        "\n"
        "class Bank:\n"
        "    def __init__(self):\n"
        "        self._a = threading.Lock()\n"
        "        self._b = threading.Lock()\n"
        "        self.ledger = []\n"
        "\n"
        "    def transfer(self):\n"
        "        with self._a:\n"
        "            with self._b:\n"
        "                self.ledger.append('t')\n"
        "\n"
        "    def audit(self):\n"
        "        with self._b:\n"
        "            with self._a:\n"
        "                self.ledger.append('a')\n"
    ),
}


class TestLockOrderGraph:
    def test_edges_record_nesting_order(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, DEADLOCK_FIXTURE, "lpkg")
        order = build_lock_order(graph)
        a = "lpkg.bank.Bank._a"
        b = "lpkg.bank.Bank._b"
        assert order.nodes == {a, b}
        assert set(order.edge_list()) == {(a, b), (b, a)}

    def test_cycle_detected_and_canonicalized(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, DEADLOCK_FIXTURE, "lpkg")
        order = build_lock_order(graph)
        assert order.cycles() == [
            ["lpkg.bank.Bank._a", "lpkg.bank.Bank._b"],
        ]

    def test_consistent_order_is_acyclic(self, tmp_path):
        fixture = dict(DEADLOCK_FIXTURE)
        fixture["bank.py"] = fixture["bank.py"].replace(
            "    def audit(self):\n"
            "        with self._b:\n"
            "            with self._a:\n",
            "    def audit(self):\n"
            "        with self._a:\n"
            "            with self._b:\n",
        )
        _, graph = build_fixture_graph(tmp_path, fixture, "lpkg")
        order = build_lock_order(graph)
        assert order.cycles() == []
        assert order.edge_list() == [
            ("lpkg.bank.Bank._a", "lpkg.bank.Bank._b"),
        ]

    def test_interprocedural_nesting_builds_the_edge(self, tmp_path):
        fixture = {
            "nest.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Outer:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.inner = Inner()\n"
                "\n"
                "    def touch(self):\n"
                "        with self._lock:\n"
                "            self.inner.poke()\n"
                "\n"
                "\n"
                "class Inner:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.count = 0\n"
                "\n"
                "    def poke(self):\n"
                "        with self._lock:\n"
                "            self.count += 1\n"
            ),
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "npkg")
        order = build_lock_order(graph)
        assert order.edge_list() == [
            ("npkg.nest.Outer._lock", "npkg.nest.Inner._lock"),
        ]


class TestDeepLockOrderRule:
    def test_cycle_is_one_finding_with_witness_sites(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, DEADLOCK_FIXTURE, "lpkg")
        findings = list(DeepLockOrder().check(graph))
        assert len(findings) == 1
        message = findings[0].message
        assert "lock-order cycle" in message
        assert "Bank._a" in message and "Bank._b" in message
        assert "bank.py:" in message  # per-edge witness sites

    def test_self_reacquire_of_plain_lock(self, tmp_path):
        fixture = {
            "re.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Once:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.n = 0\n"
                "\n"
                "    def outer(self):\n"
                "        with self._lock:\n"
                "            self.inner()\n"
                "\n"
                "    def inner(self):\n"
                "        with self._lock:\n"
                "            self.n += 1\n"
            ),
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "rpkg")
        findings = list(DeepLockOrder().check(graph))
        assert len(findings) == 1
        assert "re-acquires non-reentrant lock" in findings[0].message
        assert "Once._lock" in findings[0].message

    def test_rlock_reacquire_is_legal(self, tmp_path):
        fixture = {
            "re.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Once:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.RLock()\n"
                "        self.n = 0\n"
                "\n"
                "    def outer(self):\n"
                "        with self._lock:\n"
                "            self.inner()\n"
                "\n"
                "    def inner(self):\n"
                "        with self._lock:\n"
                "            self.n += 1\n"
            ),
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "rpkg")
        assert list(DeepLockOrder().check(graph)) == []

    def test_condition_wait_reacquire_is_not_flagged(self, tmp_path):
        fixture = {
            "cv.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Waiter:\n"
                "    def __init__(self):\n"
                "        self._cond = threading.Condition()\n"
                "        self.ready = False\n"
                "\n"
                "    def block(self):\n"
                "        with self._cond:\n"
                "            while not self.ready:\n"
                "                self._cond.wait()\n"
            ),
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "cvpkg")
        assert list(DeepLockOrder().check(graph)) == []

    def test_suppression_comment_silences(self, tmp_path):
        fixture = dict(DEADLOCK_FIXTURE)
        fixture["bank.py"] = fixture["bank.py"].replace(
            "        with self._a:\n"
            "            with self._b:\n",
            "        with self._a:\n"
            "            with self._b:  "
            "# repro-lint: disable=deep-lock-order\n",
        )
        build_fixture_graph(tmp_path, fixture, "lpkg")
        findings, _ = deep_lint_paths(
            [str(tmp_path / "lpkg")],
            rule_names=["deep-lock-order"],
            package="lpkg",
        )
        assert findings == []
