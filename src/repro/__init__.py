"""repro: a reproduction of "Spineless Data Centers" (HotNets 2020).

The package implements the paper's full system: flat topology
construction (DRing, Jellyfish/RRG, Xpander) and the leaf-spine
baseline, the NSR/UDF flatness analysis, oblivious routing schemes (ECMP
and Shortest-Union(K)) with their standard-protocol BGP/VRF realization,
traffic models (A2A, rack-to-rack, C-S, Facebook-like), and flow-level
simulators that regenerate every figure of the paper's evaluation.

Quick start::

    from repro.topology import leaf_spine, dring, flatten
    from repro.routing import EcmpRouting, ShortestUnionRouting
    from repro.sim import cs_throughput

    ls = leaf_spine(12, 4)          # the baseline 2-tier Clos
    dr = dring(12, 2, servers_per_rack=8)
    ratio = (
        cs_throughput(dr, ShortestUnionRouting(dr, 2), 24, 96).mean_flow_gbps
        / cs_throughput(ls, EcmpRouting(ls), 24, 96).mean_flow_gbps
    )

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

__version__ = "1.0.0"

if TYPE_CHECKING:
    from repro.core.network import Network
    from repro.routing import EcmpRouting, ShortestUnionRouting
    from repro.sim import FctResults, ThroughputReport, cs_throughput
    from repro.topology import dring, flatten, jellyfish, leaf_spine, xpander

#: Curated top-level API: attribute name -> home module.  Resolved
#: lazily (PEP 562) so ``import repro`` stays cheap — the simulators and
#: numpy-heavy modules load only when first touched.
_PUBLIC_API = {
    "Network": "repro.core.network",
    "EcmpRouting": "repro.routing",
    "ShortestUnionRouting": "repro.routing",
    "FctResults": "repro.sim",
    "ThroughputReport": "repro.sim",
    "cs_throughput": "repro.sim",
    "dring": "repro.topology",
    "flatten": "repro.topology",
    "jellyfish": "repro.topology",
    "leaf_spine": "repro.topology",
    "xpander": "repro.topology",
}

__all__ = ["__version__", *sorted(_PUBLIC_API)]


def __getattr__(name: str) -> Any:
    try:
        module_name = _PUBLIC_API[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(__all__))
