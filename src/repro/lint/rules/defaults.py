"""no-mutable-default-arg: the classic shared-state footgun.

A mutable default is evaluated once at function definition and shared by
every call; in an experiment codebase that means one sweep cell's
mutation leaks into the next, keyed by nothing the cache can see.  Use
``None`` and construct inside the body.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule

_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


@register_rule
class NoMutableDefaultArg(Rule):
    name = "mutable-default"
    summary = "mutable default argument (list/dict/set literal or call)"
    invariant = (
        "function calls are independent; no state leaks between sweep "
        "cells through a shared default object"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        context, default.lineno, default.col_offset,
                        f"mutable default in '{node.name}()'; default "
                        "to None and construct inside the body",
                    )
