"""K-shortest-paths routing: the Jellyfish baseline (Section 2).

Jellyfish [23] pairs expanders with K-shortest-path routing and MPTCP.
The paper under reproduction treats this as the impractical comparison
point (it needs control- and data-plane modifications), so we provide it
as a baseline for ablations rather than as a deployable scheme.

Flows split uniformly over the first K simple paths by length, which is
how MPTCP subflows are pinned in the Jellyfish evaluation.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Tuple

import networkx as nx

from repro.core.network import Network
from repro.routing.base import EdgeFractions, Path, RoutingScheme


class KShortestPathsRouting(RoutingScheme):
    """Uniform splitting over the K shortest simple paths."""

    def __init__(self, network: Network, k: int = 8) -> None:
        super().__init__(network)
        if k < 1:
            raise ValueError("K must be at least 1")
        self.k = k
        self.name = f"ksp({k})"

    def _compute_paths(self, src: int, dst: int) -> List[Path]:
        generator = nx.shortest_simple_paths(self.network.graph, src, dst)
        return [tuple(p) for p in itertools.islice(generator, self.k)]

    def sample_path(self, src: int, dst: int, rng: random.Random) -> Path:
        return rng.choice(self.paths(src, dst))

    def _compute_edge_fractions(self, src: int, dst: int) -> EdgeFractions:
        paths = self.paths(src, dst)
        share = 1.0 / len(paths)
        fractions: Dict[Tuple[int, int], float] = {}
        for path in paths:
            for a, b in zip(path, path[1:]):
                fractions[(a, b)] = fractions.get((a, b), 0.0) + share
        return fractions
