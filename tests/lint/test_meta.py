"""The gate itself: the repository at HEAD is lint-clean.

If one of these fails, either a determinism invariant was just broken
(fix the code) or a rule misfires on a legitimate new pattern (fix the
rule, or suppress with a justification comment).
"""

from __future__ import annotations

import pathlib

from repro.cli import main
from repro.lint import lint_paths, render_text

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _existing(*names: str) -> list:
    return [REPO_ROOT / name for name in names if (REPO_ROOT / name).is_dir()]


def test_src_is_clean():
    findings = lint_paths(_existing("src"))
    assert findings == [], "\n" + render_text(findings)


def test_tests_are_clean():
    findings = lint_paths(_existing("tests"))
    assert findings == [], "\n" + render_text(findings)


class TestDeepGate:
    """The interprocedural gate: deep-clean at HEAD, bounded optimism."""

    def test_deep_lint_is_clean(self):
        from repro.lint.flow import deep_lint_paths

        findings, _ = deep_lint_paths(
            [str(p) for p in _existing("src", "tests")]
        )
        assert findings == [], "\n" + render_text(findings)

    def test_call_graph_resolution_floor(self):
        """Deep rules treat unresolved call sites as effect-free; that
        optimism is sound only while almost every site resolves.  If
        this ratio sinks, teach the call-graph builder the new pattern
        rather than loosening the floor."""
        from repro.lint.flow import deep_lint_paths

        _, stats = deep_lint_paths([str(REPO_ROOT / "src")])
        assert stats["resolved_fraction"] >= 0.90, stats
        assert stats["call_sites"] > 1000, stats

    def test_cli_deep_flag(self, capsys):
        code = main(["lint", "--deep", str(REPO_ROOT / "src")])
        assert code == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_deep_rules_listed(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "deep-cache-purity", "deep-seed-provenance",
            "deep-unit-consistency", "deep-worker-safety",
        ):
            assert name in out


class TestConcurrencyGate:
    """The concurrency suite at HEAD: rules registered, the service
    lock-order graph pinned, every guard annotation justified."""

    def _graph(self):
        from repro.lint.flow import build_call_graph
        from repro.lint.flow.program import Program

        program = Program.from_paths([REPO_ROOT / "src"], "repro")
        assert program is not None
        return build_call_graph(program)

    def test_concurrency_rules_listed_under_their_engine(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "concurrency — lockset/order/blocking rules" in out
        ast_part, _, concurrency_part = out.partition("concurrency —")
        for name in (
            "deep-lockset-races", "deep-lock-order",
            "deep-blocking-under-lock",
        ):
            assert name in concurrency_part
            assert name not in ast_part

    def test_rules_carry_the_concurrency_engine_tag(self):
        from repro.lint.flow.registry import all_flow_rules

        engines = {
            rule.name: rule.engine for rule in all_flow_rules()
        }
        assert engines["deep-lockset-races"] == "concurrency"
        assert engines["deep-lock-order"] == "concurrency"
        assert engines["deep-blocking-under-lock"] == "concurrency"
        assert engines["deep-cache-purity"] == "flow"

    def test_service_lock_order_graph_is_golden(self):
        """The service layer's lock-order graph is a design artifact:
        two locks, no nesting between them.  A new node or edge here is
        a reviewable design change, not an incidental one — update this
        pin deliberately."""
        from repro.lint.flow.concurrency import build_lock_order

        order = build_lock_order(self._graph())
        assert sorted(order.nodes) == [
            "repro.service.jobs.JobManager._cond",
            "repro.service.store.ServiceStore._lock",
        ]
        assert order.edge_list() == []
        assert order.self_reacquires == []
        assert order.cycles() == []

    def test_declared_contracts_at_head(self):
        """The repo's locking contracts, as declared: ServiceJob's
        mutable fields are guarded by the manager condition and the
        internal transition helpers require it."""
        from repro.lint.flow.concurrency import concurrency_facts

        facts = concurrency_facts(self._graph())
        job = "repro.service.jobs.ServiceJob"
        guarded = {
            attr for cls, attr in facts.model.guards if cls == job
        }
        assert {"state", "started_at", "finished_at", "error",
                "events", "cache_hit"} <= guarded
        assert {
            "repro.service.jobs.JobManager._append_event",
            "repro.service.jobs.JobManager._finish",
        } <= set(facts.model.requires)
        for decl in facts.model.guards.values():
            assert decl.reason, f"unjustified guard at {decl.path}:{decl.line}"
        for decl in facts.model.requires.values():
            assert decl.reason, f"unjustified requires at {decl.path}:{decl.line}"


class TestPerfGate:
    """The perf suite at HEAD: the six engine hot roots pinned, every
    allowance justified, the repo perf-clean, and the static hot set
    validated against a real profile."""

    #: The engine's hot roots are a design artifact: these seven frames
    #: are the event/phase/assembly loops everything rides on.  A new
    #: root is a reviewable design change — update this pin
    #: deliberately, with the matching ``# repro-hot`` annotation.
    #: ``WarmFill.solve`` joined in the round-2 engine PR: it fronts
    #: ``fill_levels`` on every event and carries the replay fast path.
    GOLDEN_ROOTS = (
        "repro.sim.flowsim.FlowSimulator.run",
        "repro.sim.maxmin.fill_levels",
        "repro.sim.packet.core.EventQueue.run",
        "repro.sim.packet.simulator.PacketSimulator._on_hop_done",
        "repro.sim.phases.PhaseCohortDriver.run",
        "repro.sim.throughput.commodity_throughput",
        "repro.sim.warmfill.WarmFill.solve",
    )

    def _model(self):
        from repro.lint.flow import build_call_graph
        from repro.lint.flow.perf import perf_facts
        from repro.lint.flow.program import Program

        program = Program.from_paths([REPO_ROOT / "src"], "repro")
        assert program is not None
        return perf_facts(build_call_graph(program))

    def test_hot_roots_are_exactly_the_golden_seven(self):
        model = self._model()
        assert tuple(
            sorted(root.qname for root in model.roots)
        ) == self.GOLDEN_ROOTS
        for root in model.roots:
            assert root.reason, f"unjustified root at {root.path}:{root.line}"

    def test_no_rotted_hot_markers(self):
        assert self._model().unclaimed_markers == []

    def test_hot_set_reaches_the_engine_kernels(self):
        """Spot-pin the propagation: the array kernels every event
        touches must be in the hot set, at depth >= 1."""
        model = self._model()
        for qname in (
            "repro.sim.flowsim.FlowSimulator._admit",
            "repro.sim.maxmin.Incidence.compact",
            "repro.sim.engine.routing._CompiledShortestUnion.sample",
            "repro.sim.engine.routing._hop_draw",
            "repro.sim.engine.trace.SimTrace.count",
        ):
            assert qname in model.entry, qname
            assert model.entry[qname] >= 1, (qname, model.entry[qname])

    def test_every_allowance_has_a_reason(self):
        model = self._model()
        assert model.allowances, "expected # repro-perf: allow= in src"
        for allowance in model.allowances:
            assert allowance.reason, (
                f"unjustified allowance at "
                f"{allowance.path}:{allowance.line}"
            )

    def test_perf_rules_clean_at_head_under_empty_baseline(self):
        """The ratchet: lint-baseline.json is empty, so any perf
        finding anywhere in src/tests fails CI outright."""
        import json

        from repro.lint.flow import deep_lint_paths
        from repro.lint.flow.registry import FLOW_REGISTRY, all_flow_rules

        all_flow_rules()
        perf_rules = [
            name for name, rule in FLOW_REGISTRY.items()
            if rule.engine == "perf"
        ]
        assert len(perf_rules) == 5
        findings, _ = deep_lint_paths(
            [str(p) for p in _existing("src", "tests")],
            rule_names=perf_rules,
        )
        assert findings == [], "\n" + render_text(findings)
        baseline = json.loads(
            (REPO_ROOT / "lint-baseline.json").read_text()
        )
        assert baseline["findings"] == []

    def test_perf_rules_listed_under_their_engine(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for section in (
            "ast — per-file AST rules",
            "flow — call-graph rules [deep]",
            "concurrency — lockset/order/blocking rules [deep]",
            "perf — hot-path performance rules [deep]",
        ):
            assert section in out
        before, _, perf_part = out.partition("perf —")
        for name in (
            "deep-alloc-in-hot-loop", "deep-quadratic-scan",
            "deep-numpy-scalar-loop", "deep-recompile-in-loop",
            "deep-hot-dispatch",
        ):
            assert name in perf_part
            assert name not in before

    def test_every_engine_tag_has_a_section_title(self):
        from repro.lint.flow.registry import (
            ENGINE_SECTIONS,
            all_flow_rules,
        )

        titled = {engine for engine, _title in ENGINE_SECTIONS}
        for rule in all_flow_rules():
            assert rule.engine in titled, rule.name

    def test_perf_rule_filter_through_the_cli(self, capsys):
        code = main([
            "lint", "--deep", "--rule", "deep-alloc-in-hot-loop",
            str(REPO_ROOT / "src"),
        ])
        assert code == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_profile_flag_requires_deep(self, capsys):
        assert main(["lint", "--profile", str(REPO_ROOT / "src")]) == 2
        assert "--profile requires --deep" in capsys.readouterr().err

    def test_profile_coverage_meets_the_floor(self, tmp_path):
        """The dynamic cross-check: a real cProfile run of a small
        fig4 cell, scored against the static hot set.  Every top-K
        frame must be claimed (hot) or deliberately exempted (warm,
        behind a memo guard) — a rotted root or resolution regression
        drops this below the floor."""
        from repro.lint.flow.perf import (
            COVERAGE_FLOOR,
            profile_hot_coverage,
            render_coverage,
        )

        coverage = profile_hot_coverage(model=self._model())
        assert coverage.total > 0
        assert coverage.passed, "\n" + render_coverage(coverage)
        assert coverage.coverage >= COVERAGE_FLOOR
        report = render_coverage(coverage)
        assert coverage.cell in report
        out = tmp_path / "coverage.txt"
        out.write_text(report)
        assert "FlowSimulator.run" in out.read_text()


class TestCliLint:
    def test_clean_tree_exits_zero(self, capsys):
        code = main(["lint", str(REPO_ROOT / "src")])
        assert code == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "sim" / "dirty.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        code = main(["lint", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "no-wallclock" in out

    def test_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "src" / "repro" / "sim" / "dirty.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        code = main(["lint", "--format", "json", str(tmp_path)])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["counts"] == {"no-wallclock": 1}

    def test_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "sim" / "dirty.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\ndef f(x=[]):\n    return time.time()\n")
        code = main(["lint", "--rule", "mutable-default", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "mutable-default" in out
        assert "no-wallclock" not in out

    def test_unknown_rule_rejected(self, tmp_path, capsys):
        assert main(["lint", "--rule", "bogus", str(tmp_path)]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ("no-wallclock", "seed-threading", "float-eq"):
            assert name in out
