"""Tests for flow workload generation."""

import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    Flow,
    flows_for_load,
    generate_flows,
    pareto_minimum,
    sample_flow_size,
    truncated_pareto_mean,
    uniform,
    window_for_budget,
)


class TestParetoSizes:
    def test_minimum_parameter(self):
        # mean = shape * m / (shape - 1) => m = mean (shape-1)/shape.
        assert pareto_minimum(100_000, 1.05) == pytest.approx(100_000 / 21)

    def test_rejects_shape_at_most_one(self):
        with pytest.raises(ValueError):
            pareto_minimum(100_000, 1.0)

    def test_samples_at_least_minimum(self):
        rng = random.Random(0)
        minimum = pareto_minimum(100_000, 1.05)
        for _ in range(500):
            assert sample_flow_size(rng) >= minimum

    def test_cap_enforced(self):
        rng = random.Random(0)
        for _ in range(500):
            assert sample_flow_size(rng, cap=1e6) <= 1e6

    def test_truncated_mean_below_nominal(self):
        assert truncated_pareto_mean(100_000, 1.05, 10e6) < 100_000

    def test_truncated_mean_without_cap(self):
        assert truncated_pareto_mean(100_000, 1.05, None) == 100_000

    def test_truncated_mean_matches_samples(self):
        rng = random.Random(1)
        cap = 5e6
        samples = [sample_flow_size(rng, cap=cap) for _ in range(40_000)]
        expected = truncated_pareto_mean(100_000, 1.05, cap)
        assert statistics.fmean(samples) == pytest.approx(expected, rel=0.1)

    def test_cap_below_minimum_degenerates(self):
        assert truncated_pareto_mean(100_000, 1.05, 10.0) == 10.0


class TestFlowValidation:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Flow(0, 1, 0.0, 0.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Flow(0, 1, 100.0, -1.0)


class TestGeneration:
    def test_flows_sorted_by_start(self, small_cluster):
        flows = generate_flows(uniform(small_cluster), 200, 1.0, seed=0)
        starts = [f.start_time for f in flows]
        assert starts == sorted(starts)

    def test_start_times_within_window(self, small_cluster):
        window = 0.5
        flows = generate_flows(uniform(small_cluster), 200, window, seed=0)
        assert all(0 <= f.start_time <= window for f in flows)

    def test_deterministic_in_seed(self, small_cluster):
        tm = uniform(small_cluster)
        assert generate_flows(tm, 50, 1.0, seed=3) == generate_flows(
            tm, 50, 1.0, seed=3
        )

    def test_endpoints_in_different_racks(self, small_cluster):
        flows = generate_flows(uniform(small_cluster), 200, 1.0, seed=0)
        for f in flows:
            assert small_cluster.rack_of(f.src_server) != small_cluster.rack_of(
                f.dst_server
            )

    def test_rejects_bad_args(self, small_cluster):
        tm = uniform(small_cluster)
        with pytest.raises(ValueError):
            generate_flows(tm, 0, 1.0)
        with pytest.raises(ValueError):
            generate_flows(tm, 10, 0.0)


class TestLoadAccounting:
    def test_flows_for_load_roundtrip(self):
        # 10 Gbps for 0.08 s = 100 MB = 1000 flows of 100 KB mean.
        assert flows_for_load(10.0, 0.08) == 1000

    def test_cap_increases_flow_count(self):
        uncapped = flows_for_load(10.0, 0.08)
        capped = flows_for_load(10.0, 0.08, size_cap=1e6)
        assert capped > uncapped

    def test_window_budget_hits_target_rate(self):
        window, count = window_for_budget(10.0, 500, 1.0)
        realized = count * 100_000 / window  # bytes per second
        assert realized * 8 / 1e9 == pytest.approx(10.0, rel=0.05)

    def test_window_budget_respects_max_window(self):
        window, _count = window_for_budget(0.001, 10_000, 0.5)
        assert window == 0.5

    @given(
        gbps=st.floats(min_value=0.1, max_value=500),
        budget=st.integers(min_value=10, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_window_budget_never_exceeds_flows(self, gbps, budget):
        window, count = window_for_budget(gbps, budget, 1.0)
        assert count <= budget
        assert window > 0
