"""Per-rule fixtures: each rule fires exactly once, and a suppression
comment on the offending line silences it.

Fixtures are in-memory sources linted under *virtual* paths, so
path-scoped rules can be exercised without touching the working tree.
"""

from __future__ import annotations

import pytest

from repro.lint import lint_source

#: (rule name, virtual path, source tripping the rule exactly once).
FIXTURES = [
    (
        "no-unseeded-rng",
        "src/repro/topology/fixture.py",
        (
            "import random\n"
            "\n"
            "def pick(items):\n"
            "    return random.choice(items)\n"
        ),
    ),
    (
        "no-unseeded-rng",
        "src/repro/sim/fixture.py",
        (
            "import numpy as np\n"
            "\n"
            "def jumble(values):\n"
            "    np.random.shuffle(values)\n"
        ),
    ),
    (
        "no-wallclock",
        "src/repro/sim/fixture.py",
        (
            "import time\n"
            "\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
    ),
    (
        "no-wallclock",
        "src/repro/harness/fixture.py",
        (
            "from time import perf_counter\n"
            "\n"
            "def elapsed():\n"
            "    return perf_counter()\n"
        ),
    ),
    (
        "deterministic-iteration",
        "src/repro/sim/fixture.py",
        (
            "def spread(items):\n"
            "    seen = set(items)\n"
            "    return [x for x in seen]\n"
        ),
    ),
    (
        "cache-key-purity",
        "src/repro/experiments/fixture.py",
        (
            "import os\n"
            "\n"
            "def mode():\n"
            "    return os.getenv('REPRO_MODE')\n"
        ),
    ),
    (
        "float-eq",
        "src/repro/sim/fixture.py",
        (
            "def halved(a, b):\n"
            "    return a == b / 2\n"
        ),
    ),
    (
        "network-mutation",
        "src/repro/routing/fixture.py",
        (
            "def degrade(network, u, v):\n"
            "    network.graph.remove_edge(u, v)\n"
        ),
    ),
    (
        "network-mutation",
        "src/repro/faults/fixture.py",
        (
            "def throttle(network, u, v):\n"
            "    network.graph[u][v]['mult'] = 0\n"
        ),
    ),
    (
        "mutable-default",
        "src/repro/topology/fixture.py",
        (
            "def extend(items=[]):\n"
            "    return items\n"
        ),
    ),
    (
        "seed-threading",
        "src/repro/experiments/fixture.py",
        (
            "def run_study(scale):\n"
            "    return scale\n"
        ),
    ),
    (
        "seed-threading",
        "src/repro/experiments/fixture.py",
        (
            "def run_study(scale, seed=0):\n"
            "    return scale\n"
        ),
    ),
]

_IDS = [f"{rule}-{i}" for i, (rule, _, _) in enumerate(FIXTURES)]


def _suppress_line(source: str, line: int, rule: str) -> str:
    """Append an inline suppression to ``line`` (1-based) of ``source``."""
    lines = source.splitlines()
    lines[line - 1] += f"  # repro-lint: disable={rule}"
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("rule,path,source", FIXTURES, ids=_IDS)
def test_fixture_fires_exactly_once(rule, path, source):
    findings = lint_source(source, path)
    assert [f.rule for f in findings] == [rule]
    assert findings[0].path == path
    assert rule in findings[0].message or findings[0].message


@pytest.mark.parametrize("rule,path,source", FIXTURES, ids=_IDS)
def test_inline_suppression_silences(rule, path, source):
    findings = lint_source(source, path)
    suppressed = _suppress_line(source, findings[0].line, rule)
    assert lint_source(suppressed, path) == []


@pytest.mark.parametrize("rule,path,source", FIXTURES, ids=_IDS)
def test_file_wide_suppression_silences(rule, path, source):
    suppressed = f"# repro-lint: disable-file={rule}\n" + source
    assert lint_source(suppressed, path) == []


def test_disable_all_wildcard():
    rule, path, source = FIXTURES[0]
    findings = lint_source(source, path)
    suppressed = _suppress_line(source, findings[0].line, "all")
    assert lint_source(suppressed, path) == []


def test_suppression_inside_string_is_inert():
    rule, path, source = FIXTURES[0]
    decoy = source.replace(
        "return random.choice(items)",
        'text = "# repro-lint: disable=no-unseeded-rng"\n'
        "    return random.choice(items)",
    )
    assert [f.rule for f in lint_source(decoy, path)] == [rule]


class TestRuleScoping:
    def test_wallclock_allowlists_harness_clock(self):
        source = "import time\n\ndef now():\n    return time.time()\n"
        assert lint_source(source, "src/repro/harness/clock.py") == []
        assert len(lint_source(source, "src/repro/harness/other.py")) == 1

    def test_wallclock_ignores_tests(self):
        source = "import time\n\ndef now():\n    return time.time()\n"
        assert lint_source(source, "tests/sim/test_fixture.py") == []

    def test_float_eq_scoped_to_sim(self):
        source = "def same(a, b):\n    return a == b / 2\n"
        assert lint_source(source, "src/repro/routing/fixture.py") == []

    def test_seeded_rng_constructors_allowed(self):
        source = (
            "import random\n"
            "import numpy\n"
            "\n"
            "def make(seed):\n"
            "    rng = random.Random(seed)\n"
            "    gen = numpy.random.default_rng(seed)\n"
            "    return rng.choice([1, 2]), gen\n"
        )
        assert lint_source(source, "src/repro/sim/fixture.py") == []

    def test_sorted_set_iteration_allowed(self):
        source = (
            "def spread(items):\n"
            "    seen = set(items)\n"
            "    return [x for x in sorted(seen)]\n"
        )
        assert lint_source(source, "src/repro/sim/fixture.py") == []

    def test_order_free_reduction_over_set_allowed(self):
        source = (
            "def shortest(paths):\n"
            "    pool = set(paths)\n"
            "    return min(len(p) for p in pool)\n"
        )
        assert lint_source(source, "src/repro/sim/fixture.py") == []

    def test_graph_metadata_write_allowed(self):
        source = (
            "def label(network):\n"
            "    network.graph.graph['name'] = 'x'\n"
        )
        assert lint_source(source, "src/repro/routing/fixture.py") == []

    def test_network_primitives_allowed(self):
        source = (
            "def degrade(network, u, v):\n"
            "    network.remove_link(u, v)\n"
            "    network.set_link_capacity_scale(u, v, 0.5)\n"
        )
        assert lint_source(source, "src/repro/routing/fixture.py") == []

    def test_core_network_exempt_from_mutation_rule(self):
        source = (
            "def _install(self, u, v):\n"
            "    self.graph.add_edge(u, v, mult=1)\n"
        )
        assert lint_source(source, "src/repro/core/network.py") == []

    def test_purity_allows_artifact_writes(self):
        source = (
            "def emit(path, text):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(text)\n"
        )
        assert lint_source(source, "src/repro/experiments/fixture.py") == []

    def test_run_entry_point_forwarding_seed_is_clean(self):
        source = (
            "def run_study(scale, seed=0):\n"
            "    return scale, seed\n"
        )
        assert lint_source(source, "src/repro/experiments/fixture.py") == []
