"""cache-key-purity: cached job code may not read ambient state.

The harness caches a job's result under (spec, code-fingerprint) alone.
Any function reachable from an experiment run-callable that reads
``os.environ``, stdin or un-fingerprinted files makes two runs with the
same key produce different results — the cache then serves whichever ran
first, silently.  The rule covers every package the experiment registry
fingerprints into job keys and flags environment reads, ``open()`` in
read mode, ``Path.read_text``/``read_bytes`` and ``input()``.

Writing artifacts is fine (``open(..., "w")`` is not flagged): purity
is about what results *depend on*, not what they emit.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule

#: Packages whose sources are folded into job cache keys (the union of
#: every experiment's fingerprinted dependency list in harness/jobs.py).
_FINGERPRINTED = (
    "core", "sim", "routing", "topology", "traffic",
    "experiments", "faults", "igp", "bgp",
)

_READ_METHODS = frozenset({"read_text", "read_bytes"})


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode of an ``open()`` call, if statically visible."""
    mode_node: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(
        mode_node.value, str
    ):
        return mode_node.value
    return None


@register_rule
class CacheKeyPurity(Rule):
    name = "cache-key-purity"
    summary = (
        "ambient-state reads (os.environ, file reads, stdin) in code "
        "fingerprinted into job cache keys"
    )
    invariant = (
        "a cached result is a pure function of its JobSpec and the "
        "fingerprinted sources — nothing else"
    )

    def applies(self, context: FileContext) -> bool:
        return context.in_package(*_FINGERPRINTED) and not context.is_test

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute):
                if context.resolve(node) == "os.environ":
                    yield self.finding(
                        context, node.lineno, node.col_offset,
                        "os.environ read in cache-fingerprinted code; "
                        "thread the value through the JobSpec instead",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(context, node)

    def _check_call(
        self, context: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        dotted = context.resolve(node.func)
        if dotted in ("os.getenv", "os.environb.get"):
            yield self.finding(
                context, node.lineno, node.col_offset,
                f"'{dotted}' in cache-fingerprinted code; thread the "
                "value through the JobSpec instead",
            )
            return
        if isinstance(node.func, ast.Name):
            if node.func.id == "open" and "open" not in context.imports:
                mode = _open_mode(node)
                if mode is None or not set(mode) & set("wxa"):
                    yield self.finding(
                        context, node.lineno, node.col_offset,
                        "file read in cache-fingerprinted code; file "
                        "contents are not part of the cache key, so "
                        "cached results can go stale silently",
                    )
            elif node.func.id == "input" and "input" not in context.imports:
                yield self.finding(
                    context, node.lineno, node.col_offset,
                    "stdin read in cache-fingerprinted code",
                )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _READ_METHODS
        ):
            yield self.finding(
                context, node.lineno, node.col_offset,
                f".{node.func.attr}() in cache-fingerprinted code; file "
                "contents are not part of the cache key",
            )
