"""Barrier-synchronized phase loop: collective cohorts over flowsim.

The :class:`~repro.sim.flowsim.FlowSimulator` models one open workload:
flows arrive, share, finish.  Training traffic is closed-loop — every
iteration, each job's workers exchange a collective's worth of bytes,
wait for the last flow (the barrier), compute, and go again.  The
:class:`PhaseCohortDriver` turns that loop into a sequence of flowsim
runs:

* each iteration's communication phase is one *flow cohort*: the
  concurrent collective flows of every job still training, all starting
  at local time zero (the barrier resets the clock every phase);
* the cohort runs to completion on a fresh simulator seeded by
  :func:`phase_seed`, so ECMP hash draws differ across phases but every
  phase is independently reproducible — and a single-phase run is
  *bit-for-bit identical* to handing the same flows to a plain
  :class:`FlowSimulator` with the same seed;
* a job's communication time is its last flow's finish time; adding the
  job's fixed computation time yields the iteration time, accumulated
  into a :class:`~repro.sim.results.JobTimeline` per job.

Routing schemes that expose ``observe`` (coarse adaptive routing) get
the cohort's rack-level byte demands before each phase, modeling a
control loop that re-evaluates once per training iteration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.network import Network
from repro.core.seeding import stable_seed
from repro.routing.base import RoutingScheme
from repro.sim.engine import trace as sim_trace
from repro.sim.flowsim import FlowSimulator
from repro.sim.results import (
    CollectiveResults,
    FctResults,
    IterationRecord,
    JobTimeline,
)
from repro.traffic.collectives import (
    JobPlacement,
    collective_flows,
    identity_placement,
    rack_demands_of_flows,
)
from repro.traffic.flows import Flow


def phase_seed(seed: int, iteration: int) -> int:
    """The simulator seed of one phase, derived stably from the run seed.

    Exported so tests (and anyone replaying a single phase) can build a
    plain :class:`FlowSimulator` that reproduces the driver's ECMP hash
    draws exactly.
    """
    return stable_seed("ml-phase", seed, iteration)


class PhaseCohortDriver:
    """Runs placed training jobs through the barrier-synchronized loop."""

    def __init__(
        self,
        network: Network,
        routing: RoutingScheme,
        placements: Sequence[JobPlacement],
        seed: int = 0,
        hop_latency_s: float = 0.0,
        keep_phase_records: bool = False,
    ) -> None:
        if not placements:
            raise ValueError("need at least one placed job")
        if routing.network is not network:
            raise ValueError("routing was built for a different network")
        for placement in placements:
            for server in placement.servers:
                if not 0 <= server < network.num_servers:
                    raise ValueError(
                        f"job {placement.job.name!r} placed on server "
                        f"{server}, outside the network"
                    )
        names = [p.job.name for p in placements]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be distinct, got {names}")
        self.network = network
        self.routing = routing
        self.placements = tuple(placements)
        self.seed = seed
        self.hop_latency_s = hop_latency_s
        self.keep_phase_records = keep_phase_records
        # Collective flows are authored in network server space; the
        # identity placement hands them through the simulator untouched.
        self._placement = identity_placement(network)
        # Flows attribute to jobs by source server, so placements must
        # be disjoint — an overlap would double-book the server's links
        # and make the attribution ambiguous.
        self._job_of_server: Dict[int, int] = {}
        for index, placement in enumerate(self.placements):
            for server in placement.servers:
                owner = self._job_of_server.setdefault(server, index)
                if owner != index:
                    raise ValueError(
                        f"jobs {self.placements[owner].job.name!r} and "
                        f"{placement.job.name!r} share server {server}"
                    )
        #: Per-job last-finish scratch, refilled once per phase.
        self._finish = np.zeros(len(self.placements))
        #: One simulator reused across phases via ``reset(seed)``.
        self._simulator: Optional[FlowSimulator] = None
        #: Instrumentation from the most recent :meth:`run`.
        self.trace = sim_trace.SimTrace()

    # ------------------------------------------------------------------

    def _job_comm_times(self, results: FctResults) -> np.ndarray:
        """Last-flow finish time per job index, in one pass over records.

        Phases run on a local clock starting at zero, so the maximum
        finish time *is* the communication time.  Flows attribute to
        jobs by source server — placements are disjoint (validated at
        construction), so every flow belongs to exactly one job, and a
        single sweep replaces the old per-job rescan of every record.
        """
        finish = self._finish
        finish.fill(0.0)
        job_of_server = self._job_of_server
        for record in results.records:
            index = job_of_server[record.src_server]
            if record.finish_time > finish[index]:
                finish[index] = record.finish_time
        return finish

    # repro-hot -- the phase-cohort iteration loop (one sim per phase)
    def run(self) -> CollectiveResults:
        """Run every job to its final iteration; return all timelines."""
        driver_trace = sim_trace.SimTrace()
        timelines = {
            p.job.name: JobTimeline(job=p.job.name)
            for p in self.placements
        }
        collected = CollectiveResults(
            timelines=[timelines[p.job.name] for p in self.placements]
        )
        total_iterations = max(
            p.job.num_iterations for p in self.placements
        )
        # Hoisted out of the phase loop: a job's collective flows are a
        # pure function of its placement, the active set only shrinks
        # (jobs drop out after their final iteration, order preserved),
        # and one cohort buffer serves every phase.
        phase_flows = [
            collective_flows(p, start_time=0.0) for p in self.placements
        ]
        active = list(range(len(self.placements)))
        cohort: List[Flow] = []
        spans: List[int] = []
        for iteration in range(total_iterations):
            for position in range(len(active) - 1, -1, -1):
                job = self.placements[active[position]].job
                if iteration >= job.num_iterations:
                    del active[position]
            cohort.clear()
            spans.clear()
            for index in active:
                flows = phase_flows[index]
                spans.append(len(flows))
                cohort.extend(flows)
            driver_trace.count("phases")
            driver_trace.count("phase_flows", len(cohort))
            driver_trace.count("job_iterations", len(active))
            results = self._run_phase(cohort, iteration)
            comm_times = (
                self._job_comm_times(results)
                if results is not None
                else None
            )
            for index, span in zip(active, spans):
                job = self.placements[index].job
                comm_time_s = (
                    float(comm_times[index])
                    if comm_times is not None
                    else 0.0
                )
                timelines[job.name].add(
                    IterationRecord(
                        job=job.name,
                        iteration=iteration,
                        comm_time_s=comm_time_s,
                        comp_time_s=job.comp_time_s,
                        num_flows=span,
                    )
                )
            if self.keep_phase_records and results is not None:
                collected.phase_records.append(results)
        self.trace = driver_trace
        collector = sim_trace.current()
        if collector is not None:
            collector.merge(driver_trace)
        return collected

    def _run_phase(
        self, cohort: Sequence[Flow], iteration: int
    ) -> Optional[FctResults]:
        """Simulate one phase-seeded cohort on the reused simulator.

        The driver keeps one :class:`FlowSimulator` and rewinds it with
        :meth:`FlowSimulator.reset` between phases instead of paying
        routing compilation and buffer allocation per phase;
        ``reset(seed)`` is bit-identical to fresh construction, so phase
        results are unchanged.
        """
        if not cohort:
            # Every active job is single-worker: nothing on the wire.
            return None
        observe = getattr(self.routing, "observe", None)
        if observe is not None:
            # repro-perf: allow=deep-hot-dispatch -- optional control-loop probe, one call per phase
            observe(rack_demands_of_flows(cohort, self.network))
        if self._simulator is None:
            self._simulator = FlowSimulator(
                self.network,
                self.routing,
                self._placement,
                seed=phase_seed(self.seed, iteration),
                hop_latency_s=self.hop_latency_s,
            )
        else:
            self._simulator.reset(seed=phase_seed(self.seed, iteration))
        return self._simulator.run(cohort)


def run_collectives(
    network: Network,
    routing: RoutingScheme,
    placements: Sequence[JobPlacement],
    seed: int = 0,
    hop_latency_s: float = 0.0,
    keep_phase_records: bool = False,
) -> CollectiveResults:
    """Convenience wrapper: build the driver and run the full loop."""
    driver = PhaseCohortDriver(
        network,
        routing,
        placements,
        seed=seed,
        hop_latency_s=hop_latency_s,
        keep_phase_records=keep_phase_records,
    )
    return driver.run()
