"""Static concurrency analysis: locksets, lock order, blocking regions.

Three interprocedural rules over the shared concurrency model (see
:mod:`repro.lint.flow.concurrency.model`):

* ``deep-lockset-races``       — Eraser-style lockset race detection
  with ``# repro-guard:`` declared invariants;
* ``deep-lock-order``          — acquisition-order cycles are
  potential deadlocks (Condition.wait re-acquires and file locks
  included);
* ``deep-blocking-under-lock`` — the blocking effect lattice
  (joins-process / waits-network / sleeps / long-polls) propagated
  bottom-up, flagged wherever a lock is held.
"""

from repro.lint.flow.concurrency.blocking import (
    BLOCKING_EFFECTS,
    BlockingAnalysis,
    DeepBlockingUnderLock,
)
from repro.lint.flow.concurrency.model import (
    ConcurrencyFacts,
    ConcurrencyModel,
    concurrency_facts,
)
from repro.lint.flow.concurrency.order import (
    DeepLockOrder,
    LockOrderGraph,
    build_lock_order,
)
from repro.lint.flow.concurrency.races import DeepLocksetRaces

__all__ = [
    "BLOCKING_EFFECTS",
    "BlockingAnalysis",
    "ConcurrencyFacts",
    "ConcurrencyModel",
    "DeepBlockingUnderLock",
    "DeepLockOrder",
    "DeepLocksetRaces",
    "LockOrderGraph",
    "build_lock_order",
    "concurrency_facts",
]
