"""ServiceStore: lock file, index file, byte budget, LRU eviction."""

import json
import os

import pytest

from repro.harness import clock
from repro.harness.cache import ResultCache
from repro.harness.jobs import JobSpec
from repro.service.store import ServiceStore, StoreLock, StoreLockTimeout


def spec_for(value):
    return JobSpec.make("selftest", mode="ok", value=value)


def put_n(store, count, start=0):
    keys = []
    for value in range(start, start + count):
        spec = spec_for(value)
        store.put(spec.key(), spec, {"echo": value}, 0.1)
        keys.append(spec.key())
    return keys


@pytest.fixture
def store(tmp_path):
    return ServiceStore(tmp_path / "store")


class TestStoreLock:
    def test_acquire_creates_release_removes(self, tmp_path):
        lock = StoreLock(tmp_path / "l.lock")
        with lock:
            assert lock.path.exists()
            assert lock.path.read_text() == str(os.getpid())
        assert not lock.path.exists()

    def test_timeout_when_held(self, tmp_path):
        path = tmp_path / "l.lock"
        holder = StoreLock(path, timeout=0.05, stale_after=60.0)
        holder.acquire()
        contender = StoreLock(path, timeout=0.05, stale_after=60.0)
        with pytest.raises(StoreLockTimeout):
            contender.acquire()
        holder.release()

    def test_stale_lock_is_broken(self, tmp_path):
        path = tmp_path / "l.lock"
        path.write_text("99999")
        old = clock.now() - 120.0
        os.utime(path, (old, old))
        lock = StoreLock(path, timeout=0.5, stale_after=30.0)
        lock.acquire()  # must not raise: the stale file was evicted
        assert path.read_text() == str(os.getpid())
        lock.release()

    def test_release_is_idempotent(self, tmp_path):
        lock = StoreLock(tmp_path / "l.lock")
        lock.acquire()
        lock.release()
        lock.release()  # second release is a no-op, not an error


class TestIndex:
    def test_put_writes_index_entry(self, store):
        [key] = put_n(store, 1)
        payload = json.loads(store.index_path.read_text())
        assert payload["version"] == 1
        meta = payload["entries"][key]
        assert meta["experiment"] == "selftest"
        assert meta["bytes"] > 0

    def test_list_entries_sorted_and_complete(self, store):
        keys = put_n(store, 3)
        entries = store.list_entries()
        assert [e["key"] for e in entries] and len(entries) == 3
        assert {e["key"] for e in entries} == set(keys)
        created = [e["created_at"] for e in entries]
        assert created == sorted(created)

    def test_index_rebuilt_after_foreign_write(self, store):
        """A plain ResultCache writing to the same root drifts the
        index; list_entries detects the count mismatch and rebuilds."""
        put_n(store, 2)
        foreign = ResultCache(store.root)
        spec = spec_for(99)
        foreign.put(spec.key(), spec, {"echo": 99}, 0.1)
        entries = store.list_entries()
        assert len(entries) == 3
        assert any(e["key"] == spec.key() for e in entries)
        # and the rebuild recovered full spec metadata, not blanks
        rebuilt = [e for e in entries if e["key"] == spec.key()][0]
        assert rebuilt["experiment"] == "selftest"

    def test_index_rebuilt_after_manual_delete(self, store):
        keys = put_n(store, 3)
        store.path_for(keys[0]).unlink()
        assert {e["key"] for e in store.list_entries()} == set(keys[1:])

    def test_corrupt_index_is_rebuilt(self, store):
        put_n(store, 2)
        store.index_path.write_text("{not json")
        assert len(store.list_entries()) == 2

    def test_clear_resets_index(self, store):
        put_n(store, 2)
        assert store.clear() == 2
        assert store.list_entries() == []

    def test_payload_for(self, store):
        [key] = put_n(store, 1)
        payload = store.payload_for(key)
        assert payload["result"] == {"echo": 0}
        assert store.payload_for("0" * 24) is None


class TestBudget:
    def entry_size(self, tmp_path):
        probe = ServiceStore(tmp_path / "probe")
        [key] = put_n(probe, 1)
        return probe.path_for(key).stat().st_size

    def test_put_evicts_lru_past_budget(self, tmp_path):
        size = self.entry_size(tmp_path)
        store = ServiceStore(tmp_path / "store", max_bytes=2 * size + 2)
        keys = put_n(store, 3)
        assert store.evictions == 1
        assert store.get(keys[0]) is None  # oldest went first
        assert store.get(keys[1]) is not None
        assert store.get(keys[2]) is not None
        assert {e["key"] for e in store.list_entries()} == set(keys[1:])

    def test_hit_refreshes_recency(self, tmp_path):
        """A get() touches the entry, so eviction order follows use, not
        insertion: after touching the oldest, the middle entry goes."""
        size = self.entry_size(tmp_path)
        store = ServiceStore(tmp_path / "store")
        keys = put_n(store, 2)
        # make recency strictly increase even on coarse mtime clocks
        os.utime(store.path_for(keys[0]), (1000.0, 1000.0))
        os.utime(store.path_for(keys[1]), (2000.0, 2000.0))
        assert store.get(keys[0]) is not None  # refreshes keys[0]
        evicted = store.prune(size + 2)
        assert evicted == [keys[1]]
        assert store.get(keys[0]) is not None

    def test_prune_keeps_index_in_step(self, tmp_path):
        size = self.entry_size(tmp_path)
        store = ServiceStore(tmp_path / "store")
        keys = put_n(store, 3)
        evicted = store.prune(size + 2)
        assert len(evicted) == 2
        index = json.loads(store.index_path.read_text())["entries"]
        assert set(index) == set(keys) - set(evicted)

    def test_prune_to_zero_empties_store(self, store):
        put_n(store, 2)
        assert len(store.prune(0)) == 2
        assert len(store) == 0

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ServiceStore(tmp_path / "store", max_bytes=-1)

    def test_unbudgeted_store_never_evicts(self, store):
        put_n(store, 4)
        assert store.evictions == 0 and len(store) == 4


class TestBaseCachePrune:
    """The shared eviction policy on the plain harness cache."""

    def test_total_bytes_tracks_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.total_bytes() == 0
        spec = spec_for(1)
        path = cache.put(spec.key(), spec, {"echo": 1}, 0.1)
        assert cache.total_bytes() == path.stat().st_size

    def test_prune_order_is_mtime_then_key(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = [spec_for(v) for v in range(3)]
        for value, spec in enumerate(specs):
            cache.put(spec.key(), spec, {"echo": value}, 0.1)
            os.utime(cache.path_for(spec.key()), (1000.0, 1000.0))
        evicted = cache.prune(cache.total_bytes() - 1)
        # equal mtimes: ties broken by key, deterministically
        assert evicted == sorted(s.key() for s in specs)[:1]

    def test_entries_report_age_and_last_used(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = spec_for(1)
        cache.put(spec.key(), spec, {"echo": 1}, 0.1)
        [entry] = cache.entries()
        assert entry["age_seconds"] >= 0
        assert entry["last_used"] > 0


class TestConcurrentPutClear:
    """put/clear/rebuild hold the store lock around both the entry
    write and the index update — the regression tests for the torn
    index the lockset rule flagged."""

    def test_interleaved_puts_and_clears_never_tear_the_index(
        self, tmp_path
    ):
        import threading

        store = ServiceStore(tmp_path / "store", lock_timeout=30.0)
        stop = threading.Event()
        errors = []

        def clear_loop():
            try:
                while not stop.is_set():
                    store.clear()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        wiper = threading.Thread(target=clear_loop, daemon=True)
        wiper.start()
        try:
            put_n(store, 30)
        finally:
            stop.set()
            wiper.join(timeout=30.0)
        assert not errors
        # Invariant: every indexed key has its entry file on disk.
        index = store._read_index()
        for key in index:
            assert store.path_for(key).exists(), key

    def test_rebuild_index_under_concurrent_puts_loses_nothing(
        self, tmp_path
    ):
        import threading

        store = ServiceStore(tmp_path / "store", lock_timeout=30.0)
        keys = put_n(store, 5)
        done = threading.Event()

        def writer():
            put_n(store, 5, start=100)
            done.set()

        producer = threading.Thread(target=writer, daemon=True)
        producer.start()
        store.rebuild_index()
        assert done.wait(timeout=30.0)
        producer.join(timeout=30.0)
        index = store._read_index()
        for key in keys:
            assert key in index or not store.path_for(key).exists()
        # A final rebuild sees exactly the files on disk.
        assert set(store.rebuild_index()) == {
            e["key"] for e in store.entries()
        }

    def test_acquire_reports_whether_it_broke_a_stale_lock(
        self, tmp_path
    ):
        path = tmp_path / "l.lock"
        lock = StoreLock(path, timeout=0.5, stale_after=30.0)
        assert lock.acquire() is False
        lock.release()
        path.write_text("99999")
        old = clock.now() - 120.0
        os.utime(path, (old, old))
        assert lock.acquire() is True
        lock.release()

    def test_stale_claim_file_does_not_wedge_breaking(self, tmp_path):
        path = tmp_path / "l.lock"
        path.write_text("99999")
        old = clock.now() - 120.0
        os.utime(path, (old, old))
        claim = tmp_path / "l.lock.break"
        claim.write_text("99999")
        os.utime(claim, (old, old))
        lock = StoreLock(path, timeout=2.0, stale_after=30.0)
        assert lock.acquire() is True  # broke both the claim and the lock
        lock.release()
        assert not claim.exists()
