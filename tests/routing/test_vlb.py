"""Tests for the Valiant load-balancing baseline."""

import random


from repro.routing import EcmpRouting, VlbRouting, path_is_valid


class TestVlb:
    def test_sampled_paths_valid(self, small_dring, rng):
        routing = VlbRouting(small_dring)
        for src, dst in list(small_dring.rack_pairs())[:15]:
            for _ in range(10):
                path = routing.sample_path(src, dst, rng)
                assert path[0] == src and path[-1] == dst
                assert path_is_valid(small_dring, path)

    def test_paths_longer_than_ecmp_on_average(self, small_dring):
        vlb = VlbRouting(small_dring)
        ecmp = EcmpRouting(small_dring)
        rng = random.Random(9)
        pairs = list(small_dring.rack_pairs())[:10]
        vlb_hops = []
        ecmp_hops = []
        for src, dst in pairs:
            for _ in range(30):
                vlb_hops.append(len(vlb.sample_path(src, dst, rng)) - 1)
                ecmp_hops.append(len(ecmp.sample_path(src, dst, rng)) - 1)
        assert sum(vlb_hops) / len(vlb_hops) > sum(ecmp_hops) / len(ecmp_hops)

    def test_fractions_conserve_unit_flow(self, small_dring):
        routing = VlbRouting(small_dring)
        flows = routing.edge_fractions(0, 5)
        out_src = sum(v for (a, _b), v in flows.items() if a == 0)
        into_dst = sum(v for (_a, b), v in flows.items() if b == 5)
        # Every VLB path leaves src at least once and enters dst at least
        # once; detour segments may revisit either, so the totals can
        # exceed one but never fall below it.
        assert out_src >= 1.0 - 1e-9
        assert into_dst >= 1.0 - 1e-9

    def test_spreads_over_more_links_than_ecmp(self, small_dring):
        vlb = VlbRouting(small_dring)
        ecmp = EcmpRouting(small_dring)
        assert len(vlb.edge_fractions(0, 2)) > len(ecmp.edge_fractions(0, 2))

    def test_path_enumeration_deduplicates(self, small_dring):
        routing = VlbRouting(small_dring)
        paths = routing.paths(0, 5)
        assert len(paths) == len(set(paths))
