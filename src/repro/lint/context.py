"""Per-file analysis context shared by every rule.

A :class:`FileContext` bundles the parsed AST, the raw source, a map of
local names to the dotted modules they were imported from, and helpers
that classify where in the repository the file lives (``repro.sim``
versus ``tests`` versus anywhere else).  Rules stay small because the
boilerplate — resolving ``np.random.shuffle`` through ``import numpy as
np``, or deciding whether a path is inside ``repro/sim`` — lives here.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def _flatten_attribute(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def build_import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin, for every import in the file.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.  Imports at
    any nesting level count: the map is a file-wide approximation, which
    is what a per-line lint wants.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else local
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


@dataclass
class FileContext:
    """Everything a rule needs to analyse one file."""

    path: str
    source: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str, path: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            imports=build_import_map(tree),
        )

    # -- location classification ---------------------------------------

    @property
    def parts(self) -> Tuple[str, ...]:
        return pathlib.PurePosixPath(self.path.replace("\\", "/")).parts

    @property
    def repro_subpath(self) -> Tuple[str, ...]:
        """Path parts below the ``repro`` package dir, or ``()``."""
        parts = self.parts
        for index, part in enumerate(parts):
            if part == "repro":
                return parts[index + 1:]
        return ()

    @property
    def is_test(self) -> bool:
        parts = self.parts
        return "tests" in parts or parts[-1].startswith("test_")

    def in_package(self, *subpackages: str) -> bool:
        """True when the file lives under ``repro/<subpackage>/``."""
        sub = self.repro_subpath
        return bool(sub) and sub[0] in subpackages

    def is_repro_file(self, *rel_paths: str) -> bool:
        """True when the file is exactly ``repro/<rel_path>``."""
        sub = "/".join(self.repro_subpath)
        return sub in rel_paths

    # -- name resolution -----------------------------------------------

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a name/attribute chain, or None.

        ``np.random.shuffle`` resolves to ``numpy.random.shuffle`` under
        ``import numpy as np``; a bare ``shuffle`` resolves to
        ``random.shuffle`` under ``from random import shuffle``.
        """
        parts = _flatten_attribute(node)
        if not parts:
            return None
        base = self.imports.get(parts[0])
        if base is None:
            return None
        return ".".join([base] + parts[1:])
