"""Tests for the DRing topology (Section 3.2)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network import NetworkValidationError
from repro.topology import add_supernode, dring, paper_dring, supernode_of
from repro.topology.dring import dring_edges


class TestStructure:
    def test_rack_and_server_counts(self):
        net = dring(6, 3, servers_per_rack=5)
        assert net.num_racks == 18
        assert net.num_servers == 90
        assert net.is_flat()

    def test_every_tor_has_4n_network_links(self):
        n = 3
        net = dring(7, n, servers_per_rack=5)
        for tor in net.switches:
            assert net.network_degree(tor) == 4 * n

    def test_adjacent_supernodes_fully_bipartite(self):
        m, n = 6, 2
        net = dring(m, n, servers_per_rack=4)
        for offset in (1, 2):
            for a in range(n):
                for b in range(n):
                    u = 0 * n + a
                    v = ((0 + offset) % m) * n + b
                    assert net.graph.has_edge(u, v)

    def test_non_adjacent_supernodes_disconnected(self):
        m, n = 8, 2
        net = dring(m, n, servers_per_rack=4)
        # supernode 0 and supernode 4 are not ring-adjacent (offsets 1, 2).
        for a in range(n):
            for b in range(n):
                assert not net.graph.has_edge(a, 4 * n + b)

    def test_all_switches_symmetric_role(self):
        net = dring(6, 2, servers_per_rack=4)
        degrees = {net.network_degree(t) for t in net.switches}
        servers = {net.servers_at(t) for t in net.switches}
        assert len(degrees) == 1
        assert len(servers) == 1

    @given(
        m=st.integers(min_value=5, max_value=12),
        n=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_connected_for_all_shapes(self, m, n):
        net = dring(m, n, servers_per_rack=2)
        assert nx.is_connected(net.graph)

    def test_supernode_of(self):
        assert supernode_of(0, 3) == 0
        assert supernode_of(5, 3) == 1
        assert supernode_of(6, 3) == 2


class TestValidation:
    def test_rejects_small_rings(self):
        with pytest.raises(NetworkValidationError):
            dring_edges(4, 2)

    def test_rejects_zero_tors(self):
        with pytest.raises(NetworkValidationError):
            dring_edges(6, 0)

    def test_requires_exactly_one_server_spec(self):
        with pytest.raises(ValueError):
            dring(6, 2)
        with pytest.raises(ValueError):
            dring(6, 2, servers_per_rack=4, total_servers=48)

    def test_total_servers_spread_evenly(self):
        net = dring(6, 2, total_servers=50)
        counts = [net.servers_at(t) for t in net.racks]
        assert sum(counts) == 50
        assert max(counts) - min(counts) <= 1

    def test_rejects_too_few_servers(self):
        with pytest.raises(NetworkValidationError):
            dring(6, 2, total_servers=5)


class TestExpansion:
    def test_add_supernode_grows_ring(self):
        net = dring(6, 2, servers_per_rack=4)
        grown = add_supernode(net)
        assert grown.num_racks == 14
        assert grown.num_servers == net.num_servers + 2 * 4
        assert nx.is_connected(grown.graph)

    def test_add_supernode_requires_dring(self, small_leafspine):
        with pytest.raises(ValueError):
            add_supernode(small_leafspine)


class TestPaperInstance:
    def test_paper_dring_matches_stated_counts(self):
        net = paper_dring()
        assert net.num_racks == 80
        assert net.num_servers == 2988
        assert net.is_flat()
