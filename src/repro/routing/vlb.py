"""Valiant load balancing (VLB): the oblivious worst-case baseline.

Kassing et al. [15] showed expanders beat fat-trees for skewed traffic
using an ECMP/VLB hybrid.  Pure VLB routes every flow through a uniformly
random intermediate switch (shortest path to it, then shortest path on),
doubling path length in exchange for spreading any traffic matrix
uniformly.  We include it for the adaptive-routing discussion of
Section 7 and the ablation benchmarks.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.network import Network
from repro.routing.base import EdgeFractions, Path, RoutingScheme
from repro.routing.ecmp import EcmpRouting


class VlbRouting(RoutingScheme):
    """Two-phase Valiant routing over ECMP segments."""

    name = "vlb"

    def __init__(self, network: Network) -> None:
        super().__init__(network)
        self._ecmp = EcmpRouting(network)
        self._intermediates = list(network.switches)

    def _segments(self, src: int, dst: int, via: int) -> Path:
        """Concatenate shortest segments src→via→dst (degenerate cases ok)."""
        if via == src or via == dst:
            return self._ecmp.paths(src, dst)[0]
        first = self._ecmp.paths(src, via)[0]
        second = self._ecmp.paths(via, dst)[0]
        return first + second[1:]

    def _compute_paths(self, src: int, dst: int) -> List[Path]:
        """One representative path per intermediate (may repeat switches).

        VLB paths are generally not simple; the flow simulator only needs
        the link sequence, so repeats are allowed here.
        """
        seen = set()
        paths: List[Path] = []
        for via in self._intermediates:
            path = self._segments(src, dst, via)
            if path not in seen:
                seen.add(path)
                paths.append(path)
        return paths

    def sample_path(self, src: int, dst: int, rng: random.Random) -> Path:
        self._check_pair(src, dst)
        via = rng.choice(self._intermediates)
        if via == src or via == dst:
            return self._ecmp.sample_path(src, dst, rng)
        first = self._ecmp.sample_path(src, via, rng)
        second = self._ecmp.sample_path(via, dst, rng)
        return first + second[1:]

    def _compute_edge_fractions(self, src: int, dst: int) -> EdgeFractions:
        """Average the two ECMP segments over all intermediates."""
        total: Dict[Tuple[int, int], float] = {}
        weight = 1.0 / len(self._intermediates)
        for via in self._intermediates:
            if via == src or via == dst:
                parts = [self._ecmp.edge_fractions(src, dst)]
            else:
                parts = [
                    self._ecmp.edge_fractions(src, via),
                    self._ecmp.edge_fractions(via, dst),
                ]
            for fractions in parts:
                for edge, amount in fractions.items():
                    total[edge] = total.get(edge, 0.0) + weight * amount
        return total
