"""Tests for the barrier-synchronized phase-cohort driver."""

from __future__ import annotations

import json

import pytest

from repro.routing import CoarseAdaptiveRouting, EcmpRouting
from repro.sim import (
    CollectiveResults,
    FlowSimulator,
    PhaseCohortDriver,
    phase_seed,
    run_collectives,
)
from repro.sim.engine import trace as sim_trace
from repro.traffic import (
    TrainingJob,
    collective_flows,
    identity_placement,
    place_jobs,
)


def placed_jobs(network, policy="striped", seed=0, iterations=1):
    jobs = [
        TrainingJob(
            "ring", 6, 1e6, 1e-3,
            num_layers=2, num_iterations=iterations,
        ),
        TrainingJob(
            "moe", 5, 5e5, 5e-4,
            num_iterations=iterations, collective="all-to-all",
        ),
    ]
    return place_jobs(jobs, network, policy, seed=seed)


class TestSinglePhaseParity:
    def test_bit_for_bit_vs_plain_flowsim(self, small_leafspine):
        """One job, one iteration: driver records == plain flowsim."""
        placements = place_jobs(
            [TrainingJob("solo", 6, 1e6, 1e-3, num_layers=2)],
            small_leafspine, "striped", seed=3,
        )
        routing = EcmpRouting(small_leafspine)
        driver = PhaseCohortDriver(
            small_leafspine, routing, placements,
            seed=11, keep_phase_records=True,
        )
        collected = driver.run()
        plain = FlowSimulator(
            small_leafspine, routing, identity_placement(small_leafspine),
            seed=phase_seed(11, 0),
        ).run(collective_flows(placements[0], start_time=0.0))
        assert len(collected.phase_records) == 1
        assert collected.phase_records[0].records == plain.records

    def test_phase_seeds_differ_across_iterations(self):
        assert phase_seed(0, 0) != phase_seed(0, 1)
        assert phase_seed(0, 1) == phase_seed(0, 1)


class TestDriver:
    def test_timelines_cover_every_iteration(self, small_leafspine):
        placements = placed_jobs(small_leafspine, iterations=3)
        routing = EcmpRouting(small_leafspine)
        collected = run_collectives(
            small_leafspine, routing, placements, seed=0
        )
        for placement in placements:
            timeline = collected.timeline(placement.job.name)
            assert timeline.num_iterations == 3
            for record in timeline.records:
                assert record.comm_time_s > 0.0
                assert record.iteration_time_s == pytest.approx(
                    record.comm_time_s + record.comp_time_s
                )

    def test_jobs_retire_at_their_own_iteration_count(
        self, small_leafspine
    ):
        jobs = [
            TrainingJob("long", 4, 1e6, 1e-3, num_iterations=3),
            TrainingJob("short", 4, 1e6, 1e-3, num_iterations=1),
        ]
        placements = place_jobs(jobs, small_leafspine, "striped")
        collected = run_collectives(
            small_leafspine, EcmpRouting(small_leafspine), placements
        )
        assert collected.timeline("long").num_iterations == 3
        assert collected.timeline("short").num_iterations == 1

    def test_deterministic_across_runs(self, small_leafspine):
        placements = placed_jobs(small_leafspine, iterations=2)
        routing = EcmpRouting(small_leafspine)
        a = run_collectives(small_leafspine, routing, placements, seed=4)
        b = run_collectives(small_leafspine, routing, placements, seed=4)
        assert a.to_json_dict() == b.to_json_dict()

    def test_single_worker_job_has_zero_comm(self, small_leafspine):
        placements = place_jobs(
            [TrainingJob("solo", 1, 1e6, 2e-3)], small_leafspine
        )
        collected = run_collectives(
            small_leafspine, EcmpRouting(small_leafspine), placements
        )
        (record,) = collected.timeline("solo").records
        assert record.comm_time_s == 0.0
        assert record.iteration_time_s == pytest.approx(2e-3)

    def test_trace_counters(self, small_leafspine):
        placements = placed_jobs(small_leafspine, iterations=2)
        routing = EcmpRouting(small_leafspine)
        driver = PhaseCohortDriver(
            small_leafspine, routing, placements, seed=0
        )
        with sim_trace.collecting() as collector:
            driver.run()
        assert driver.trace.counters["phases"] == 2
        assert driver.trace.counters["job_iterations"] == 4
        assert driver.trace.counters["phase_flows"] > 0
        # driver trace merges into the ambient collector
        assert collector.counters["phases"] == 2

    def test_adaptive_routing_observes_each_phase(self, small_leafspine):
        placements = placed_jobs(small_leafspine, iterations=2)
        routing = CoarseAdaptiveRouting(small_leafspine, k=2)
        observed = []
        original = routing.observe

        def spy(demands):
            observed.append(dict(demands))
            return original(demands)

        routing.observe = spy  # type: ignore[method-assign]
        run_collectives(small_leafspine, routing, placements, seed=0)
        assert len(observed) == 2
        assert all(demands for demands in observed)

    def test_validation(self, small_leafspine, small_dring):
        routing = EcmpRouting(small_leafspine)
        with pytest.raises(ValueError, match="at least one"):
            PhaseCohortDriver(small_leafspine, routing, [])
        with pytest.raises(ValueError, match="different network"):
            PhaseCohortDriver(
                small_dring, routing,
                placed_jobs(small_dring),
            )


class TestCollectiveResults:
    def collected(self, network):
        return run_collectives(
            network, EcmpRouting(network),
            placed_jobs(network, iterations=2), seed=1,
        )

    def test_headline_metrics(self, small_leafspine):
        collected = self.collected(small_leafspine)
        mean = collected.iteration_time_s()
        straggler = collected.max_iteration_time_s()
        assert 0.0 < mean <= straggler

    def test_json_round_trip_exact(self, small_leafspine):
        collected = self.collected(small_leafspine)
        data = json.loads(json.dumps(collected.to_json_dict()))
        again = CollectiveResults.from_json_dict(data)
        assert again.to_json_dict() == collected.to_json_dict()
        assert again.iteration_time_s() == collected.iteration_time_s()

    def test_unknown_timeline_rejected(self, small_leafspine):
        collected = self.collected(small_leafspine)
        with pytest.raises(KeyError):
            collected.timeline("nope")
