"""Ablations over the design choices the paper calls out.

* **K sweep** (Section 4: "K = 2 offers a good tradeoff"): run
  Shortest-Union(K) for K = 1..4 on uniform and rack-to-rack traffic and
  report median/p99 FCT.  K = 1 degenerates to plain shortest paths.
* **DRing shape** (Section 3.2): at a fixed rack budget, trade supernode
  count m against supernode width n and compare FCT and path diversity.
* **Failures** (Section 7's open question): fail random links, report
  BGP reconvergence rounds and the drop in SU(2) path diversity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.bgp import reconvergence_after_failure
from repro.core.network import Network
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim.flowsim import simulate_fct
from repro.topology import dring
from repro.traffic import (
    CanonicalCluster,
    Placement,
    generate_flows,
    rack_to_rack,
    uniform,
)


@dataclass(frozen=True)
class KSweepPoint:
    k: int
    pattern: str
    median_ms: float
    p99_ms: float
    mean_paths: float


def run_k_sweep(
    network: Network,
    cluster: CanonicalCluster,
    ks: Tuple[int, ...] = (1, 2, 3),
    num_flows: int = 800,
    window: float = 0.03,
    seed: int = 0,
) -> List[KSweepPoint]:
    """FCT of SU(K) for each K on uniform and R2R traffic."""
    placement = Placement(cluster, network)
    patterns = {
        "uniform": uniform(cluster),
        "r2r": rack_to_rack(cluster),
    }
    points: List[KSweepPoint] = []
    for k in ks:
        routing = ShortestUnionRouting(network, k)
        sample_pairs = list(network.rack_pairs())[:50]
        mean_paths = sum(
            routing.path_count(a, b) for a, b in sample_pairs
        ) / len(sample_pairs)
        for label, tm in patterns.items():
            flows = generate_flows(
                tm, num_flows, window, seed=seed, size_cap=10e6
            )
            results = simulate_fct(network, routing, placement, flows, seed=seed)
            points.append(
                KSweepPoint(
                    k=k,
                    pattern=label,
                    median_ms=results.median_fct_ms(),
                    p99_ms=results.p99_fct_ms(),
                    mean_paths=mean_paths,
                )
            )
    return points


@dataclass(frozen=True)
class ShapePoint:
    m: int
    n: int
    racks: int
    network_degree: int
    diameter: int
    p99_ms: float


def run_dring_shape_sweep(
    shapes: Tuple[Tuple[int, int], ...] = ((12, 2), (8, 3), (6, 4)),
    servers_per_rack: int = 6,
    num_flows: int = 800,
    window: float = 0.03,
    seed: int = 0,
) -> List[ShapePoint]:
    """Trade m against n at a fixed rack budget (m * n constant)."""
    points: List[ShapePoint] = []
    for m, n in shapes:
        network = dring(m, n, servers_per_rack=servers_per_rack)
        cluster = CanonicalCluster(m * n, servers_per_rack)
        tm = uniform(cluster)
        flows = generate_flows(tm, num_flows, window, seed=seed, size_cap=10e6)
        results = simulate_fct(
            network,
            ShortestUnionRouting(network, 2),
            Placement(cluster, network),
            flows,
            seed=seed,
        )
        points.append(
            ShapePoint(
                m=m,
                n=n,
                racks=m * n,
                network_degree=4 * n,
                diameter=nx.diameter(network.graph),
                p99_ms=results.p99_fct_ms(),
            )
        )
    return points


@dataclass(frozen=True)
class HeterogeneousPoint:
    """Skewed-tail comparison at one uplink speed multiplier."""

    uplink_mult: int
    leafspine_p99_ms: float
    flat_p99_ms: float

    @property
    def flat_gain(self) -> float:
        return self.leafspine_p99_ms / self.flat_p99_ms


def run_heterogeneous_study(
    configs: Tuple[Tuple[int, int, int], ...] = (
        (12, 4, 1),   # homogeneous 10G everywhere
        (24, 4, 2),   # 20G uplinks
        (24, 2, 4),   # 40G uplinks
    ),
    num_flows: int = 1200,
    seed: int = 0,
) -> List[HeterogeneousPoint]:
    """Section 5.1's deferred case: faster uplinks, same conclusion?

    Each ``(x, y, uplink_mult)`` configuration keeps the paper's 3:1
    oversubscription (``x / (y * mult) = 3``) while varying the uplink
    speed class; the flat rebuild of each fabric should keep winning the
    skewed workload, because the UDF algebra only depends on the
    capacity ratio — "we expect similar results" made concrete.  (Note
    that *uncontrolled* heterogeneity behaves differently: faster
    uplinks at fixed port counts lower the oversubscription itself, and
    with nothing to mask the flat gain disappears — see the tests.)
    """
    from repro.topology import flatten, leaf_spine
    from repro.traffic import (
        fb_skewed,
        spine_utilization_load,
        window_for_budget,
    )

    points: List[HeterogeneousPoint] = []
    for leaf_x, leaf_y, mult in configs:
        baseline = leaf_spine(leaf_x, leaf_y, uplink_mult=mult)
        # Heterogeneous equipment needs radix-proportional server
        # spreading; even spreading turns the fat ex-spines into hubs
        # (NSR range 0.4-3.5 instead of ~uniform) and loses the gain.
        flat = flatten(
            baseline,
            seed=seed,
            name=f"flat-x{mult}",
            spreading="proportional" if mult > 1 else "even",
        )
        cluster = CanonicalCluster(leaf_x + leaf_y, leaf_x)
        tm = fb_skewed(cluster, seed=seed)
        load = spine_utilization_load(baseline, tm)
        window, count = window_for_budget(
            load.offered_gbps, num_flows, 0.04, size_cap=10e6
        )
        flows = generate_flows(tm, count, window, seed=seed, size_cap=10e6)
        ls_res = simulate_fct(
            baseline,
            EcmpRouting(baseline),
            Placement(cluster, baseline),
            flows,
            seed=seed,
        )
        flat_res = simulate_fct(
            flat,
            ShortestUnionRouting(flat, 2),
            Placement(cluster, flat),
            flows,
            seed=seed,
        )
        points.append(
            HeterogeneousPoint(
                uplink_mult=mult,
                leafspine_p99_ms=ls_res.p99_fct_ms(),
                flat_p99_ms=flat_res.p99_fct_ms(),
            )
        )
    return points


@dataclass(frozen=True)
class SchemeZooPoint:
    """FCT of one routing scheme on one pattern (the full baseline zoo)."""

    scheme: str
    pattern: str
    median_ms: float
    p99_ms: float
    mean_hops: float


def run_scheme_zoo(
    network: Network,
    cluster: CanonicalCluster,
    num_flows: int = 600,
    window: float = 0.004,
    seed: int = 0,
) -> List[SchemeZooPoint]:
    """All four oblivious schemes side by side (Section 2's landscape).

    ECMP and Shortest-Union(2) are the paper's deployable schemes;
    k-shortest-paths is the Jellyfish/MPTCP baseline and VLB the
    worst-case-oblivious baseline — both impractical on standard
    hardware, included to position the paper's scheme.
    """
    from repro.routing import KShortestPathsRouting, VlbRouting

    placement = Placement(cluster, network)
    schemes = [
        EcmpRouting(network),
        ShortestUnionRouting(network, 2),
        KShortestPathsRouting(network, k=4),
        VlbRouting(network),
    ]
    patterns = {
        "uniform": uniform(cluster),
        "r2r": rack_to_rack(cluster, 0, min(2, cluster.num_racks - 1)),
    }
    points: List[SchemeZooPoint] = []
    for label, tm in patterns.items():
        flows = generate_flows(tm, num_flows, window, seed=seed, size_cap=10e6)
        for scheme in schemes:
            results = simulate_fct(
                network, scheme, placement, flows, seed=seed
            )
            points.append(
                SchemeZooPoint(
                    scheme=scheme.name,
                    pattern=label,
                    median_ms=results.median_fct_ms(),
                    p99_ms=results.p99_fct_ms(),
                    mean_hops=results.mean_path_hops(),
                )
            )
    return points


@dataclass(frozen=True)
class AdaptivePoint:
    """FCT of adaptive routing vs both static schemes on one pattern."""

    pattern: str
    chosen_mode: str
    adaptive_p99_ms: float
    ecmp_p99_ms: float
    su2_p99_ms: float

    @property
    def regret(self) -> float:
        """Adaptive p99 relative to the better static scheme (1.0 = matched)."""
        return self.adaptive_p99_ms / min(self.ecmp_p99_ms, self.su2_p99_ms)


def run_adaptive_study(
    network: Network,
    cluster: CanonicalCluster,
    num_flows: int = 800,
    window: float = 0.004,
    seed: int = 0,
) -> List[AdaptivePoint]:
    """Section 7's coarse adaptive routing vs the static schemes.

    For each pattern the adaptive scheme observes the rack-level demand
    snapshot (what a coarse telemetry pipeline would report), installs a
    mode, and then runs the same flow workload as the static schemes.
    """
    from repro.routing.adaptive import CoarseAdaptiveRouting
    from repro.traffic.matrix import TrafficMatrix

    placement = Placement(cluster, network)
    # R2R between racks 0 and 2: directly connected on a DRing (ring
    # offset 2), the case where the mode choice actually matters.
    patterns: Dict[str, TrafficMatrix] = {
        "uniform": uniform(cluster),
        "r2r": rack_to_rack(cluster, 0, min(2, cluster.num_racks - 1)),
    }
    ecmp = EcmpRouting(network)
    su2 = ShortestUnionRouting(network, 2)
    adaptive = CoarseAdaptiveRouting(network)

    points: List[AdaptivePoint] = []
    for label, tm in patterns.items():
        demands = placement.rack_demands(tm)
        adaptive.observe(demands)
        flows = generate_flows(tm, num_flows, window, seed=seed, size_cap=10e6)
        results = {
            scheme.name: simulate_fct(
                network, scheme, placement, flows, seed=seed
            )
            for scheme in (adaptive, ecmp, su2)
        }
        points.append(
            AdaptivePoint(
                pattern=label,
                chosen_mode=adaptive.active.name,
                adaptive_p99_ms=results[adaptive.name].p99_fct_ms(),
                ecmp_p99_ms=results["ecmp"].p99_fct_ms(),
                su2_p99_ms=results["su(2)"].p99_fct_ms(),
            )
        )
    return points


@dataclass(frozen=True)
class FailureReport:
    failed_links: int
    reconvergence_rounds: int
    min_su2_paths_before: int
    min_su2_paths_after: int
    still_connected: bool


@dataclass(frozen=True)
class FailureSweepPoint:
    """Performance degradation at one failure count."""

    failed_links: int
    still_connected: bool
    p99_ms: float
    min_su2_paths: int


def run_failure_sweep(
    network: Network,
    cluster: CanonicalCluster,
    failure_counts: Tuple[int, ...] = (0, 1, 2, 4),
    num_flows: int = 600,
    window: float = 0.004,
    seed: int = 0,
) -> List[FailureSweepPoint]:
    """Tail FCT and path diversity as links fail (Section 7's question).

    The same uniform workload runs on progressively more degraded copies
    of the fabric; SU(2) re-enumerates its paths on each degraded copy,
    modelling the post-reconvergence steady state.
    """
    rng = random.Random(seed)
    links = [(u, v) for u, v, _m in network.undirected_links()]
    if max(failure_counts) >= len(links):
        raise ValueError("cannot fail that many links")
    failed_order = rng.sample(links, max(failure_counts))
    flows = generate_flows(
        uniform(cluster), num_flows, window, seed=seed, size_cap=10e6
    )
    sample_pairs = list(network.rack_pairs())[:40]
    points: List[FailureSweepPoint] = []
    for count in failure_counts:
        degraded = network.copy(name=f"{network.name}-f{count}")
        for u, v in failed_order[:count]:
            degraded.remove_link(u, v, count=degraded.link_mult(u, v))
        if not nx.is_connected(degraded.graph):
            points.append(FailureSweepPoint(count, False, float("inf"), 0))
            continue
        routing = ShortestUnionRouting(degraded, 2)
        results = simulate_fct(
            degraded, routing, Placement(cluster, degraded), flows, seed=seed
        )
        min_paths = min(
            routing.path_count(a, b) for a, b in sample_pairs
        )
        points.append(
            FailureSweepPoint(
                failed_links=count,
                still_connected=True,
                p99_ms=results.p99_fct_ms(),
                min_su2_paths=min_paths,
            )
        )
    return points


def run_failure_study(
    network: Network, num_failures: int = 1, seed: int = 0
) -> FailureReport:
    """Fail random network links; measure reconvergence and path loss."""
    rng = random.Random(seed)
    links = [(u, v) for u, v, _m in network.undirected_links()]
    if num_failures >= len(links):
        raise ValueError("cannot fail every link")
    failed = rng.sample(links, num_failures)

    routing_before = ShortestUnionRouting(network, 2)
    sample_pairs = list(network.rack_pairs())[:40]
    before = min(
        routing_before.path_count(a, b) for a, b in sample_pairs
    )

    degraded = network.copy(name=f"{network.name}-degraded")
    for u, v in failed:
        degraded.remove_link(u, v, count=degraded.link_mult(u, v))
    connected = nx.is_connected(degraded.graph)
    if not connected:
        return FailureReport(num_failures, -1, before, 0, False)

    report = reconvergence_after_failure(network, 2, failed[0])
    routing_after = ShortestUnionRouting(degraded, 2)
    after = min(routing_after.path_count(a, b) for a, b in sample_pairs)
    return FailureReport(
        failed_links=num_failures,
        reconvergence_rounds=report.rounds,
        min_su2_paths_before=before,
        min_su2_paths_after=after,
        still_connected=True,
    )
