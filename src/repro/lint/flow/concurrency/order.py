"""``deep-lock-order``: lock-acquisition-order cycles are deadlocks.

The region walk records every acquisition together with the locks
already held on that path — ``with``-statements, explicit ``acquire()``
calls, ``Condition.wait`` re-acquires, and the file-based
:class:`~repro.service.store.StoreLock` (any in-program class defining
``acquire``/``release``) all count.  Each (held, acquired) pair becomes
an edge in the lock-order graph; a cycle means two paths acquire the
same locks in opposite orders and can deadlock under the right
interleaving.  Re-acquiring a non-reentrant lock already held on the
same path is reported too: that deadlocks without needing a second
thread.

:func:`build_lock_order` is exposed on its own so the meta-test can pin
the service layer's lock-order graph as a golden value — growing a new
edge there is a design change that should be reviewed, not discovered
in production.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.concurrency.model import (
    LockAcquisition,
    concurrency_facts,
)
from repro.lint.flow.registry import FlowRule, register_flow_rule


@dataclass
class LockOrderGraph:
    """Acquisition-order edges between lock identities."""

    #: Every discovered lock, acquired anywhere or not.
    nodes: Set[str] = field(default_factory=set)
    #: (held, then-acquired) -> first acquisition site witnessing it.
    edges: Dict[Tuple[str, str], LockAcquisition] = field(
        default_factory=dict
    )
    #: Same-path re-acquisitions of non-reentrant locks.
    self_reacquires: List[LockAcquisition] = field(default_factory=list)

    def edge_list(self) -> List[Tuple[str, str]]:
        return sorted(self.edges)

    def cycles(self) -> List[List[str]]:
        """Elementary cycles, canonicalized (rotated to the min node)."""
        adjacency: Dict[str, List[str]] = {}
        for src, dst in self.edges:
            adjacency.setdefault(src, []).append(dst)
        for dsts in adjacency.values():
            dsts.sort()
        found: Set[Tuple[str, ...]] = set()
        cycles: List[List[str]] = []
        for start in sorted(adjacency):
            stack: List[Tuple[str, List[str]]] = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for nxt in adjacency.get(node, []):
                    if nxt == start:
                        key = _canonical(path)
                        if key not in found:
                            found.add(key)
                            cycles.append(list(key))
                    elif nxt not in path and len(path) < 8:
                        stack.append((nxt, path + [nxt]))
        return sorted(cycles)


def _canonical(path: List[str]) -> Tuple[str, ...]:
    pivot = path.index(min(path))
    return tuple(path[pivot:] + path[:pivot])


def build_lock_order(graph: CallGraph) -> LockOrderGraph:
    """The acquisition-order graph for one program."""
    facts = concurrency_facts(graph)
    order = LockOrderGraph(nodes=set(facts.model.locks))
    for acq in facts.whole.acquisitions:
        if acq.lock_id in acq.held_before:
            info = facts.model.locks.get(acq.lock_id)
            if (
                info is not None
                and not info.reentrant
                and acq.via != "wait-reacquire"
            ):
                order.self_reacquires.append(acq)
            continue
        for prior in sorted(acq.held_before):
            order.edges.setdefault((prior, acq.lock_id), acq)
    return order


@register_flow_rule
class DeepLockOrder(FlowRule):
    name = "deep-lock-order"
    engine = "concurrency"
    summary = (
        "cycles in the interprocedural lock-acquisition-order graph "
        "(potential deadlocks), and same-path re-acquisition of "
        "non-reentrant locks"
    )
    invariant = (
        "all paths acquire locks in one global order; the acquisition "
        "graph (with Condition.wait re-acquires and file locks as "
        "nodes) stays acyclic"
    )

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        facts = concurrency_facts(graph)
        order = build_lock_order(graph)
        findings: List[Finding] = []
        for acq in order.self_reacquires:
            label = facts.model.label(acq.lock_id)
            findings.append(self.finding(
                acq.path, acq.line, acq.column,
                f"{_short(acq.func)} re-acquires non-reentrant lock "
                f"{label} already held on this path — this deadlocks "
                "on a single thread (use an RLock, or split the "
                "locked region)",
            ))
        for cycle in order.cycles():
            labels = [facts.model.label(lock) for lock in cycle]
            rendered = " -> ".join(labels + [labels[0]])
            witness = order.edges[(cycle[0], cycle[1 % len(cycle)])]
            sites = "; ".join(
                f"{facts.model.label(src)} then "
                f"{facts.model.label(dst)} at "
                f"{_file(order.edges[(src, dst)].path)}:"
                f"{order.edges[(src, dst)].line}"
                for src, dst in _cycle_edges(cycle)
            )
            findings.append(self.finding(
                witness.path, witness.line, witness.column,
                f"lock-order cycle {rendered}: two paths acquire these "
                f"locks in opposite orders ({sites}) — a potential "
                "deadlock; pick one global order",
            ))
        return sorted(set(findings))


def _cycle_edges(cycle: List[str]) -> List[Tuple[str, str]]:
    return [
        (cycle[i], cycle[(i + 1) % len(cycle)])
        for i in range(len(cycle))
    ]


def _short(qname: str) -> str:
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qname


def _file(path: str) -> str:
    return path.rsplit("/", 1)[-1]
