"""Engine acceptance benchmarks, two tiers.

**Medium tier** (always on): one Figure 4 grid cell (A2A on the DRing
under SU(2) at the MEDIUM scale, seed 0) through the compiled engine and
through the verbatim seed implementation kept in
``tests/sim/legacy_reference.py``.  Both produce bit-identical results
(asserted here too — a fast wrong answer is not a speedup); the engine
must finish the cell at least 3x faster.

**Large tier** (``REPRO_LARGE_BENCH=1``): the round-2 warm-start engine
against the round-1 engine frozen in ``tests/sim/engine_r1_reference.py``
on a 512-rack / 100k-flow fig4 cell.  Gates: bit-identical FlowRecords,
a >= 10x reduction in allocator link work (the warm-start layer's own
counters: links actually re-solved vs the link space a cold solve sweeps),
warm coverage of at least 90% of solves, no wall-clock regression, and a
tracemalloc peak-memory budget.  Wall clock on this cell is dominated by
the per-event loop floor both engines share, so the honest single-core
speedup is modest; the artifact records it alongside the work ratio.

Timings and counters for both tiers are saved as artifacts.
"""

import importlib.util
import os
import pathlib
import sys
import time
import tracemalloc

import pytest

from conftest import save_artifact
from repro.experiments import MEDIUM
from repro.experiments.fig4_fct import _pattern_flows, fig4_patterns
from repro.experiments.runner import Scale, build_scheme
from repro.sim import FlowSimulator

_TESTS_SIM = pathlib.Path(__file__).parent.parent / "tests" / "sim"
_LEGACY_PATH = _TESTS_SIM / "legacy_reference.py"
_R1_PATH = _TESTS_SIM / "engine_r1_reference.py"

REQUIRED_SPEEDUP = 3.0
ROUNDS = 3

#: Large-tier gates (see module docstring).
LARGE_REQUIRED_WORK_REDUCTION = 10.0
LARGE_REQUIRED_WARM_COVERAGE = 0.90
LARGE_REQUIRED_SPEEDUP = 1.0
LARGE_MEMORY_BUDGET_MB = 640.0

#: The 512-rack / 100k-flow cell: DRing(32, 16) with 3072 servers, the
#: A2A pattern at 30% spine utilization, sized by ``window_for_budget``.
LARGE = Scale(
    name="large-512",
    leaf_x=32,
    leaf_y=1,
    dring_m=32,
    dring_n=16,
    dring_servers=3072,
    max_flows=100_000,
    window_seconds=10.0,
    size_cap_bytes=10e6,
)


def _load_reference(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves string annotations through sys.modules, so
    # the module must be registered before its body executes.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def _load_legacy():
    return _load_reference(_LEGACY_PATH)


def _fig4_cell_inputs():
    pattern = {p.label: p for p in fig4_patterns(MEDIUM, seed=0)}["A2A"]
    tut = build_scheme("DRing (su2)", MEDIUM, seed=0)
    flows = _pattern_flows(MEDIUM, pattern, 0, 0.30)
    placement = tut.placement(shuffle=pattern.random_placement, seed=0)
    return tut, placement, flows


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_engine_3x_over_legacy(benchmark):
    legacy = _load_legacy()
    tut, placement, flows = _fig4_cell_inputs()

    engine_results = {}
    legacy_results = {}

    def run_engine():
        sim = FlowSimulator(tut.network, tut.routing, placement, seed=0)
        engine_results["fct"] = sim.run(flows)

    def run_legacy():
        sim = legacy.LegacyFlowSimulator(
            tut.network, tut.routing, placement, seed=0
        )
        legacy_results["fct"] = sim.run(flows)

    run_engine()  # warm the compiled routing cache once
    engine_seconds = _best_of(run_engine)
    legacy_seconds = _best_of(run_legacy)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Identical physics first: same records, same order, same floats.
    got, want = engine_results["fct"], legacy_results["fct"]
    assert got.num_flows == want.num_flows
    for a, b in zip(got.records, want.records):
        assert (a.src_server, a.dst_server, a.size_bytes) == (
            b.src_server, b.dst_server, b.size_bytes
        )
        assert a.start_time == b.start_time
        assert a.finish_time == b.finish_time
        assert a.path == b.path

    speedup = legacy_seconds / engine_seconds
    save_artifact(
        "sim_engine_speedup.txt",
        "\n".join(
            [
                "fig4 cell A2A / DRing (su2) / medium / seed 0 "
                f"({got.num_flows} flows):",
                f"  legacy simulator: {legacy_seconds * 1000:.1f} ms",
                f"  engine simulator: {engine_seconds * 1000:.1f} ms",
                f"  speedup: {speedup:.1f}x (required >= "
                f"{REQUIRED_SPEEDUP:.0f}x)",
            ]
        ),
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"engine only {speedup:.2f}x over legacy "
        f"({engine_seconds:.3f}s vs {legacy_seconds:.3f}s)"
    )


def _assert_identical(got, want):
    assert got.num_flows == want.num_flows
    for a, b in zip(got.records, want.records):
        assert (a.src_server, a.dst_server, a.size_bytes) == (
            b.src_server, b.dst_server, b.size_bytes
        )
        assert a.start_time == b.start_time
        assert a.finish_time == b.finish_time
        assert a.path == b.path


@pytest.mark.skipif(
    os.environ.get("REPRO_LARGE_BENCH", "") in ("", "0"),
    reason="large tier runs only with REPRO_LARGE_BENCH=1 (several minutes)",
)
def test_bench_large_cell_warm_engine(benchmark):
    r1 = _load_reference(_R1_PATH)
    pattern = {p.label: p for p in fig4_patterns(LARGE, seed=0)}["A2A"]
    tut = build_scheme("DRing (su2)", LARGE, seed=0)
    flows = _pattern_flows(LARGE, pattern, 0, 0.30)
    placement = tut.placement(shuffle=pattern.random_placement, seed=0)
    assert len(flows) == LARGE.max_flows

    # Prewarm pass: populates the lazy routing caches both engines share
    # (path sampling pays a per-source shortest-path solve on first use),
    # measures the engine's peak memory, and yields the warm counters.
    tracemalloc.start()
    sim = FlowSimulator(tut.network, tut.routing, placement, seed=0)
    warm_results = sim.run(flows)
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    counters = dict(sim.trace.counters)

    start = time.perf_counter()
    warm_timed = FlowSimulator(
        tut.network, tut.routing, placement, seed=0
    ).run(flows)
    warm_seconds = time.perf_counter() - start

    start = time.perf_counter()
    r1_results = r1.R1FlowSimulator(
        tut.network, tut.routing, placement, seed=0
    ).run(flows)
    r1_seconds = time.perf_counter() - start
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    _assert_identical(warm_results, r1_results)
    _assert_identical(warm_timed, r1_results)

    solves = counters["alloc_solves"]
    warm_solves = counters.get("alloc_warm_solves", 0)
    coverage = warm_solves / solves
    # Link work a cold solve would sweep for the warm-handled solves,
    # vs the links the warm modes actually re-solved.
    link_space = counters.get("alloc_link_space", 0)
    resolved = max(counters.get("alloc_resolved_links", 0), 1)
    work_reduction = link_space / resolved
    speedup = r1_seconds / warm_seconds
    peak_mb = peak_bytes / 1e6

    save_artifact(
        "sim_large_cell.txt",
        "\n".join(
            [
                "fig4 cell A2A / DRing (su2) / 512 racks / seed 0 "
                f"({warm_results.num_flows} flows):",
                f"  r1 engine:   {r1_seconds:.1f} s",
                f"  warm engine: {warm_seconds:.1f} s",
                f"  wall-clock speedup: {speedup:.2f}x (required >= "
                f"{LARGE_REQUIRED_SPEEDUP:.1f}x; single-core, "
                "event-loop-floor bound)",
                f"  warm coverage: {warm_solves}/{solves} solves "
                f"({coverage:.1%}, required >= "
                f"{LARGE_REQUIRED_WARM_COVERAGE:.0%})",
                f"  allocator link work reduction: {work_reduction:.0f}x "
                f"(required >= {LARGE_REQUIRED_WORK_REDUCTION:.0f}x)",
                f"  peak memory: {peak_mb:.0f} MB (budget "
                f"{LARGE_MEMORY_BUDGET_MB:.0f} MB)",
                f"  records: bit-identical ({warm_results.num_flows} flows)",
            ]
        ),
    )

    assert coverage >= LARGE_REQUIRED_WARM_COVERAGE, (
        f"warm starts covered only {coverage:.1%} of solves"
    )
    assert work_reduction >= LARGE_REQUIRED_WORK_REDUCTION, (
        f"allocator work reduced only {work_reduction:.1f}x"
    )
    assert speedup >= LARGE_REQUIRED_SPEEDUP, (
        f"warm engine regressed: {speedup:.2f}x "
        f"({warm_seconds:.1f}s vs r1 {r1_seconds:.1f}s)"
    )
    assert peak_mb <= LARGE_MEMORY_BUDGET_MB, (
        f"peak memory {peak_mb:.0f} MB over budget"
    )
