"""On-disk content-addressed result store for sweep jobs.

Artifacts live under ``~/.cache/repro`` (override with ``--cache-dir``
or ``REPRO_CACHE_DIR``), one JSON file per job key, sharded by the key's
first two hex digits.  Writes are atomic (temp file + ``os.replace``)
so a killed sweep never leaves a torn artifact, and a concurrent sweep
at worst overwrites an entry with identical content.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Any, Dict, Iterator, Optional

from repro.harness import clock
from repro.harness.jobs import JobSpec

_ENV_VAR = "REPRO_CACHE_DIR"


def _unlink_quietly(name: str) -> None:
    try:
        os.unlink(name)
    except OSError:
        pass


class ResultCache:
    """A content-addressed job-result store with hit/miss accounting."""

    def __init__(self, root: pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def default_root() -> pathlib.Path:
        env = os.environ.get(_ENV_VAR)
        if env:
            return pathlib.Path(env)
        return pathlib.Path.home() / ".cache" / "repro"

    @classmethod
    def default(cls) -> "ResultCache":
        return cls(cls.default_root())

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Any]:
        """The cached result for ``key``, or None on miss.

        A corrupt entry (torn by an older writer, disk trouble) counts
        as a miss and is removed so the slot heals on the next put.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.hits += 1
        return payload["result"]

    def put(
        self, key: str, spec: JobSpec, result: Any, elapsed_seconds: float
    ) -> pathlib.Path:
        """Atomically persist one job result."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "spec": spec.to_dict(),
            "label": spec.label(),
            "elapsed_seconds": elapsed_seconds,
            "created_at": clock.now(),
            "result": result,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            _unlink_quietly(tmp_name)
            raise
        return path

    # -- management (``repro cache ls`` / ``repro cache clear``) -------

    def _entry_paths(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir() and len(shard.name) == 2:
                yield from sorted(shard.glob("*.json"))

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Metadata (not results) of every cache entry."""
        for path in self._entry_paths():
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            yield {
                "key": payload.get("key", path.stem),
                "label": payload.get("label", ""),
                "elapsed_seconds": payload.get("elapsed_seconds", 0.0),
                "created_at": payload.get("created_at", 0.0),
                "bytes": path.stat().st_size,
            }

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in list(self._entry_paths()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())
