"""Parallel experiment orchestration with content-addressed caching.

Every paper figure is a sweep over (topology x routing x traffic x seed
x scale) cells.  This package turns each cell into a declarative
:class:`~repro.harness.jobs.JobSpec`, executes job lists in parallel
with per-job timeout and crash retry, and memoizes results in an
on-disk content-addressed store so rerunning a figure is incremental:

    from repro.harness import ResultCache, fig4_jobs, run_jobs

    specs = fig4_jobs("small", seed=0)
    results, outcomes = run_jobs(specs, jobs=4, cache=ResultCache.default())

A job's cache key folds in a fingerprint of the source modules the
experiment depends on, so editing simulator or routing code invalidates
exactly the affected artifacts.
"""

from repro.harness.cache import ResultCache
from repro.harness.executor import JobOutcome, run_jobs
from repro.harness.fingerprint import module_fingerprint
from repro.harness.jobs import (
    EXPERIMENT_REGISTRY,
    JobSpec,
    ablation_jobs,
    assemble_faults,
    assemble_fig4,
    assemble_fig5,
    assemble_fig6,
    assemble_ml,
    assemble_robustness,
    execute_job,
    faults_jobs,
    fig4_jobs,
    fig5_jobs,
    fig6_jobs,
    ml_jobs,
    register_experiment,
    robustness_jobs,
    sweep_jobs,
)
from repro.harness.manifest import RunManifest, collect_env
from repro.harness.progress import NullProgress, ProgressPrinter

__all__ = [
    "EXPERIMENT_REGISTRY",
    "JobOutcome",
    "JobSpec",
    "NullProgress",
    "ProgressPrinter",
    "ResultCache",
    "RunManifest",
    "ablation_jobs",
    "assemble_faults",
    "assemble_fig4",
    "assemble_fig5",
    "assemble_fig6",
    "assemble_ml",
    "assemble_robustness",
    "collect_env",
    "execute_job",
    "faults_jobs",
    "fig4_jobs",
    "fig5_jobs",
    "fig6_jobs",
    "ml_jobs",
    "module_fingerprint",
    "register_experiment",
    "robustness_jobs",
    "run_jobs",
    "sweep_jobs",
]
