"""Tests for the K-shortest-paths baseline."""

import random

import pytest

from repro.routing import KShortestPathsRouting, path_is_simple, path_is_valid


class TestKsp:
    def test_returns_at_most_k_paths(self, small_dring):
        routing = KShortestPathsRouting(small_dring, k=4)
        for src, dst in list(small_dring.rack_pairs())[:20]:
            paths = routing.paths(src, dst)
            assert 1 <= len(paths) <= 4

    def test_paths_sorted_by_length(self, small_dring):
        routing = KShortestPathsRouting(small_dring, k=6)
        paths = routing.paths(0, 5)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_paths_valid_and_simple(self, small_rrg):
        routing = KShortestPathsRouting(small_rrg, k=5)
        for src, dst in list(small_rrg.rack_pairs())[:20]:
            for path in routing.paths(src, dst):
                assert path_is_valid(small_rrg, path)
                assert path_is_simple(path)

    def test_k1_is_single_shortest(self, small_dring):
        routing = KShortestPathsRouting(small_dring, k=1)
        assert len(routing.paths(0, 5)) == 1

    def test_sampling_uniform_over_paths(self, small_dring):
        routing = KShortestPathsRouting(small_dring, k=4)
        rng = random.Random(2)
        paths = routing.paths(0, 2)
        counts = {p: 0 for p in paths}
        trials = 2000
        for _ in range(trials):
            counts[routing.sample_path(0, 2, rng)] += 1
        for count in counts.values():
            assert count / trials == pytest.approx(1 / len(paths), abs=0.05)

    def test_fractions_sum_to_one_out_of_src(self, small_dring):
        routing = KShortestPathsRouting(small_dring, k=4)
        flows = routing.edge_fractions(0, 5)
        out = sum(v for (a, _b), v in flows.items() if a == 0)
        assert out == pytest.approx(1.0)

    def test_rejects_bad_k(self, small_dring):
        with pytest.raises(ValueError):
            KShortestPathsRouting(small_dring, k=0)
