"""Leaderboard ranking: metric direction, tie-breaks, rendering."""

import pytest

from repro.harness.jobs import JobSpec
from repro.service.leaderboard import (
    DEFAULT_METRIC,
    LeaderboardEntry,
    build_leaderboard,
    entry_from_payload,
    rank_entries,
    render_leaderboard,
)
from repro.service.store import ServiceStore


def fct_records(fct_seconds, size_bytes=1e6, flows=4):
    """A records payload where every flow completes in fct_seconds."""
    return {
        "records": [
            [i, i + 1, size_bytes, 0.0, fct_seconds, [i, i + 1]]
            for i in range(flows)
        ]
    }


def fig4_payload(scheme, pattern, fct_seconds, seed=0, key=None):
    spec = JobSpec.make(
        "fig4", scale="tiny", scheme=scheme, pattern=pattern, seed=seed
    )
    return {
        "key": key or spec.key(),
        "spec": spec.to_dict(),
        "created_at": 100.0,
        "result": fct_records(fct_seconds),
    }


def entry(scheme, pattern, fct_seconds, seed=0, key="k"):
    made = entry_from_payload(
        fig4_payload(scheme, pattern, fct_seconds, seed=seed, key=key)
    )
    assert made is not None
    return made


class TestEntryFromPayload:
    def test_fig4_cell_is_rankable(self):
        made = entry("dring su2", "A2A", 0.002)
        assert made.num_flows == 4
        assert made.median_fct_ms == pytest.approx(2.0)
        assert made.p99_fct_ms == pytest.approx(2.0)
        # 1e6 B in 2 ms = 4 Gbps per flow
        assert made.throughput_gbps == pytest.approx(4.0)

    def test_non_fig4_payload_not_rankable(self):
        spec = JobSpec.make("selftest", mode="ok")
        assert entry_from_payload({
            "key": spec.key(),
            "spec": spec.to_dict(),
            "result": {"echo": 1},
        }) is None

    def test_empty_records_not_rankable(self):
        payload = fig4_payload("dring su2", "A2A", 0.002)
        payload["result"] = {"records": []}
        assert entry_from_payload(payload) is None

    def test_malformed_payload_not_rankable(self):
        assert entry_from_payload({"spec": "nope", "result": {}}) is None
        payload = fig4_payload("dring su2", "A2A", 0.002)
        payload["result"] = {"records": [[1, 2]]}  # wrong arity
        assert entry_from_payload(payload) is None


class TestRanking:
    def test_fct_metrics_rank_lower_first(self):
        slow = entry("leaf-spine ecmp", "A2A", 0.004, key="s")
        fast = entry("dring su2", "A2A", 0.002, key="f")
        for metric in ("p99_fct_ms", "median_fct_ms"):
            assert rank_entries([slow, fast], metric)[0] is fast

    def test_throughput_ranks_higher_first(self):
        slow = entry("leaf-spine ecmp", "A2A", 0.004, key="s")
        fast = entry("dring su2", "A2A", 0.002, key="f")
        ranked = rank_entries([slow, fast], "throughput_gbps")
        assert ranked[0] is fast

    def test_tie_breaks_are_stable_identity_order(self):
        b = entry("b-scheme", "A2A", 0.002, key="kb")
        a = entry("a-scheme", "A2A", 0.002, key="ka")
        ranked = rank_entries([b, a], DEFAULT_METRIC)
        assert [e.scheme for e in ranked] == ["a-scheme", "b-scheme"]
        # same input in any order ranks identically
        again = rank_entries([a, b], DEFAULT_METRIC)
        assert [e.key for e in again] == [e.key for e in ranked]

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown leaderboard"):
            rank_entries([], metric="vibes")


class TestBuildAndRender:
    def put_cell(self, store, scheme, pattern, fct_seconds, seed=0):
        spec = JobSpec.make(
            "fig4", scale="tiny", scheme=scheme, pattern=pattern,
            seed=seed,
        )
        store.put(
            spec.key(), spec, fct_records(fct_seconds), 0.1
        )
        return spec

    def test_build_ranks_store_contents(self, tmp_path):
        store = ServiceStore(tmp_path / "store")
        self.put_cell(store, "leaf-spine ecmp", "A2A", 0.004)
        self.put_cell(store, "dring su2", "A2A", 0.002)
        rows = build_leaderboard(store)
        assert [r["rank"] for r in rows] == [1, 2]
        assert rows[0]["scheme"] == "dring su2"

    def test_unrankable_entries_are_skipped(self, tmp_path):
        store = ServiceStore(tmp_path / "store")
        self.put_cell(store, "dring su2", "A2A", 0.002)
        other = JobSpec.make("selftest", mode="ok")
        store.put(other.key(), other, {"echo": 1}, 0.1)
        rows = build_leaderboard(store)
        assert len(rows) == 1

    def test_limit_truncates_after_ranking(self, tmp_path):
        store = ServiceStore(tmp_path / "store")
        self.put_cell(store, "leaf-spine ecmp", "A2A", 0.004)
        self.put_cell(store, "dring su2", "A2A", 0.002)
        rows = build_leaderboard(store, limit=1)
        assert len(rows) == 1 and rows[0]["scheme"] == "dring su2"

    def test_render_empty_board(self):
        assert "no rankable results" in render_leaderboard([])

    def test_render_lists_every_row(self, tmp_path):
        store = ServiceStore(tmp_path / "store")
        self.put_cell(store, "dring su2", "A2A", 0.002)
        self.put_cell(store, "leaf-spine ecmp", "R2R", 0.004)
        text = render_leaderboard(build_leaderboard(store))
        assert "dring su2" in text and "leaf-spine ecmp" in text
        assert text.splitlines()[0].startswith("leaderboard by")

    def test_entry_metric_accessor(self):
        made = entry("dring su2", "A2A", 0.002)
        assert made.metric("p99_fct_ms") == made.p99_fct_ms
        assert isinstance(made, LeaderboardEntry)
