"""seed-threading: public experiment entry points accept and forward seed.

Every ``run_*`` function in ``repro/experiments`` is a public sweep
entry point; the harness keys caches on the seed, the CLI threads
``--seed`` through, and the robustness scorecard varies it.  An entry
point without a ``seed`` parameter either hard-codes one (hidden
coupling) or is nondeterministic; one that accepts ``seed`` and never
uses it gives a false sense of replayability — both break the sweep
contract.  A genuinely seed-free deterministic study can suppress with
a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule


def _accepts_seed(node: ast.FunctionDef) -> bool:
    args = node.args
    names = [
        arg.arg
        for arg in (
            list(getattr(args, "posonlyargs", []))
            + list(args.args)
            + list(args.kwonlyargs)
        )
    ]
    return "seed" in names


def _uses_seed(node: ast.FunctionDef) -> bool:
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Name)
            and child.id == "seed"
            and isinstance(child.ctx, ast.Load)
        ):
            return True
    return False


@register_rule
class SeedThreading(Rule):
    name = "seed-threading"
    summary = (
        "public run_* experiment entry point missing (or ignoring) a "
        "seed parameter"
    )
    invariant = (
        "every experiment cell is replayable from (spec, seed); no "
        "entry point hides or drops the seed"
    )

    def applies(self, context: FileContext) -> bool:
        return context.in_package("experiments") and not context.is_test

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in context.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if not node.name.startswith("run_"):
                continue
            if not _accepts_seed(node):
                yield self.finding(
                    context, node.lineno, node.col_offset,
                    f"public entry point '{node.name}()' takes no "
                    "'seed' parameter; accept and forward one",
                )
            elif not _uses_seed(node):
                yield self.finding(
                    context, node.lineno, node.col_offset,
                    f"'{node.name}()' accepts 'seed' but never uses "
                    "it; forward it to the randomness it controls",
                )
