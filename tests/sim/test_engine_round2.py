"""Round-2 engine regressions: cohorts, warm starts, reset, counters.

The second engine round batches same-timestamp event cohorts and
replaces most cold allocator solves with warm-start replays
(:mod:`repro.sim.warmfill`).  Both are pure optimizations: this module
pins the warm/batched engine bitwise against the cold engine *and* the
verbatim legacy reference — across all six routing schemes and on
fault-degraded networks — and checks the new observability surface
(cohort histograms, warm-start counters) plus the
:meth:`FlowSimulator.reset` contract the sharding layer relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultSpec, apply_fault_set, sample_fault_set
from repro.routing import EcmpRouting
from repro.sim import FlowSimulator, simulate_fct
from repro.sim import flowsim as flowsim_module
from repro.sim import warmfill as warmfill_module
from repro.sim.engine import trace as sim_trace
from repro.sim.packet import PacketSimulator
from repro.topology import dring
from repro.traffic import CanonicalCluster, Flow, Placement, generate_flows, uniform

from tests.sim.legacy_reference import legacy_simulate_fct
from tests.sim.test_engine_parity import (
    SCHEMES,
    assert_identical_results,
    workload,
)


def run_cold(monkeypatch, network, routing, placement, flows, seed=0):
    """A run with warm starts disabled (pure cold fill_levels path)."""
    monkeypatch.setattr(flowsim_module, "_WARM_DEFAULT", False)
    try:
        return simulate_fct(network, routing, placement, flows, seed=seed)
    finally:
        monkeypatch.undo()


def placement_for(network):
    cluster = CanonicalCluster(
        network.num_racks, min(network.servers_at(r) for r in network.racks)
    )
    return Placement(cluster, network)


class TestWarmVsColdVsLegacy:
    """Warm-start engine == cold engine == legacy, bit for bit."""

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_all_schemes(self, small_dring, scheme, monkeypatch):
        _cluster, flows = workload(small_dring)
        placement = placement_for(small_dring)
        warm = simulate_fct(
            small_dring, SCHEMES[scheme](small_dring), placement, flows
        )
        cold = run_cold(
            monkeypatch, small_dring, SCHEMES[scheme](small_dring),
            placement, flows,
        )
        legacy = legacy_simulate_fct(
            small_dring, SCHEMES[scheme](small_dring), placement, flows
        )
        assert_identical_results(warm, cold)
        assert_identical_results(warm, legacy)

    @pytest.mark.parametrize(
        "kind,fraction", [("link", 0.1), ("gray", 0.2), ("correlated", 0.1)]
    )
    def test_degraded_networks(self, kind, fraction, monkeypatch):
        base = dring(6, 2, servers_per_rack=4)
        fault_set = sample_fault_set(
            base, FaultSpec(kind=kind, fraction=fraction), seed=5
        )
        net = apply_fault_set(base, fault_set)
        _cluster, flows = workload(net, num_flows=200)
        placement = placement_for(net)
        warm = simulate_fct(net, SCHEMES["su2"](net), placement, flows)
        cold = run_cold(
            monkeypatch, net, SCHEMES["su2"](net), placement, flows
        )
        legacy = legacy_simulate_fct(
            net, SCHEMES["su2"](net), placement, flows
        )
        assert_identical_results(warm, cold)
        assert_identical_results(warm, legacy)

    @pytest.mark.parametrize("scheme", ["ecmp", "su2", "vlb", "adaptive"])
    def test_shadow_validated_runs(self, small_dring, scheme, monkeypatch):
        """Every warm solve shadow-checked against a cold solve in situ."""
        monkeypatch.setattr(warmfill_module, "_VALIDATE_DEFAULT", True)
        _cluster, flows = workload(small_dring, num_flows=200)
        placement = placement_for(small_dring)
        validated = simulate_fct(
            small_dring, SCHEMES[scheme](small_dring), placement, flows
        )
        legacy = legacy_simulate_fct(
            small_dring, SCHEMES[scheme](small_dring), placement, flows
        )
        assert_identical_results(validated, legacy)

    def test_synchronized_arrivals(self, small_dring, monkeypatch):
        """Big same-timestamp admission cohorts stay bit-identical."""
        rng = np.random.default_rng(13)
        flows = []
        for wave in range(6):
            when = wave * 1e-4
            for _ in range(20):
                src, dst = rng.choice(24, size=2, replace=False)
                flows.append(Flow(int(src), int(dst), 4e5, when))
        placement = placement_for(small_dring)
        warm = simulate_fct(
            small_dring, EcmpRouting(small_dring), placement, flows
        )
        legacy = legacy_simulate_fct(
            small_dring, EcmpRouting(small_dring), placement, flows
        )
        assert_identical_results(warm, legacy)


class TestEngineCounters:
    """The round-2 observability surface: cohorts and warm-start rates."""

    def run_traced(self, small_dring, flows):
        placement = placement_for(small_dring)
        sim = FlowSimulator(
            small_dring, EcmpRouting(small_dring), placement, seed=0
        )
        sim.run(flows)
        return sim.trace.counters

    def test_cohort_histograms_consistent(self, small_dring):
        _cluster, flows = workload(small_dring, num_flows=200)
        counters = self.run_traced(small_dring, flows)
        admit_buckets = sum(
            count for name, count in counters.items()
            if name.startswith("cohort_admit_")
        )
        retire_buckets = sum(
            count for name, count in counters.items()
            if name.startswith("cohort_retire_")
        )
        assert counters["admit_cohorts"] > 0
        assert admit_buckets == counters["admit_cohorts"]
        assert retire_buckets == counters["retire_cohorts"]

    def test_synchronized_arrivals_fill_large_buckets(self, small_dring):
        flows = [
            Flow(src, 12 + (src % 12), 2e5, 0.0) for src in range(12)
        ]
        counters = self.run_traced(small_dring, flows)
        assert counters.get("cohort_admit_5_16", 0) >= 1

    def test_warm_start_counters(self, small_dring):
        _cluster, flows = workload(small_dring, num_flows=200)
        counters = self.run_traced(small_dring, flows)
        assert counters["alloc_solves"] > 0
        warm = counters.get("alloc_warm_solves", 0)
        cold = counters.get("alloc_cold_solves", 0)
        assert warm + cold == counters["alloc_solves"]
        assert warm > 0  # warm starts must actually engage on this size
        # Each warm solve adds the full link space to the denominator,
        # and re-solves strictly fewer links than the space it skipped.
        assert counters["alloc_link_space"] > 0
        assert counters["alloc_resolved_links"] < counters["alloc_link_space"]

    def test_counters_reach_ambient_collector(self, small_dring):
        _cluster, flows = workload(small_dring, num_flows=100)
        placement = placement_for(small_dring)
        with sim_trace.collecting() as collector:
            simulate_fct(
                small_dring, EcmpRouting(small_dring), placement, flows
            )
        assert collector.counters["admit_cohorts"] > 0
        assert collector.counters["alloc_solves"] > 0


class TestReset:
    """reset() must equal fresh construction — sharding depends on it."""

    def test_reset_rerun_bit_identical(self, small_dring):
        _cluster, flows = workload(small_dring, num_flows=150)
        placement = placement_for(small_dring)
        fresh = FlowSimulator(
            small_dring, EcmpRouting(small_dring), placement, seed=3
        ).run(flows)
        reused = FlowSimulator(
            small_dring, EcmpRouting(small_dring), placement, seed=0
        )
        reused.run(flows)
        reused.reset(seed=3)
        assert_identical_results(reused.run(flows), fresh)

    def test_reset_clears_utilization(self, small_dring):
        _cluster, flows = workload(small_dring, num_flows=80)
        placement = placement_for(small_dring)
        sim = FlowSimulator(
            small_dring, EcmpRouting(small_dring), placement, seed=1
        )
        sim.run(flows)
        first = sim.link_utilization()
        sim.reset(seed=1)
        sim.run(flows)
        assert sim.link_utilization() == first


class TestPacketCohorts:
    def test_event_queue_cohort_histogram(self, small_leafspine):
        cluster = CanonicalCluster(6, 4)
        placement = Placement(cluster, small_leafspine)
        sim = PacketSimulator(
            small_leafspine, EcmpRouting(small_leafspine), placement, seed=0
        )
        flows = [Flow(src, 23, 2e5, 0.0) for src in range(6)]
        with sim_trace.collecting() as collector:
            sim.run(flows)
        cohorts = {
            name: count for name, count in sim.events.cohort_counts.items()
        }
        assert sum(cohorts.values()) > 0
        for name, count in cohorts.items():
            assert name.startswith("cohort_event_")
            assert collector.counters[name] == count

    def test_cohorts_change_no_packet_results(self, small_leafspine):
        cluster = CanonicalCluster(6, 4)
        placement = Placement(cluster, small_leafspine)
        flows = generate_flows(
            uniform(cluster), 60, 0.005, seed=2, size_cap=3e5
        )
        first = PacketSimulator(
            small_leafspine, EcmpRouting(small_leafspine), placement, seed=4
        ).run(flows)
        second = PacketSimulator(
            small_leafspine, EcmpRouting(small_leafspine), placement, seed=4
        ).run(flows)
        assert_identical_results(first, second)
