"""Tests for the FRRouting configuration renderer."""

import pytest

from repro.bgp import rack_prefix, router_as
from repro.bgp.frr import FrrConfigGenerator


@pytest.fixture
def generator(small_dring):
    return FrrConfigGenerator(small_dring, 2)


class TestFrrRendering:
    def test_renders_every_router(self, generator, small_dring):
        configs = generator.render_all()
        assert set(configs) == set(small_dring.switches)

    def test_frr_preamble(self, generator):
        text = generator.render_router(0)
        assert text.startswith("frr version")
        assert "frr defaults datacenter" in text

    def test_vrf_devices_declared(self, generator):
        text = generator.render_router(0)
        assert "vrf VRF1" in text and "vrf VRF2" in text

    def test_bgp_instance_per_vrf(self, generator):
        text = generator.render_router(3)
        local_as = router_as(3)
        assert f"router bgp {local_as} vrf VRF1" in text
        assert f"router bgp {local_as} vrf VRF2" in text

    def test_host_prefix_only_in_host_vrf(self, generator):
        text = generator.render_router(3)
        network_line = f"  network {rack_prefix(3)}"
        before_vrf2, after_vrf2 = text.split("vrf VRF2", 1)
        assert network_line not in before_vrf2
        assert network_line in after_vrf2

    def test_multipath_relax_enabled(self, generator):
        text = generator.render_router(0)
        assert "bgp bestpath as-path multipath-relax" in text
        assert "maximum-paths" in text

    def test_prepend_route_maps(self, generator):
        text = generator.render_router(0)
        assert "route-map PREPEND-2 permit 10" in text
        assert f"set as-path prepend {router_as(0)}" in text

    def test_addressing_matches_cisco_renderer(self, small_dring):
        from repro.bgp import ConfigGenerator

        frr = FrrConfigGenerator(small_dring, 2)
        cisco = ConfigGenerator(small_dring, 2)
        # Both renderers must agree on the connection ordering (and thus
        # the /31 addressing), so mixed fleets interoperate.
        assert frr._connections == cisco._connections

    def test_deterministic(self, small_dring):
        a = FrrConfigGenerator(small_dring, 2).render_router(1)
        b = FrrConfigGenerator(small_dring, 2).render_router(1)
        assert a == b
