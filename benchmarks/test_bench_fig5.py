"""E3/E4/E8: Figure 5 — DRing vs leaf-spine throughput heatmaps (C-S).

Paper shape to reproduce: DRing with ECMP beats leaf-spine for most of
the C-S plane but is poor at the lower-left (small C and S, adjacent-rack
bottleneck); Shortest-Union(2) fixes that corner and lifts the plane; for
strongly skewed cells (|C| << |S|) the ratio approaches the 2x UDF
prediction (Section 6.2).
"""

import numpy as np
import pytest

from conftest import save_artifact
from repro.experiments import SMALL, run_fig5
from repro.routing import ShortestUnionRouting
from repro.sim import cs_throughput
from repro.topology import dring

SMALL_VALUES = [12, 36, 60, 84]
LARGE_VALUES = [30, 60, 90]


@pytest.fixture(scope="module")
def small_panels():
    panels = run_fig5(SMALL, seed=0, values=SMALL_VALUES)
    save_artifact("fig5_small_ecmp.txt", panels["ecmp"].render())
    save_artifact("fig5_small_su2.txt", panels["su2"].render())
    return panels


@pytest.fixture(scope="module")
def large_panels():
    panels = run_fig5(SMALL, seed=1, values=LARGE_VALUES)
    save_artifact("fig5_large_ecmp.txt", panels["ecmp"].render())
    save_artifact("fig5_large_su2.txt", panels["su2"].render())
    return panels


def test_bench_fig5_cell(benchmark):
    """Times one heatmap cell (one steady-state allocation)."""
    net = dring(SMALL.dring_m, SMALL.dring_n, total_servers=SMALL.dring_servers)
    routing = ShortestUnionRouting(net, 2)
    benchmark.pedantic(
        cs_throughput, args=(net, routing, 36, 84), kwargs={"seed": 0},
        rounds=3, iterations=1,
    )


def test_bench_fig5_su2_lifts_lower_left(benchmark, small_panels):
    """SU(2) improves the weak lower-left corner of the ECMP panel."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ecmp = small_panels["ecmp"].ratio
    su2 = small_panels["su2"].ratio
    assert su2[0, 0] >= ecmp[0, 0]


def test_bench_fig5_skewed_cells_approach_udf(benchmark, small_panels):
    """Skewed cells (few clients, many servers) approach the 2x gain."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert small_panels["su2"].skewed_corner_ratio() > 1.5


def test_bench_fig5_dring_wins_most_of_plane(benchmark, small_panels):
    """DRing with SU(2) beats leaf-spine over most of the C-S plane."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ratios = small_panels["su2"].ratio
    wins = (ratios > 1.0).mean()
    assert wins >= 0.6
    assert ratios.mean() > 1.0


def test_bench_fig5_large_values_hold_up(benchmark, large_panels):
    """The qualitative picture persists at larger C/S values."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    su2 = large_panels["su2"].ratio
    assert su2.mean() > 1.0
    assert np.all(su2 > 0)
