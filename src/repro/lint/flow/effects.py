"""Effect inference + the deep-cache-purity rule.

Every function in the program is classified against a small effect
lattice by propagating *local* effects bottom-up over the call graph:

* ``reads-clock`` — reads real time (``time.time``, ``datetime.now``,
  ... — the same set the per-file no-wallclock rule bans);
* ``uses-rng``    — draws from the hidden global RNG (bare ``random.*``
  or legacy ``numpy.random.*`` calls);
* ``does-io``     — touches ambient I/O: ``os.environ`` / ``os.getenv``,
  ``open()``, ``Path.read_*`` / ``write_*``, ``input()``,
  ``subprocess`` / ``socket``;
* ``mutates-network`` — calls a :class:`Network` mutation primitive
  (``add_link`` / ``remove_link`` / ``set_link_capacity_scale``).

A function with none of these, and whose resolved callees have none, is
**pure**.  Unresolved call sites are treated as effect-free — the
engine is deliberately optimistic so the gate stays actionable; the
call-graph meta-test pins the unresolved fraction below 10% so the
optimism window stays small.

``deep-cache-purity`` then strengthens PR 3's syntactic
cache-key-purity rule to a semantic one: every job runner registered
via ``register_experiment`` (the functions whose results the harness
caches by (spec, code-fingerprint) alone) must reach only pure or
explicitly-allowed effects.  ``mutates-network`` is allowed there —
jobs degrade their own private topology copies — and a
``# repro-effect: allow=<effect>`` comment on a ``def`` line absorbs a
deliberate effect at that function (with a justification, same policy
as suppressions).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import (
    CallGraph,
    CallSite,
    INTERNAL,
    UNRESOLVED,
)
from repro.lint.flow.program import FunctionInfo, Program, function_statements
from repro.lint.flow.registry import FlowRule, register_flow_rule

READS_CLOCK = "reads-clock"
USES_RNG = "uses-rng"
DOES_IO = "does-io"
MUTATES_NETWORK = "mutates-network"

#: Every effect above "pure", in report order.
EFFECTS = (READS_CLOCK, USES_RNG, DOES_IO, MUTATES_NETWORK)

#: Wall-clock reads (kept in sync with lint.rules.wallclock).
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.clock_gettime", "time.clock_gettime_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
})

#: Global-state ``random`` module functions (lint.rules.rng's set).
_GLOBAL_RANDOM = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

_SEEDABLE_NUMPY = frozenset({
    "Generator", "RandomState", "SeedSequence", "default_rng",
})

_IO_CALLS = frozenset({
    "os.getenv", "os.environb.get", "os.urandom", "builtins.input",
    "builtins.open", "sys.stdin.read", "sys.stdin.readline",
})

_IO_CALL_PREFIXES = ("subprocess.", "socket.", "urllib.", "http.")

_PATH_IO_METHODS = frozenset({
    "read_text", "read_bytes", "write_text", "write_bytes",
})

_NETWORK_MUTATORS = frozenset({
    "add_link", "remove_link", "set_link_capacity_scale",
})

#: ``# repro-effect: allow=<effect>[,<effect>]`` on a def line.
_ALLOW_PATTERN = re.compile(
    r"#\s*repro-effect:\s*allow\s*=\s*(?P<effects>[A-Za-z, \-]+)"
)


def collect_effect_allowances(source: str) -> Dict[int, Set[str]]:
    """Line -> effects explicitly allowed by a ``# repro-effect`` comment."""
    allowances: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return allowances
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_PATTERN.search(token.string)
        if match is None:
            continue
        names = {
            name.strip()
            for name in match.group("effects").split(",")
            if name.strip()
        }
        allowances.setdefault(token.start[0], set()).update(names)
    return allowances


class EffectOrigin:
    """Why a function carries an effect: where it enters syntactically,
    and through which callee it was inherited (for path rendering)."""

    __slots__ = ("qname", "line", "via", "detail")

    def __init__(
        self, qname: str, line: int, via: Optional[str], detail: str
    ) -> None:
        self.qname = qname
        self.line = line
        self.via = via  # callee qname the effect came through, or None
        self.detail = detail


class EffectAnalysis:
    """Inferred effect sets for every function in a call graph."""

    def __init__(self, graph: CallGraph) -> None:
        self.callgraph = graph
        self.program = graph.program
        self.local: Dict[str, Dict[str, EffectOrigin]] = {}
        self.effects: Dict[str, Set[str]] = {}
        self.origins: Dict[str, Dict[str, EffectOrigin]] = {}
        self.allowances: Dict[str, Set[str]] = {}
        self._infer()

    # -- local (syntactic) effects -------------------------------------

    def _infer(self) -> None:
        allow_by_module: Dict[str, Dict[int, Set[str]]] = {}
        for name, module in self.program.modules.items():
            allow_by_module[name] = collect_effect_allowances(module.source)
        sites_by_caller: Dict[str, List[CallSite]] = {}
        for site in self.callgraph.sites:
            sites_by_caller.setdefault(site.caller, []).append(site)
        for qname, info in self.program.functions.items():
            self.local[qname] = self._local_effects(
                info, sites_by_caller.get(qname, [])
            )
            allowed = allow_by_module[info.module].get(info.line, set())
            if allowed:
                self.allowances[qname] = allowed
        self._propagate()

    def _local_effects(
        self, info: FunctionInfo, sites: List[CallSite]
    ) -> Dict[str, EffectOrigin]:
        found: Dict[str, EffectOrigin] = {}

        def mark(effect: str, line: int, detail: str) -> None:
            if effect not in found:
                found[effect] = EffectOrigin(info.qname, line, None, detail)

        for site in sites:
            if site.kind == UNRESOLVED:
                # Untyped receivers still betray file IO by method name.
                method = site.text.rsplit(".", 1)[-1]
                if method in _PATH_IO_METHODS:
                    mark(DOES_IO, site.line, f"calls .{method}()")
                continue
            if site.kind == INTERNAL:
                # Network mutation primitives are internal methods.
                target = site.target
                method = target.rsplit(".", 1)[-1]
                if (
                    method in _NETWORK_MUTATORS
                    and ".core.network." in f".{target}"
                ):
                    mark(
                        MUTATES_NETWORK, site.line,
                        f"calls Network.{method}()",
                    )
                continue
            dotted = site.target
            if dotted in _CLOCK_CALLS:
                mark(READS_CLOCK, site.line, f"calls {dotted}()")
            elif dotted in _IO_CALLS or dotted.startswith(_IO_CALL_PREFIXES):
                mark(DOES_IO, site.line, f"calls {dotted}()")
            else:
                parts = dotted.split(".")
                if parts[0] == "random" and len(parts) == 2:
                    if parts[1] in _GLOBAL_RANDOM:
                        mark(USES_RNG, site.line, f"calls {dotted}()")
                elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
                    if parts[2] not in _SEEDABLE_NUMPY:
                        mark(USES_RNG, site.line, f"calls {dotted}()")
                elif parts[-1] in _PATH_IO_METHODS:
                    mark(DOES_IO, site.line, f"calls .{parts[-1]}()")

        # os.environ reads are attribute accesses, not calls.
        module = self.program.module_of(info)
        for node in function_statements(info.node):
            if isinstance(node, ast.Attribute):
                parts = _flatten(node)
                if parts and module.imports.get(parts[0]) == "os":
                    if parts[1:2] == ["environ"]:
                        mark(DOES_IO, node.lineno, "reads os.environ")
                elif parts and module.imports.get(parts[0]) == "os.environ":
                    mark(DOES_IO, node.lineno, "reads os.environ")
        return found

    # -- bottom-up propagation -----------------------------------------

    def _propagate(self) -> None:
        for qname, local in self.local.items():
            self.effects[qname] = set(local)
            self.origins[qname] = dict(local)
        changed = True
        while changed:
            changed = False
            for qname in self.effects:
                absorbed = self.allowances.get(qname, set())
                for callee in sorted(self.callgraph.callees(qname)):
                    callee_effects = self.effects.get(callee)
                    if not callee_effects:
                        continue
                    for effect in callee_effects:
                        if effect in absorbed:
                            continue
                        if effect in self.allowances.get(callee, set()):
                            # The callee declared the effect intentional:
                            # it stops propagating upward there.
                            continue
                        if effect not in self.effects[qname]:
                            self.effects[qname].add(effect)
                            origin = self.origins[callee][effect]
                            self.origins[qname][effect] = EffectOrigin(
                                origin.qname, origin.line, callee,
                                origin.detail,
                            )
                            changed = True

    # -- reporting helpers ---------------------------------------------

    def effects_of(self, qname: str) -> Set[str]:
        return self.effects.get(qname, set())

    def classify(self, qname: str) -> str:
        """The summary label: 'pure' or a +-joined effect list."""
        effects = self.effects_of(qname)
        if not effects:
            return "pure"
        return "+".join(e for e in EFFECTS if e in effects)

    def explain(self, qname: str, effect: str) -> str:
        """Render the call path from ``qname`` to the effect's origin."""
        hops: List[str] = []
        current = qname
        seen = set()
        while True:
            origin = self.origins.get(current, {}).get(effect)
            if origin is None or origin.via is None or origin.via in seen:
                break
            seen.add(origin.via)
            hops.append(_short(origin.via))
            current = origin.via
        origin = self.origins.get(current, {}).get(effect)
        where = ""
        if origin is not None:
            module = self.program.functions[origin.qname].module
            where = f" ({module}:{origin.line}: {origin.detail})"
        path = " -> ".join(hops)
        return (f"via {path}{where}" if path else where.strip()) or effect


def _flatten(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def _short(qname: str) -> str:
    """Trim the package prefix for readable effect paths."""
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qname


# ----------------------------------------------------------------------
# Job entry-point discovery
# ----------------------------------------------------------------------


def find_job_entry_points(program: Program) -> List[Tuple[str, CallSite]]:
    """(runner qname, registration site) for every ``register_experiment``
    call whose runner argument resolves to a program function."""
    entries: List[Tuple[str, CallSite]] = []
    for module in program.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = None
            if isinstance(node.func, ast.Name):
                callee = program.resolve_in_module(module, node.func.id)
            if not callee or not callee.endswith(".register_experiment"):
                continue
            if len(node.args) < 2:
                continue
            runner = node.args[1]
            resolved: Optional[str] = None
            if isinstance(runner, ast.Name):
                resolved = program.resolve_in_module(module, runner.id)
            if resolved and resolved in program.functions:
                entries.append((
                    resolved,
                    CallSite(
                        caller=module.name, line=node.lineno,
                        column=node.col_offset, text="register_experiment",
                        kind=INTERNAL, target=resolved,
                    ),
                ))
    return entries


# ----------------------------------------------------------------------
# The rule
# ----------------------------------------------------------------------

#: Effects a cached job runner may carry without an explicit allowance.
#: Jobs build and degrade their own private Network copies, so local
#: topology mutation does not break cache-key purity.
_ALLOWED_IN_JOBS = frozenset({MUTATES_NETWORK})


@register_flow_rule
class DeepCachePurity(FlowRule):
    name = "deep-cache-purity"
    summary = (
        "cache-keyed job runners transitively reaching clock / RNG / "
        "ambient-IO effects (semantic cache-key-purity)"
    )
    invariant = (
        "a cached job result is a pure function of (JobSpec, "
        "fingerprinted sources) along every interprocedural path, not "
        "just in the file the runner lives in"
    )

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        analysis = EffectAnalysis(graph)
        yield from check_entry_effects(graph.program, analysis, self)


def check_entry_effects(
    program: Program, analysis: EffectAnalysis, rule: FlowRule
) -> Iterator[Finding]:
    for qname, _site in find_job_entry_points(program):
        info = program.functions[qname]
        banned = (
            analysis.effects_of(qname)
            - _ALLOWED_IN_JOBS
            - analysis.allowances.get(qname, set())
        )
        for effect in [e for e in EFFECTS if e in banned]:
            path = analysis.explain(qname, effect)
            yield rule.finding(
                program.modules[info.module].path, info.line,
                info.node.col_offset,
                f"cached job runner '{info.name}' reaches effect "
                f"'{effect}' {path}; results keyed on (spec, code) "
                "cannot depend on it — make the path pure or annotate "
                "an intentional effect with '# repro-effect: "
                f"allow={effect}'",
            )
