"""The deep-lockset-races rule on fixture packages: inferred locksets,
declared guards, requires contracts, and condition discipline."""

from __future__ import annotations

from repro.lint.flow import deep_lint_paths
from repro.lint.flow.concurrency import DeepLocksetRaces, concurrency_facts

from tests.lint.flow.util import build_fixture_graph

#: A counter class whose `total` is guarded on two of three accesses —
#: the classic inconsistent-lockset race, reachable from a thread.
RACY_FIXTURE = {
    "counter.py": (
        "import threading\n"
        "\n"
        "\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.total = 0\n"
        "\n"
        "    def add(self, amount):\n"
        "        with self._lock:\n"
        "            self.total = self.total + amount\n"
        "\n"
        "    def reset(self):\n"
        "        self.total = 0\n"
        "\n"
        "    def spin(self):\n"
        "        self.add(1)\n"
        "\n"
        "\n"
        "def main():\n"
        "    counter = Counter()\n"
        "    worker = threading.Thread(target=counter.spin)\n"
        "    worker.start()\n"
        "    counter.reset()\n"
        "    worker.join()\n"
    ),
}


def _check(graph):
    return list(DeepLocksetRaces().check(graph))


class TestInferredLocksets:
    def test_inconsistent_lockset_flags_the_outlier(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, RACY_FIXTURE, "cpkg")
        findings = _check(graph)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "deep-lockset-races"
        assert "Counter.reset" in finding.message
        assert "Counter.total" in finding.message
        assert "Counter._lock" in finding.message
        assert finding.path.endswith("counter.py")

    def test_consistent_lockset_is_clean(self, tmp_path):
        fixture = dict(RACY_FIXTURE)
        fixture["counter.py"] = fixture["counter.py"].replace(
            "    def reset(self):\n        self.total = 0\n",
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self.total = 0\n",
        )
        _, graph = build_fixture_graph(tmp_path, fixture, "cpkg")
        assert _check(graph) == []

    def test_unwritten_attribute_is_not_a_race(self, tmp_path):
        fixture = dict(RACY_FIXTURE)
        fixture["counter.py"] = fixture["counter.py"].replace(
            "            self.total = self.total + amount\n",
            "            read = self.total\n",
        ).replace(
            "    def reset(self):\n        self.total = 0\n",
            "    def reset(self):\n        return self.total\n",
        )
        _, graph = build_fixture_graph(tmp_path, fixture, "cpkg")
        assert _check(graph) == []

    def test_no_thread_entry_no_finding(self, tmp_path):
        fixture = dict(RACY_FIXTURE)
        fixture["counter.py"] = fixture["counter.py"].replace(
            "    worker = threading.Thread(target=counter.spin)\n"
            "    worker.start()\n",
            "    counter.spin()\n",
        ).replace("    worker.join()\n", "")
        _, graph = build_fixture_graph(tmp_path, fixture, "cpkg")
        assert _check(graph) == []

    def test_unsynchronized_write_without_any_lock_use(self, tmp_path):
        fixture = {
            "counter.py": RACY_FIXTURE["counter.py"].replace(
                "        with self._lock:\n"
                "            self.total = self.total + amount\n",
                "        self.total = self.total + amount\n",
            ),
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "cpkg")
        findings = _check(graph)
        assert findings, "lock-free writes on a lock-owning class flag"
        assert any("no lock held" in f.message for f in findings)


class TestDeclaredGuards:
    def test_declared_guard_is_checked_everywhere(self, tmp_path):
        fixture = dict(RACY_FIXTURE)
        fixture["counter.py"] = fixture["counter.py"].replace(
            "class Counter:\n",
            "class Counter:\n"
            "    # repro-guard: total by _lock -- every mutation is a "
            "read-modify-write\n",
        )
        _, graph = build_fixture_graph(tmp_path, fixture, "cpkg")
        findings = _check(graph)
        assert len(findings) == 1
        assert "declared '# repro-guard: total by ...'" in findings[0].message
        assert "Counter.reset" in findings[0].message

    def test_unguarded_declaration_silences(self, tmp_path):
        fixture = dict(RACY_FIXTURE)
        fixture["counter.py"] = fixture["counter.py"].replace(
            "class Counter:\n",
            "class Counter:\n"
            "    # repro-guard: total unguarded -- benign stats counter; "
            "torn reads acceptable\n",
        )
        _, graph = build_fixture_graph(tmp_path, fixture, "cpkg")
        assert _check(graph) == []

    def test_guard_without_reason_is_rejected(self, tmp_path):
        fixture = dict(RACY_FIXTURE)
        fixture["counter.py"] = fixture["counter.py"].replace(
            "class Counter:\n",
            "class Counter:\n    # repro-guard: total by _lock\n",
        )
        _, graph = build_fixture_graph(tmp_path, fixture, "cpkg")
        findings = _check(graph)
        assert any("needs a justification" in f.message for f in findings)

    def test_guard_naming_unknown_lock_is_rejected(self, tmp_path):
        fixture = dict(RACY_FIXTURE)
        fixture["counter.py"] = fixture["counter.py"].replace(
            "class Counter:\n",
            "class Counter:\n"
            "    # repro-guard: total by _mutex -- no such lock\n",
        )
        _, graph = build_fixture_graph(tmp_path, fixture, "cpkg")
        findings = _check(graph)
        assert any("_mutex" in f.message for f in findings)


class TestRequiresContracts:
    FIXTURE = {
        "box.py": (
            "import threading\n"
            "\n"
            "\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.items = []\n"
            "\n"
            "    # repro-guard: requires _lock -- append+len must be "
            "atomic\n"
            "    def _push(self, item):\n"
            "        self.items.append(item)\n"
            "        return len(self.items)\n"
            "\n"
            "    def good(self, item):\n"
            "        with self._lock:\n"
            "            return self._push(item)\n"
            "\n"
            "    def bad(self, item):\n"
            "        return self._push(item)\n"
            "\n"
            "\n"
            "def main():\n"
            "    box = Box()\n"
            "    threading.Thread(target=box.good).start()\n"
        ),
    }

    def test_caller_without_lock_is_flagged(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, self.FIXTURE, "bpkg")
        findings = _check(graph)
        assert len(findings) == 1
        assert "Box.bad calls Box._push" in findings[0].message
        assert "repro-guard: requires" in findings[0].message

    def test_requires_roots_the_function_with_the_lock(self, tmp_path):
        fixture = dict(self.FIXTURE)
        fixture["box.py"] = fixture["box.py"].replace(
            "    def bad(self, item):\n"
            "        return self._push(item)\n\n",
            "",
        )
        _, graph = build_fixture_graph(tmp_path, fixture, "bpkg")
        assert _check(graph) == []


class TestConditionDiscipline:
    def test_notify_without_condition_held(self, tmp_path):
        fixture = {
            "queuey.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Mailbox:\n"
                "    def __init__(self):\n"
                "        self._cond = threading.Condition()\n"
                "        self.mail = []\n"
                "\n"
                "    def post(self, msg):\n"
                "        with self._cond:\n"
                "            self.mail.append(msg)\n"
                "        self._cond.notify_all()\n"
                "\n"
                "    def drain(self):\n"
                "        with self._cond:\n"
                "            while not self.mail:\n"
                "                self._cond.wait()\n"
                "            return self.mail.pop()\n"
                "\n"
                "\n"
                "def main():\n"
                "    box = Mailbox()\n"
                "    threading.Thread(target=box.drain).start()\n"
                "    box.post('hi')\n"
            ),
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "qpkg")
        findings = _check(graph)
        messages = [f.message for f in findings]
        assert any(
            "'notify_all' on condition" in m and "without holding" in m
            for m in messages
        ), messages


class TestClosureTyping:
    def test_nested_function_sees_enclosing_self(self, tmp_path):
        fixture = {
            "cb.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Gate:\n"
                "    # repro-guard: hits by _lock -- closures and "
                "methods both mutate it\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.hits = 0\n"
                "\n"
                "    def handler(self):\n"
                "        def bump():\n"
                "            with self._lock:\n"
                "                self.hits = self.hits + 1\n"
                "        return bump\n"
                "\n"
                "    def tick(self):\n"
                "        with self._lock:\n"
                "            self.hits = self.hits + 1\n"
                "\n"
                "\n"
                "def main():\n"
                "    gate = Gate()\n"
                "    threading.Thread(target=gate.handler()).start()\n"
                "    gate.tick()\n"
            ),
        }
        _, graph = build_fixture_graph(tmp_path, fixture, "gpkg")
        assert _check(graph) == []


class TestSuppressionPath:
    def test_inline_disable_comment_suppresses(self, tmp_path):
        fixture = dict(RACY_FIXTURE)
        fixture["counter.py"] = fixture["counter.py"].replace(
            "    def reset(self):\n        self.total = 0\n",
            "    def reset(self):\n"
            "        self.total = 0  "
            "# repro-lint: disable=deep-lockset-races\n",
        )
        build_fixture_graph(tmp_path, fixture, "cpkg")
        findings, _ = deep_lint_paths(
            [str(tmp_path / "cpkg")],
            rule_names=["deep-lockset-races"],
            package="cpkg",
        )
        assert findings == []

    def test_deep_lint_paths_reports_the_race(self, tmp_path):
        build_fixture_graph(tmp_path, RACY_FIXTURE, "cpkg")
        findings, _ = deep_lint_paths(
            [str(tmp_path / "cpkg")],
            rule_names=["deep-lockset-races"],
            package="cpkg",
        )
        assert len(findings) == 1
        assert findings[0].rule == "deep-lockset-races"


class TestModelFacts:
    def test_thread_reachable_closure_includes_callees(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, RACY_FIXTURE, "cpkg")
        facts = concurrency_facts(graph)
        assert "cpkg.counter.Counter.spin" in facts.thread_reachable
        assert "cpkg.counter.Counter.add" in facts.thread_reachable

    def test_lock_discovery_names_owner(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, RACY_FIXTURE, "cpkg")
        facts = concurrency_facts(graph)
        assert set(facts.model.locks) == {"cpkg.counter.Counter._lock"}
        info = facts.model.locks["cpkg.counter.Counter._lock"]
        assert not info.reentrant and not info.is_condition
