"""Section 3.1's analysis as an executable table: NSR and UDF.

The paper proves UDF(leaf-spine(x, y)) = 2 independent of x and y.  This
module evaluates the closed forms over a grid, cross-checks them against
empirically constructed networks (build leaf-spine, flatten it, measure
NSRs), and reports the Figure 1 toy numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.metrics import (
    flat_leaf_spine_nsr,
    leaf_spine_nsr,
    leaf_spine_udf,
    nsr,
    udf,
)
from repro.topology import flatten, leaf_spine


@dataclass(frozen=True)
class UdfRow:
    """One (x, y) row of the UDF table."""

    x: int
    y: int
    nsr_baseline: float
    nsr_flat: float
    udf_closed_form: float
    udf_empirical: float


def run_udf_table(
    grid: List[Tuple[int, int]] = None, seed: int = 0
) -> List[UdfRow]:
    """Evaluate closed-form and empirical UDF over a leaf-spine grid.

    The empirical value differs slightly from 2 only through integer
    server spreading in the flat rebuild.
    """
    if grid is None:
        grid = [(4, 2), (6, 2), (12, 4), (16, 8), (24, 8), (48, 16)]
    rows: List[UdfRow] = []
    for x, y in grid:
        baseline = leaf_spine(x, y)
        flat = flatten(baseline, seed=seed)
        rows.append(
            UdfRow(
                x=x,
                y=y,
                nsr_baseline=leaf_spine_nsr(x, y),
                nsr_flat=flat_leaf_spine_nsr(x, y),
                udf_closed_form=leaf_spine_udf(x, y),
                udf_empirical=udf(baseline, flat),
            )
        )
    return rows


def render_udf_table(rows: List[UdfRow]) -> str:
    header = (
        f"{'x':>5}{'y':>5}{'NSR(T)':>10}{'NSR(F(T))':>12}"
        f"{'UDF closed':>12}{'UDF measured':>14}"
    )
    lines = ["Section 3.1: UDF of leaf-spine(x, y)", header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.x:>5}{r.y:>5}{r.nsr_baseline:>10.3f}{r.nsr_flat:>12.3f}"
            f"{r.udf_closed_form:>12.3f}{r.udf_empirical:>14.3f}"
        )
    return "\n".join(lines)


def figure1_numbers() -> dict:
    """The toy example of Figure 1: leaf-spine(4, 2) vs its flat rebuild.

    The paper's caption: the leaf-spine has 4 servers and 2 network
    links per rack (1/2 network port per server); the flat network built
    with the same hardware has 3 servers and 3 network links per rack
    (1 network port per server).
    """
    x, y = 4, 2
    baseline = leaf_spine(x, y)
    flat = flatten(baseline, seed=0)
    return {
        "leafspine_ports_per_server": leaf_spine_nsr(x, y),
        "flat_ports_per_server": flat_leaf_spine_nsr(x, y),
        "leafspine_nsr_measured": nsr(baseline).mean,
        "flat_nsr_measured": nsr(flat).mean,
    }
