"""Deterministic within-cell sharding for large simulation cells.

A large cell (hundreds of racks, ~10^5 flows) is one indivisible job to
the sweep harness, so a single slow cell pins a whole sweep to one core.
This module splits such a cell into ``--shards N`` cooperating jobs by
partitioning its *flows* (or, for collective cells, its *training jobs*)
with a deterministic hash, running each partition as an independent
simulation on the full topology, and merging the per-shard records
canonically.

Two properties are load-bearing, one caveat is explicit:

* **N-independence.**  Flows are hashed into a fixed number of *virtual*
  shards (:data:`NUM_VIRTUAL_SHARDS`) regardless of ``N``; shard job
  ``i`` of ``N`` runs the virtual shards ``v % N == i`` sequentially,
  each as its own simulator run seeded by ``stable_seed("shard", seed,
  v)``.  Every virtual shard therefore computes identical floats no
  matter how many OS processes the work is spread over, and the merged
  output of ``--shards N`` is byte-identical to ``--shards 1``.
* **Canonical merge.**  Per-shard records are merged by sorting on the
  full record tuple (admission order first: start time, then endpoints,
  size, finish time, path).  The key is a total order up to complete
  record equality, so merging is associative — partial merges inside a
  shard job followed by the cross-shard merge at assembly give the same
  bytes as one global merge.
* **Approximation.**  Shards do not contend with each other: a sharded
  cell models each partition as alone on the fabric.  Sharded results
  are self-consistent and deterministic but are *not* the unsharded
  cell's numbers — which is why sharding is opt-in and why the cache
  keys record the shard geometry.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.network import Network
from repro.core.seeding import stable_seed
from repro.routing.base import RoutingScheme
from repro.sim.flowsim import FlowSimulator
from repro.sim.results import FctResults, FlowRecord
from repro.traffic.flows import Flow
from repro.traffic.matrix import Placement

#: Fixed virtual-shard count: the hash-partition granularity.  Must not
#: depend on ``--shards N`` or per-shard seeds and contents would change
#: with the process count, breaking N-independence.
NUM_VIRTUAL_SHARDS = 8


def virtual_shard_of(flow: Flow) -> int:
    """The virtual shard a flow hashes into (stable across processes)."""
    return stable_seed(
        "flow-shard",
        flow.src_server,
        flow.dst_server,
        flow.size_bytes,
        flow.start_time,
    ) % NUM_VIRTUAL_SHARDS


def partition_flows(flows: Sequence[Flow]) -> List[List[Flow]]:
    """Split flows into :data:`NUM_VIRTUAL_SHARDS` hash partitions.

    Each partition preserves the input order, so a partition fed to the
    simulator admits flows in the same relative order the unsharded cell
    would have.
    """
    parts: List[List[Flow]] = [[] for _ in range(NUM_VIRTUAL_SHARDS)]
    for flow in flows:
        parts[virtual_shard_of(flow)].append(flow)
    return parts


def _record_key(record: FlowRecord):
    return (
        record.start_time,
        record.src_server,
        record.dst_server,
        record.size_bytes,
        record.finish_time,
        record.path,
    )


def merge_records(parts: Sequence[FctResults]) -> FctResults:
    """Merge per-shard record sets into one canonically ordered set.

    Sorting on the full record tuple makes the merge associative:
    records equal under the key are equal outright, so any grouping of
    partial merges yields identical bytes.
    """
    merged = FctResults()
    records: List[FlowRecord] = []
    for part in parts:
        records.extend(part.records)
    records.sort(key=_record_key)
    for record in records:
        merged.add(record)
    return merged


def shard_seed(seed: int, virtual_shard: int) -> int:
    """The simulator seed for one virtual shard of a cell."""
    return stable_seed("shard", seed, virtual_shard)


def simulate_fct_sharded(
    network: Network,
    routing: RoutingScheme,
    placement: Placement,
    flows: Sequence[Flow],
    seed: int = 0,
    shard_index: int = 0,
    shard_count: int = 1,
    hop_latency_s: float = 0.0,
) -> FctResults:
    """Run shard job ``shard_index`` of ``shard_count`` for one cell.

    Returns the canonical merge of this job's virtual shards; assembling
    all ``shard_count`` outputs with :func:`merge_records` yields the
    full sharded cell.  One simulator is reused across virtual shards
    via :meth:`FlowSimulator.reset`, so topology compilation is paid
    once per job.
    """
    if shard_count < 1:
        raise ValueError(f"shard count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard index {shard_index} outside [0, {shard_count})"
        )
    parts = partition_flows(flows)
    simulator: Optional[FlowSimulator] = None
    outputs: List[FctResults] = []
    for virtual in range(shard_index, NUM_VIRTUAL_SHARDS, shard_count):
        part = parts[virtual]
        if not part:
            continue
        if simulator is None:
            simulator = FlowSimulator(
                network,
                routing,
                placement,
                seed=shard_seed(seed, virtual),
                hop_latency_s=hop_latency_s,
            )
        else:
            simulator.reset(seed=shard_seed(seed, virtual))
        outputs.append(simulator.run(part))
    return merge_records(outputs)
