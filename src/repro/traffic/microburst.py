"""Microburst workloads (the Section 3 motivation for flatness).

"This is especially valuable for micro bursts where a rack has a lot of
traffic to send in a short period of time and traffic is well-multiplexed
at the network links (very few racks are bursting at any given point)."

The generator produces exactly that regime: a background of light
uniform traffic over the whole window, plus a small set of bursting
racks that each emit a volley of flows to random destinations within a
burst interval much shorter than the window.  Because only a minority of
racks burst at once, a flat network's transit links are mostly idle for
local use — the oversubscription-masking effect the UDF quantifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.units import DEFAULT_MEAN_FLOW_BYTES, DEFAULT_PARETO_SHAPE
from repro.traffic.flows import Flow, sample_flow_size
from repro.traffic.matrix import CanonicalCluster, TrafficMatrix
from repro.traffic.patterns import uniform


@dataclass(frozen=True)
class MicroburstSpec:
    """Shape of one microburst workload."""

    num_bursting_racks: int
    flows_per_burst: int
    burst_duration: float
    window: float
    background_flows: int = 0
    mean_size: float = DEFAULT_MEAN_FLOW_BYTES
    shape: float = DEFAULT_PARETO_SHAPE
    size_cap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_bursting_racks < 1:
            raise ValueError("need at least one bursting rack")
        if self.flows_per_burst < 1:
            raise ValueError("need at least one flow per burst")
        if not 0 < self.burst_duration <= self.window:
            raise ValueError("burst duration must be within the window")


def microburst_flows(
    cluster: CanonicalCluster,
    spec: MicroburstSpec,
    seed: int = 0,
) -> List[Flow]:
    """Generate a microburst workload in canonical server space.

    Bursting racks are sampled without replacement; each burst starts at
    a uniformly random point of the window and its flows originate from
    the rack's servers toward uniformly random remote servers, all
    within ``burst_duration``.  Background flows (if any) follow the
    uniform matrix across the whole window.
    """
    if spec.num_bursting_racks > cluster.num_racks:
        raise ValueError("more bursting racks than racks")
    rng = random.Random(seed)
    bursting = rng.sample(range(cluster.num_racks), spec.num_bursting_racks)

    flows: List[Flow] = []
    for rack in bursting:
        burst_start = rng.random() * max(
            spec.window - spec.burst_duration, 1e-12
        )
        rack_servers = list(cluster.servers_of(rack))
        for _ in range(spec.flows_per_burst):
            src = rng.choice(rack_servers)
            dst = src
            while cluster.rack_of(dst) == rack:
                dst = rng.randrange(cluster.num_servers)
            flows.append(
                Flow(
                    src_server=src,
                    dst_server=dst,
                    size_bytes=sample_flow_size(
                        rng, spec.mean_size, spec.shape, spec.size_cap
                    ),
                    start_time=burst_start + rng.random() * spec.burst_duration,
                )
            )

    if spec.background_flows:
        background: TrafficMatrix = uniform(cluster)
        for _ in range(spec.background_flows):
            src, dst = background.sample_server_pair(rng)
            flows.append(
                Flow(
                    src_server=src,
                    dst_server=dst,
                    size_bytes=sample_flow_size(
                        rng, spec.mean_size, spec.shape, spec.size_cap
                    ),
                    start_time=rng.random() * spec.window,
                )
            )

    flows.sort(key=lambda f: f.start_time)
    return flows
