"""Tests for incremental failure handling (withdrawals, fail_link)."""

import pytest

from repro.bgp import (
    BgpFabric,
    VrfGraph,
    build_converged_fabric,
    check_path_set_equivalence,
    reconvergence_after_failure,
)
from repro.core.network import build_network
from repro.topology import dring


class TestFailLink:
    def test_requires_convergence_first(self, small_dring):
        fabric = BgpFabric(VrfGraph(small_dring, 2))
        with pytest.raises(RuntimeError):
            fabric.fail_link(0, 2)

    def test_incremental_repair_cheaper_than_cold_start(self, small_dring):
        fabric = build_converged_fabric(small_dring, 2)
        cold_updates = fabric.report.updates_processed
        report = fabric.fail_link(0, 2)
        assert report.updates_processed < cold_updates / 3

    def test_post_failure_paths_exactly_su2_on_degraded_graph(self):
        net = dring(8, 2, servers_per_rack=4)
        fabric = build_converged_fabric(net, 2)
        fabric.fail_link(0, 2)
        # fabric.network was updated in place by fail_link.
        assert not fabric.network.graph.has_edge(0, 2)
        assert check_path_set_equivalence(fabric, exact=True) == []

    def test_unknown_link_rejected(self, small_dring):
        fabric = build_converged_fabric(small_dring, 2)
        with pytest.raises(ValueError):
            fabric.fail_link(0, 1)  # same supernode: no link

    def test_multiple_failures_accumulate(self):
        net = dring(8, 2, servers_per_rack=4)
        fabric = build_converged_fabric(net, 2)
        fabric.fail_link(0, 2)
        fabric.fail_link(1, 3)
        assert check_path_set_equivalence(fabric, exact=True) == []

    def test_metrics_adjust_after_failure(self, small_dring):
        fabric = build_converged_fabric(small_dring, 2)
        before = fabric.metric(0, 2)
        fabric.fail_link(0, 2)
        after = fabric.metric(0, 2)
        # Distance was 1 (metric max(1,2)=2); now distance is 2.
        assert before == 2 and after == 2
        # But the direct path is gone from the installed set.
        assert (0, 2) not in fabric.forwarding_paths(0, 2)


class TestWithdrawalCascade:
    def test_disconnection_withdraws_routes(self):
        # A line 0-1-2: failing (1,2) makes rack 2 unreachable, which
        # must cascade withdrawals instead of leaving stale routes.
        net = build_network([(0, 1), (1, 2)], {0: 1, 1: 1, 2: 1})
        fabric = build_converged_fabric(net, 1)
        assert fabric.metric(0, 2) == 2
        report = fabric.fail_link(1, 2)
        assert report.withdrawals_processed > 0
        with pytest.raises(ValueError):
            fabric.metric(0, 2)
        with pytest.raises(ValueError):
            fabric.metric(2, 0)

    def test_surviving_routes_untouched(self):
        net = build_network([(0, 1), (1, 2)], {0: 1, 1: 1, 2: 1})
        fabric = build_converged_fabric(net, 1)
        fabric.fail_link(1, 2)
        assert fabric.metric(0, 1) == 1


class TestHelperFunction:
    def test_reconvergence_helper_copies_network(self, small_dring):
        edges_before = set(small_dring.graph.edges)
        report = reconvergence_after_failure(small_dring, 2, (0, 2))
        assert set(small_dring.graph.edges) == edges_before
        assert report.rounds >= 1

    def test_helper_rejects_missing_link(self, small_dring):
        with pytest.raises(ValueError):
            reconvergence_after_failure(small_dring, 2, (0, 999))


class TestAddLink:
    def test_requires_convergence_first(self, small_dring):
        fabric = BgpFabric(VrfGraph(small_dring, 2))
        with pytest.raises(RuntimeError):
            fabric.add_link(0, 1)

    def test_fail_then_readd_restores_paths(self):
        net = dring(8, 2, servers_per_rack=4)
        fabric = build_converged_fabric(net, 2)
        original = {
            pair: set(fabric.forwarding_paths(*pair))
            for pair in [(0, 2), (2, 0), (0, 5), (3, 9)]
        }
        fabric.fail_link(0, 2)
        assert set(fabric.forwarding_paths(0, 2)) != original[(0, 2)]
        fabric.add_link(0, 2)
        for pair, paths in original.items():
            assert set(fabric.forwarding_paths(*pair)) == paths
        assert check_path_set_equivalence(fabric, exact=True) == []

    def test_incremental_add_cheaper_than_cold_start(self):
        net = dring(8, 2, servers_per_rack=4)
        fabric = build_converged_fabric(net, 2)
        cold = fabric.report.updates_processed
        fabric.fail_link(0, 2)
        report = fabric.add_link(0, 2)
        assert report.updates_processed < cold / 2

    def test_brand_new_link_improves_distance(self):
        # A line 0-1-2: adding (0, 2) shortens the pair to distance 1.
        from repro.core.network import build_network

        net = build_network([(0, 1), (1, 2)], {0: 1, 1: 1, 2: 1})
        fabric = build_converged_fabric(net, 1)
        assert fabric.metric(0, 2) == 2
        fabric.add_link(0, 2)
        assert fabric.metric(0, 2) == 1
        assert check_path_set_equivalence(fabric, exact=True) == []

    def test_duplicate_link_rejected(self, small_dring):
        fabric = build_converged_fabric(small_dring, 2)
        with pytest.raises(ValueError):
            fabric.add_link(0, 2)

    def test_self_link_rejected(self, small_dring):
        fabric = build_converged_fabric(small_dring, 2)
        with pytest.raises(ValueError):
            fabric.add_link(3, 3)
