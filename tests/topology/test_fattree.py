"""Tests for the k-ary fat-tree constructor."""

import networkx as nx
import pytest

from repro.core.network import NetworkValidationError
from repro.topology import fat_tree, fat_tree_stats


class TestStructure:
    def test_counts_match_formulas(self):
        net = fat_tree(4)
        stats = fat_tree_stats(net)
        assert stats["edge_switches"] == 8
        assert stats["agg_switches"] == 8
        assert stats["core_switches"] == 4
        assert net.num_switches == 20
        assert net.num_servers == 16

    def test_all_switches_use_radix_k(self):
        k = 6
        net = fat_tree(k)
        for switch in net.switches:
            assert net.radix(switch) == k

    def test_only_edge_switches_host_servers(self):
        net = fat_tree(4)
        edge_switches = set(net.graph.graph["edge_switches"])
        for switch in net.switches:
            if switch in edge_switches:
                assert net.servers_at(switch) == 2
            else:
                assert net.servers_at(switch) == 0

    def test_intra_pod_distance_two(self):
        net = fat_tree(4)
        # Edge switches 0 and 1 share pod 0.
        assert nx.shortest_path_length(net.graph, 0, 1) == 2

    def test_cross_pod_distance_four(self):
        net = fat_tree(4)
        # Edge switch 0 (pod 0) to edge switch 2 (pod 1).
        assert nx.shortest_path_length(net.graph, 0, 2) == 4

    def test_connected(self):
        assert nx.is_connected(fat_tree(6).graph)

    def test_rearrangeable_core_wiring(self):
        # Every aggregation switch index j reaches its own k/2 cores, so
        # every core sees exactly one agg per pod.
        k = 4
        net = fat_tree(k)
        half = k // 2
        num_edge = k * half
        cores = [s for s in net.switches if net.servers_at(s) == 0 and s >= 2 * num_edge]
        for core in cores:
            pods_seen = {
                (neighbor - num_edge) // half
                for neighbor in net.graph.neighbors(core)
            }
            assert len(pods_seen) == k


class TestValidation:
    def test_rejects_odd_k(self):
        with pytest.raises(NetworkValidationError):
            fat_tree(5)

    def test_rejects_tiny_k(self):
        with pytest.raises(NetworkValidationError):
            fat_tree(0)

    def test_stats_rejects_non_fattree(self, small_dring):
        with pytest.raises(ValueError):
            fat_tree_stats(small_dring)


class TestTierStudy:
    def test_fat_tree_gain_exceeds_leaf_spine_gain(self):
        from repro.experiments import run_tier_study

        study = run_tier_study(
            fat_tree_ks=(6,), leaf_spine_configs=((12, 4),)
        )
        # The Section 2 framing: the ideal-routing expander gain over a
        # 3-tier Clos clearly exceeds the gain over the 2-tier one.
        assert study.max_fat_tree_gain() > 1.2
        assert study.max_leaf_spine_gain() < 1.2
        assert study.max_fat_tree_gain() > study.max_leaf_spine_gain()

    def test_render(self):
        from repro.experiments import render_tiers, run_tier_study

        study = run_tier_study(
            fat_tree_ks=(6,), leaf_spine_configs=((6, 2),)
        )
        text = render_tiers(study)
        assert "fat-tree" in text and "ideal gain" in text
