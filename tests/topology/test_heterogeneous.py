"""Tests for heterogeneous leaf-spine builds (Section 5.1 future work).

The paper uses leafs and spines with the same line speed "making
comparisons more straightforward" and expects similar results for
heterogeneous configurations; these tests check that expectation holds
in the UDF analysis when uplinks are faster (modeled as trunked
parallel base-rate links).
"""

import pytest

from repro.core import capacity_nsr, nsr, udf
from repro.core.metrics import oversubscription
from repro.topology import flatten, leaf_spine


class TestHeterogeneousBuild:
    def test_uplink_mult_multiplies_link_capacity(self):
        net = leaf_spine(4, 2, uplink_mult=4)
        leaf, spine = 0, net.graph.graph["spines"][0]
        assert net.link_mult(leaf, spine) == 4
        assert net.link_capacity_between(leaf, spine) == 4 * net.link_capacity

    def test_capacity_nsr_scales_with_mult(self):
        base = leaf_spine(12, 4)
        fast = leaf_spine(12, 4, uplink_mult=4)
        assert capacity_nsr(fast).mean == pytest.approx(
            4 * capacity_nsr(base).mean
        )

    def test_port_nsr_counts_lanes(self):
        fast = leaf_spine(12, 4, uplink_mult=4)
        # Port-based NSR counts each lane: 16 uplink lanes per leaf.
        assert nsr(fast).mean == pytest.approx(16 / 12)

    def test_oversubscription_drops_with_mult(self):
        base = leaf_spine(12, 4)
        fast = leaf_spine(12, 4, uplink_mult=2)
        assert oversubscription(fast) == pytest.approx(
            oversubscription(base) / 2
        )

    def test_rejects_bad_mult(self):
        with pytest.raises(ValueError):
            leaf_spine(4, 2, uplink_mult=0)

    def test_name_marks_heterogeneous(self):
        assert "x4" in leaf_spine(4, 2, uplink_mult=4).name


class TestHeterogeneousUdf:
    @pytest.mark.parametrize("mult", [2, 4])
    def test_udf_still_two(self, mult):
        """Section 5.1: "we expect similar results" for heterogeneous
        configurations — the UDF argument goes through unchanged."""
        baseline = leaf_spine(12, 4, uplink_mult=mult)
        flat = flatten(baseline, seed=0)
        assert udf(baseline, flat) == pytest.approx(2.0, rel=0.1)
        assert flat.is_flat()

    def test_flat_rebuild_uses_trunked_links(self):
        baseline = leaf_spine(12, 4, uplink_mult=4)
        flat = flatten(baseline, seed=0)
        # The rebuild needs parallel links somewhere: total lane count
        # must match the equipment even though simple edges cannot.
        total_lanes = sum(m for _u, _v, m in flat.undirected_links())
        baseline_lanes = sum(
            m for _u, _v, m in baseline.undirected_links()
        )
        assert total_lanes >= baseline_lanes - 1  # odd-port trim allowed
