"""Section 7's "Other static networks": Dragonfly and Slim Fly at small scale.

The paper expects flat low-diameter networks like Slim Fly and Dragonfly
to perform well at small scale while noting their routing practicality
is limited (they classically need non-oblivious schemes).  This
experiment puts them under exactly the *oblivious* schemes this
repository deploys — ECMP and Shortest-Union(2) — next to a DRing and an
RRG of comparable size, over uniform and skewed traffic, measuring both
structure (diameter, NSR, spectral gap) and tail FCT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.metrics import spectral_gap
from repro.core.network import Network
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim.flowsim import simulate_fct
from repro.topology import dragonfly, dring, jellyfish, slimfly, xpander
from repro.traffic import (
    CanonicalCluster,
    Placement,
    fb_skewed,
    generate_flows,
    uniform,
)


@dataclass(frozen=True)
class OtherTopoPoint:
    """One (topology, routing) row of the comparison table."""

    topology: str
    routing: str
    racks: int
    servers: int
    network_degree: int
    diameter_hops: float
    spectral_gap: float
    uniform_p99_ms: float
    skewed_p99_ms: float


def candidate_networks(servers_per_rack: int = 4) -> List[Network]:
    """Small-scale instances of the four flat designs, ~30-50 racks.

    Sizes cannot match exactly (each family has its own admissible
    counts); all are in the same few-dozen-rack band with the same
    servers per rack.
    """
    return [
        dring(16, 2, servers_per_rack=servers_per_rack),        # 32 racks, deg 8
        jellyfish(32, 8, servers_per_switch=servers_per_rack, seed=3),
        xpander(7, 4, servers_per_rack=servers_per_rack, seed=3),  # 32 racks, deg 7
        dragonfly(4, 2, servers_per_rack=servers_per_rack),      # 36 racks, deg 5
        slimfly(5, servers_per_rack=servers_per_rack),           # 50 racks, deg 7
    ]


def run_other_topologies(
    servers_per_rack: int = 4,
    flows_per_server: int = 6,
    window: float = 0.01,
    seed: int = 0,
) -> List[OtherTopoPoint]:
    """Fill the Section 7 comparison table."""
    import networkx as nx

    points: List[OtherTopoPoint] = []
    for network in candidate_networks(servers_per_rack):
        cluster = CanonicalCluster(network.num_racks, servers_per_rack)
        placement = Placement(cluster, network)
        workloads = {
            "uniform": generate_flows(
                uniform(cluster),
                flows_per_server * network.num_servers,
                window,
                seed=seed,
                size_cap=10e6,
            ),
            "skewed": generate_flows(
                fb_skewed(cluster, seed=seed),
                flows_per_server * network.num_servers,
                window,
                seed=seed,
                size_cap=10e6,
            ),
        }
        for routing in (
            EcmpRouting(network),
            ShortestUnionRouting(network, 2),
        ):
            p99: Dict[str, float] = {}
            for label, flows in workloads.items():
                results = simulate_fct(
                    network, routing, placement, flows, seed=seed
                )
                p99[label] = results.p99_fct_ms()
            points.append(
                OtherTopoPoint(
                    topology=network.name,
                    routing=routing.name,
                    racks=network.num_racks,
                    servers=network.num_servers,
                    network_degree=network.network_degree(network.racks[0]),
                    diameter_hops=nx.diameter(network.graph),
                    spectral_gap=spectral_gap(network),
                    uniform_p99_ms=p99["uniform"],
                    skewed_p99_ms=p99["skewed"],
                )
            )
    return points


def render_other_topologies(points: List[OtherTopoPoint]) -> str:
    header = (
        f"{'topology':<18}{'routing':>8}{'racks':>7}{'deg':>5}{'diam':>6}"
        f"{'gap':>7}{'uni p99':>9}{'skew p99':>10}"
    )
    lines = [
        "Section 7: other flat topologies under oblivious routing",
        header,
        "-" * len(header),
    ]
    for p in points:
        lines.append(
            f"{p.topology:<18}{p.routing:>8}{p.racks:>7}{p.network_degree:>5}"
            f"{p.diameter_hops:>6.0f}{p.spectral_gap:>7.3f}"
            f"{p.uniform_p99_ms:>9.3f}{p.skewed_p99_ms:>10.3f}"
        )
    return "\n".join(lines)
