"""Tests for applying fault scenarios: purity, composition, OSPF replay."""


from repro.core.network import build_network
from repro.faults import (
    FaultSet,
    FaultSpec,
    apply_fault_set,
    physical_link_events,
    sample_fault_set,
)
from repro.igp import build_converged_igp


def trunked_triangle():
    """0-1 is a 3-cable trunk; 0-2 and 1-2 are single links."""
    return build_network(
        [(0, 1), (0, 1), (0, 1), (0, 2), (1, 2)], {0: 2, 1: 2, 2: 2}
    )


class TestApply:
    def test_returns_a_copy(self, small_dring):
        fault_set = sample_fault_set(small_dring, FaultSpec("link", 0.2), 3)
        before = dict(small_dring.directed_capacities())
        degraded = apply_fault_set(small_dring, fault_set)
        assert degraded is not small_dring
        assert dict(small_dring.directed_capacities()) == before
        assert degraded.total_network_capacity() < (
            small_dring.total_network_capacity()
        )

    def test_trunk_members_decrement(self):
        net = trunked_triangle()
        degraded = apply_fault_set(
            net, FaultSet(removed_links=((0, 1), (0, 1)))
        )
        assert degraded.link_mult(0, 1) == 1
        assert net.link_mult(0, 1) == 3

    def test_switch_failure_isolates_rack(self):
        net = trunked_triangle()
        degraded = apply_fault_set(net, FaultSet(failed_switches=(2,)))
        assert degraded.graph.degree(2) == 0
        groups = degraded.partitioned_racks()
        assert groups[0] == [0, 1]
        assert [2] in groups

    def test_gray_failure_scales_capacity(self):
        net = trunked_triangle()
        degraded = apply_fault_set(
            net, FaultSet(degraded_links=((0, 2, 0.25),))
        )
        assert degraded.link_capacity_scale(0, 2) == 0.25
        assert degraded.link_capacity_between(0, 2) == (
            0.25 * net.link_capacity_between(0, 2)
        )
        # The physical port count is unchanged: gray links still occupy
        # switch radix even while forwarding at reduced rate.
        assert degraded.link_mult(0, 2) == net.link_mult(0, 2)

    def test_overlapping_events_compose(self):
        # The switch failure already removed (1, 2); the explicit link
        # removal and degradation of dead links must be skipped quietly.
        net = trunked_triangle()
        degraded = apply_fault_set(
            net,
            FaultSet(
                removed_links=((1, 2),),
                failed_switches=(2,),
                degraded_links=((0, 2, 0.5),),
            ),
        )
        assert not degraded.graph.has_edge(1, 2)
        assert not degraded.graph.has_edge(0, 2)


class TestPhysicalLinkEvents:
    def test_switch_failure_expands_per_cable(self):
        net = trunked_triangle()
        events = physical_link_events(net, FaultSet(failed_switches=(0,)))
        assert events == [(0, 1), (0, 1), (0, 1), (0, 2)]

    def test_gray_failures_are_silent(self):
        net = trunked_triangle()
        events = physical_link_events(
            net, FaultSet(degraded_links=((0, 1, 0.25),))
        )
        assert events == []

    def test_overlap_capped_at_multiplicity(self):
        net = trunked_triangle()
        events = physical_link_events(
            net,
            FaultSet(removed_links=((0, 2), (0, 2)), failed_switches=()),
        )
        assert events == [(0, 2)]

    def test_events_replay_through_ospf(self, small_dring):
        fault_set = sample_fault_set(small_dring, FaultSpec("link", 0.15), 9)
        fabric = build_converged_igp(small_dring)
        total_rounds = 0
        for u, v in physical_link_events(small_dring, fault_set):
            total_rounds += fabric.fail_link(u, v).rounds
        assert fabric.databases_consistent()
        # The fabric's copy now matches the applied degraded network.
        degraded = apply_fault_set(small_dring, fault_set)
        for u, v, mult in degraded.undirected_links():
            assert fabric.network.link_mult(u, v) == mult
