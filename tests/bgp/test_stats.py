"""Tests for the control-plane state accounting."""

import pytest

from repro.bgp import build_converged_fabric
from repro.bgp.stats import fabric_state, state_cost_sweep
from repro.topology import dring


@pytest.fixture(scope="module")
def fabric():
    return build_converged_fabric(dring(6, 2, servers_per_rack=4), 2)


class TestFabricState:
    def test_vrf_instances(self, fabric):
        stats = fabric_state(fabric)
        assert stats.vrf_instances == 2 * 12

    def test_sessions_match_vrf_edges(self, fabric):
        stats = fabric_state(fabric)
        assert stats.bgp_sessions_total == fabric.vrf_graph.digraph.number_of_edges()

    def test_rib_entries_cover_all_prefixes(self, fabric):
        stats = fabric_state(fabric)
        # Every VRF should know every other rack's prefix (connected
        # fabric), plus possibly its own; bounded by racks * VRFs.
        racks = fabric.network.num_racks
        assert stats.rib_entries_total >= (racks - 1) * racks  # host VRFs
        assert stats.rib_entries_per_router_max <= 2 * racks

    def test_as_path_lengths_sane(self, fabric):
        stats = fabric_state(fabric)
        assert 1.0 <= stats.mean_as_path_length <= stats.max_as_path_length
        assert stats.max_as_path_length <= 12  # diameter + prepending slack

    def test_summary_renders(self, fabric):
        assert "K=2" in fabric_state(fabric).per_router_summary()


class TestStateCostSweep:
    def test_state_grows_with_k(self):
        net = dring(6, 2, servers_per_rack=4)
        sweep = state_cost_sweep(net, ks=(1, 2, 3))
        sessions = [s.bgp_sessions_total for s in sweep]
        vrfs = [s.vrf_instances for s in sweep]
        assert sessions == sorted(sessions)
        assert vrfs == sorted(vrfs)
        assert sweep[0].k == 1 and sweep[-1].k == 3
