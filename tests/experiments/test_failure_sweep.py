"""Tests for the failure-resilience sweep experiment."""

import json

import pytest

from repro.experiments.failure_sweep import (
    DEFAULT_FRACTIONS,
    FAULT_SCHEMES,
    FAULT_TOPOLOGIES,
    build_fault_topology,
    derived_seed,
    failure_table_from_cells,
    render_failure_sweep,
    render_hot_links,
    run_failure_cell,
)
from repro.experiments.runner import Scale, register_scale

TINY = register_scale(
    Scale(
        name="tiny-faults",
        leaf_x=6,
        leaf_y=2,
        dring_m=6,
        dring_n=2,
        dring_servers=48,
        max_flows=120,
        window_seconds=0.02,
        size_cap_bytes=10e6,
    )
)


class TestDerivedSeed:
    def test_stable_and_distinct(self):
        assert derived_seed("a", 1, 0.5) == derived_seed("a", 1, 0.5)
        assert derived_seed("a", 1) != derived_seed("a", 2)

    def test_no_builtin_hash(self):
        # Pinned value: must survive PYTHONHASHSEED and process restarts.
        assert derived_seed("pin") == derived_seed("pin")
        assert isinstance(derived_seed("pin"), int)


class TestTopologies:
    def test_all_default_topologies_build(self):
        for kind in FAULT_TOPOLOGIES:
            net = build_fault_topology(kind, TINY, seed=0)
            assert net.num_servers > 0

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            build_fault_topology("moebius", TINY)


class TestCell:
    def test_cell_is_deterministic(self):
        a = run_failure_cell(
            TINY, "dring", "ecmp", "link", 0.1, trial=0, seed=0
        )
        b = run_failure_cell(
            TINY, "dring", "ecmp", "link", 0.1, trial=0, seed=0
        )
        assert a == b

    def test_cell_is_json_serializable(self):
        cell = run_failure_cell(
            TINY, "rrg", "su2", "link", 0.1, trial=0, seed=0
        )
        assert json.loads(json.dumps(cell)) == cell

    def test_zero_fraction_is_the_healthy_baseline(self):
        cell = run_failure_cell(
            TINY, "dring", "ecmp", "link", 0.0, trial=0, seed=0
        )
        assert cell["throughput_ratio"] == pytest.approx(1.0)
        assert cell["path_ratio"] == pytest.approx(1.0)
        assert cell["fct_ratio"] == pytest.approx(1.0)
        assert cell["ospf_rounds"] == 0
        assert cell["racks_surviving"] == cell["racks_total"]

    def test_schemes_face_identical_scenarios(self):
        ecmp = run_failure_cell(
            TINY, "dring", "ecmp", "link", 0.1, trial=0, seed=0
        )
        su2 = run_failure_cell(
            TINY, "dring", "su2", "link", 0.1, trial=0, seed=0
        )
        assert ecmp["fault_fingerprint"] == su2["fault_fingerprint"]

    def test_link_failures_degrade_throughput(self):
        cell = run_failure_cell(
            TINY, "dring", "su2", "link", 0.1, trial=0, seed=0
        )
        assert 0.0 < cell["throughput_ratio"] <= 1.0 + 1e-9
        assert cell["ospf_rounds"] > 0
        assert cell["links_removed"] > 0

    def test_switch_failures_shrink_the_fabric(self):
        cell = run_failure_cell(
            TINY, "dring", "ecmp", "switch", 0.3, trial=0, seed=0
        )
        assert cell["switches_failed"] > 0
        assert cell["racks_surviving"] < cell["racks_total"]
        assert cell["flows_surviving"] < cell["flows_total"]

    def test_gray_failures_cost_no_reconvergence(self):
        cell = run_failure_cell(
            TINY, "dring", "ecmp", "gray", 0.2, trial=0, seed=0
        )
        assert cell["links_degraded"] > 0
        assert cell["ospf_rounds"] == 0
        assert cell["racks_surviving"] == cell["racks_total"]
        assert cell["throughput_ratio"] <= 1.0 + 1e-9


class TestAggregation:
    def make_cell(self, **overrides):
        cell = {
            "topology": "dring",
            "scheme": "ecmp",
            "kind": "link",
            "fraction": 0.05,
            "trial": 0,
            "throughput_ratio": 0.8,
            "fct_ratio": 1.5,
            "path_ratio": 0.9,
            "racks_surviving": 10,
            "racks_total": 10,
            "ospf_rounds": 4,
            "ospf_lsas": 40,
            "hottest_links": [["0->1", 0.9]],
        }
        cell.update(overrides)
        return cell

    def test_rows_average_over_trials(self):
        cells = [
            self.make_cell(trial=0, throughput_ratio=0.8),
            self.make_cell(trial=1, throughput_ratio=0.6),
        ]
        rows = failure_table_from_cells(cells)
        assert len(rows) == 1
        assert rows[0]["trials"] == 2
        assert rows[0]["throughput_ratio"] == pytest.approx(0.7)

    def test_disconnected_trials_drop_from_fct_mean(self):
        cells = [
            self.make_cell(trial=0, fct_ratio=2.0),
            self.make_cell(trial=1, fct_ratio=None),
        ]
        rows = failure_table_from_cells(cells)
        assert rows[0]["fct_ratio"] == pytest.approx(2.0)

    def test_render_contains_sections_and_rows(self):
        cells = [
            self.make_cell(),
            self.make_cell(kind="switch", topology="rrg", scheme="su2"),
        ]
        text = render_failure_sweep(cells)
        assert "Failure resilience — link faults" in text
        assert "Failure resilience — switch faults" in text
        assert "dring" in text and "rrg" in text

    def test_render_hot_links_picks_worst_fraction(self):
        cells = [
            self.make_cell(fraction=0.02, hottest_links=[["0->1", 0.5]]),
            self.make_cell(fraction=0.10, hottest_links=[["2->3", 0.9]]),
        ]
        text = render_hot_links(cells)
        assert "2->3" in text and "0->1" not in text

    def test_render_hot_links_empty(self):
        assert render_hot_links([self.make_cell(hottest_links=[])]) == ""


class TestDefaults:
    def test_default_grid_meets_acceptance_floor(self):
        # The ISSUE's acceptance criterion: >= 3 topologies x 2 schemes
        # x >= 3 fractions.
        assert len(FAULT_TOPOLOGIES) >= 3
        assert len(FAULT_SCHEMES) == 2
        assert len(DEFAULT_FRACTIONS) >= 3
