"""The flattening transform F(T) from Section 3.1.

Given any topology T, F(T) is a flat network built from the *same
equipment*: the same switches with the same port counts, with all servers
redistributed evenly across every switch and the remaining ports wired
into a random graph.  This is exactly how the paper constructs its RRG
baseline from the leaf-spine (Section 5.1), and it is the object whose
NSR appears in the numerator of the UDF.
"""

from __future__ import annotations

from repro.core.network import Network
from repro.topology.jellyfish import jellyfish_from_equipment


def flatten(
    network: Network,
    seed: int = 0,
    name: str = "",
    spreading: str = "even",
) -> Network:
    """Build F(T): a flat random-graph rebuild of ``network``.

    The result has one switch per original switch (same radix in use),
    the same server total spread evenly (the paper's recipe) or
    radix-proportionally (``spreading="proportional"``, which is what
    heterogeneous equipment needs), and a random graph over the
    leftover ports.
    """
    equipment = network.equipment()
    radixes = [radix for _switch, radix in equipment]
    flat = jellyfish_from_equipment(
        radixes,
        total_servers=network.num_servers,
        link_capacity=network.link_capacity,
        seed=seed,
        name=name or f"flat({network.name})",
        spreading=spreading,
    )
    return flat
