"""Facebook-like traffic matrices (Section 5.2's "real world TMs").

The paper samples rack-level weights measured on two 64-rack Facebook
clusters (Roy et al., SIGCOMM '15): a Hadoop cluster with largely uniform
traffic and a frontend cluster with significant skew.  The raw matrices
are proprietary, so we synthesize matrices with the published
*characteristics* (see DESIGN.md's substitution table):

* **FB uniform** (Hadoop): all rack pairs active, weights drawn from a
  mild lognormal, so the matrix is dense and nearly flat — Hadoop
  shuffles touch every rack with modest imbalance.
* **FB skewed** (frontend): rack *activity* follows a Zipf law — a small
  set of cache/web racks dominates — and pair weight is the product of
  endpoint activities with a sparsification cut, concentrating most
  bytes on a minority of rack pairs.  This is the regime where Figure 4
  shows flat topologies winning, because only a few rack uplinks are
  hot at any time.

Both generators are deterministic in their seed.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.traffic.matrix import CanonicalCluster, RackPair, TrafficMatrix

#: Zipf exponent for frontend rack activity; chosen so the top ~10% of
#: racks carry the majority of bytes, matching the skew Roy et al. report.
SKEW_EXPONENT = 1.2

#: Lognormal sigma for the Hadoop-like matrix (mild variation).
UNIFORM_SIGMA = 0.25


def fb_uniform(
    cluster: CanonicalCluster, seed: int = 0, name: str = "FB uniform"
) -> TrafficMatrix:
    """Dense, nearly flat rack-level matrix (Hadoop-cluster-like)."""
    rng = random.Random(seed)
    weights: Dict[RackPair, float] = {}
    for r1 in range(cluster.num_racks):
        for r2 in range(cluster.num_racks):
            if r1 == r2:
                continue
            weights[(r1, r2)] = rng.lognormvariate(0.0, UNIFORM_SIGMA)
    return TrafficMatrix(cluster, weights, name=name)


def fb_skewed(
    cluster: CanonicalCluster,
    seed: int = 0,
    name: str = "FB skewed",
    keep_fraction: float = 0.5,
) -> TrafficMatrix:
    """Skewed rack-level matrix (frontend-cluster-like).

    Rack activity ``a_r ∝ rank^-SKEW_EXPONENT`` over a random rack
    ranking; the pair weight is ``a_r1 * a_r2`` with small multiplicative
    noise, and only the heaviest ``keep_fraction`` of pairs is kept so
    cold pairs carry no traffic at all (frontend matrices are sparse).
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    rng = random.Random(seed)
    ranking = list(range(cluster.num_racks))
    rng.shuffle(ranking)
    activity = {
        rack: (rank + 1) ** (-SKEW_EXPONENT)
        for rank, rack in enumerate(ranking)
    }
    raw: Dict[RackPair, float] = {}
    for r1 in range(cluster.num_racks):
        for r2 in range(cluster.num_racks):
            if r1 == r2:
                continue
            noise = rng.lognormvariate(0.0, 0.3)
            raw[(r1, r2)] = activity[r1] * activity[r2] * noise
    keep = max(1, int(len(raw) * keep_fraction))
    heaviest = sorted(raw, key=raw.get, reverse=True)[:keep]
    weights = {pair: raw[pair] for pair in heaviest}
    return TrafficMatrix(cluster, weights, name=name)


def skew_index(tm: TrafficMatrix) -> float:
    """Fraction of total weight carried by the heaviest 10% of pairs.

    A diagnostic used in tests: close to 0.1 for a flat matrix, large
    (> 0.5) for a frontend-like matrix.
    """
    values = sorted(tm.weights.values(), reverse=True)
    top = max(1, len(values) // 10)
    return sum(values[:top]) / sum(values)
