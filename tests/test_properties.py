"""Cross-cutting property-based tests over randomly generated instances.

These complement the per-module property tests: each property here spans
several subsystems (topology generation -> routing -> control plane ->
simulation) and is checked over hypothesis-generated instances rather
than fixtures.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import check_theorem1, build_converged_fabric
from repro.core.metrics import leaf_spine_udf, udf
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.routing.shortest_union import shortest_union_paths
from repro.sim import simulate_fct
from repro.topology import dring, flatten, jellyfish, leaf_spine
from repro.traffic import CanonicalCluster, Flow, Placement


@st.composite
def dring_params(draw):
    m = draw(st.integers(min_value=5, max_value=10))
    n = draw(st.integers(min_value=1, max_value=3))
    return m, n


@st.composite
def rrg_params(draw):
    switches = draw(st.integers(min_value=6, max_value=14))
    degree = draw(st.integers(min_value=3, max_value=min(5, switches - 1)))
    if switches * degree % 2:
        switches += 1
    seed = draw(st.integers(min_value=0, max_value=1000))
    return switches, degree, seed


class TestTheorem1Universality:
    @given(params=dring_params(), k=st.integers(min_value=1, max_value=3))
    @settings(max_examples=12, deadline=None)
    def test_theorem1_on_random_drings(self, params, k):
        m, n = params
        net = dring(m, n, servers_per_rack=2)
        assert check_theorem1(net, k) == []

    @given(params=rrg_params(), k=st.integers(min_value=1, max_value=3))
    @settings(max_examples=12, deadline=None)
    def test_theorem1_on_random_rrgs(self, params, k):
        switches, degree, seed = params
        net = jellyfish(switches, degree, servers_per_switch=2, seed=seed)
        assert check_theorem1(net, k) == []


class TestShortestUnionInvariants:
    @given(params=rrg_params(), k=st.integers(min_value=1, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_path_set_structure(self, params, k):
        switches, degree, seed = params
        net = jellyfish(switches, degree, servers_per_switch=2, seed=seed)
        rng = random.Random(seed)
        pairs = rng.sample(list(net.rack_pairs()), 5)
        for src, dst in pairs:
            dist = nx.shortest_path_length(net.graph, src, dst)
            paths = shortest_union_paths(net, src, dst, k)
            lengths = [len(p) - 1 for p in paths]
            # Contains every shortest path...
            shortest = {
                tuple(p) for p in nx.all_shortest_paths(net.graph, src, dst)
            }
            assert shortest <= set(paths)
            # ...all simple, within the length envelope.
            for path, length in zip(paths, lengths):
                assert len(set(path)) == len(path)
                assert dist <= length <= max(dist, k)

    @given(params=rrg_params())
    @settings(max_examples=8, deadline=None)
    def test_bgp_realizes_su2_on_random_graphs(self, params):
        switches, degree, seed = params
        net = jellyfish(switches, degree, servers_per_switch=2, seed=seed)
        fabric = build_converged_fabric(net, 2)
        rng = random.Random(seed)
        pairs = rng.sample(list(net.rack_pairs()), 5)
        for src, dst in pairs:
            assert set(fabric.forwarding_paths(src, dst)) == set(
                shortest_union_paths(net, src, dst, 2)
            )


class TestUdfUniversality:
    @given(
        x=st.integers(min_value=2, max_value=16),
        y=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=15, deadline=None)
    def test_flat_rebuild_udf_close_to_closed_form(self, x, y, seed):
        baseline = leaf_spine(x, y)
        flat = flatten(baseline, seed=seed)
        assert udf(baseline, flat) == pytest.approx(
            leaf_spine_udf(x, y), rel=0.25
        )
        assert flat.is_flat()


class TestIdealFlowInvariants:
    @given(
        scale=st.floats(min_value=0.1, max_value=10.0),
        seed=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=10, deadline=None)
    def test_alpha_inversely_proportional_to_demand(self, scale, seed):
        from repro.sim.idealflow import ideal_throughput

        net = jellyfish(8, 3, servers_per_switch=2, seed=seed)
        rng = random.Random(seed)
        pairs = rng.sample(list(net.rack_pairs()), 4)
        base = {pair: 1.0 for pair in pairs}
        scaled = {pair: scale for pair in pairs}
        alpha_base = ideal_throughput(net, base)
        alpha_scaled = ideal_throughput(net, scaled)
        assert alpha_scaled * scale == pytest.approx(alpha_base, rel=1e-4)

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_removing_a_link_never_helps(self, seed):
        from repro.sim.idealflow import ideal_throughput

        net = jellyfish(8, 4, servers_per_switch=2, seed=seed)
        rng = random.Random(seed)
        pairs = rng.sample(list(net.rack_pairs()), 4)
        demands = {pair: 1.0 for pair in pairs}
        alpha_full = ideal_throughput(net, demands)
        degraded = net.copy()
        links = [(u, v) for u, v, _m in degraded.undirected_links()]
        u, v = rng.choice(links)
        degraded.graph.remove_edge(u, v)
        import networkx as nx

        if not nx.is_connected(degraded.graph):
            return
        alpha_degraded = ideal_throughput(degraded, demands)
        assert alpha_degraded <= alpha_full * (1 + 1e-6)

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_oblivious_never_beats_ideal(self, seed):
        from repro.sim.idealflow import ideal_throughput, oblivious_throughput

        net = jellyfish(8, 3, servers_per_switch=2, seed=seed)
        rng = random.Random(seed)
        pairs = rng.sample(list(net.rack_pairs()), 4)
        demands = {pair: 1.0 for pair in pairs}
        ideal = ideal_throughput(net, demands)
        for routing in (EcmpRouting(net), ShortestUnionRouting(net, 2)):
            assert oblivious_throughput(net, routing, demands) <= ideal * (
                1 + 1e-6
            )


class TestSimulatorInvariants:
    @given(
        sizes=st.lists(
            st.floats(min_value=1e4, max_value=5e6),
            min_size=1,
            max_size=12,
        ),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=15, deadline=None)
    def test_fct_never_beats_line_rate(self, sizes, seed):
        net = leaf_spine(4, 2)
        cluster = CanonicalCluster(6, 4)
        placement = Placement(cluster, net)
        rng = random.Random(seed)
        flows = []
        for size in sizes:
            src = rng.randrange(cluster.num_servers)
            dst = rng.randrange(cluster.num_servers)
            if src == dst:
                dst = (dst + 1) % cluster.num_servers
            flows.append(Flow(src, dst, size, rng.random() * 1e-3))
        results = simulate_fct(net, EcmpRouting(net), placement, flows)
        line_rate_bps = net.server_link_capacity * 1e9 / 8.0
        for record in results.records:
            ideal = record.size_bytes / line_rate_bps
            assert record.fct_seconds >= ideal * (1 - 1e-9)

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_su2_never_loses_to_ecmp_on_adjacent_r2r_throughput(self, seed):
        from repro.sim import cs_throughput

        net = dring(6, 2, servers_per_rack=4)
        ecmp = cs_throughput(net, EcmpRouting(net), 4, 4, seed=seed)
        su2 = cs_throughput(
            net, ShortestUnionRouting(net, 2), 4, 4, seed=seed
        )
        assert su2.mean_flow_gbps >= ecmp.mean_flow_gbps * (1 - 1e-9)
