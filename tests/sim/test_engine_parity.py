"""Engine-vs-legacy parity: the compiled stack must change nothing.

The array-backed engine (:mod:`repro.sim.engine`) replaces per-event
Python rebuilds with persistent integer-indexed structures, but the
contract of the refactor is *bit-for-bit* equivalence: same RNG draws,
same float summation order, same results.  These tests pin that contract
against the verbatim seed implementations kept in
:mod:`tests.sim.legacy_reference` — across all six routing schemes,
seeded random topologies, fault-degraded networks, and the fig4/fig5
experiment cells.
"""

from __future__ import annotations

import pytest

from repro.core.units import transfer_seconds
from repro.experiments import SMALL, run_fig4_cell, run_fig5_cell
from repro.experiments.fig4_fct import _pattern_flows, fig4_patterns
from repro.experiments.runner import build_scheme
from repro.faults import FaultSpec, apply_fault_set, sample_fault_set
from repro.routing import (
    CoarseAdaptiveRouting,
    EcmpRouting,
    KShortestPathsRouting,
    ShortestUnionRouting,
    VlbRouting,
)
from repro.sim import FlowSimulator, commodity_throughput, simulate_fct
from repro.sim.results import fct_table
from repro.sim.throughput import cs_throughput, place_cs_concrete
from repro.topology import dring, jellyfish, leaf_spine, xpander
from repro.traffic import (
    CanonicalCluster,
    Placement,
    fb_skewed,
    generate_flows,
    uniform,
)

from tests.sim.legacy_reference import (
    LegacyFlowSimulator,
    legacy_commodity_throughput,
    legacy_simulate_fct,
)

#: Scheme factories, one per routing implementation the engine compiles.
SCHEMES = {
    "ecmp": EcmpRouting,
    "su2": lambda net: ShortestUnionRouting(net, 2),
    "su3": lambda net: ShortestUnionRouting(net, 3),
    "ksp": KShortestPathsRouting,
    "vlb": VlbRouting,
    "adaptive": CoarseAdaptiveRouting,
}


def assert_identical_results(engine, legacy):
    """Exact (not approximate) equality of two FctResults."""
    assert engine.num_flows == legacy.num_flows
    for got, want in zip(engine.records, legacy.records):
        assert got.src_server == want.src_server
        assert got.dst_server == want.dst_server
        assert got.size_bytes == want.size_bytes
        assert got.start_time == want.start_time
        assert got.finish_time == want.finish_time
        assert got.path == want.path


def run_both(network, scheme_name, flows, seed=0):
    routing_a = SCHEMES[scheme_name](network)
    routing_b = SCHEMES[scheme_name](network)
    cluster = CanonicalCluster(
        network.num_racks, min(network.servers_at(r) for r in network.racks)
    )
    placement = Placement(cluster, network)
    engine = simulate_fct(network, routing_a, placement, flows, seed=seed)
    legacy = legacy_simulate_fct(network, routing_b, placement, flows, seed=seed)
    return engine, legacy


def workload(network, num_flows=250, seed=3):
    cluster = CanonicalCluster(
        network.num_racks, min(network.servers_at(r) for r in network.racks)
    )
    return cluster, generate_flows(
        uniform(cluster), num_flows, 0.01, seed=seed, size_cap=5e6
    )


class TestFctParity:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_dring_all_schemes(self, small_dring, scheme):
        _cluster, flows = workload(small_dring)
        engine, legacy = run_both(small_dring, scheme, flows)
        assert_identical_results(engine, legacy)

    @pytest.mark.parametrize("scheme", ["ecmp", "su2", "ksp", "vlb"])
    def test_leafspine_schemes(self, small_leafspine, scheme):
        _cluster, flows = workload(small_leafspine)
        engine, legacy = run_both(small_leafspine, scheme, flows)
        assert_identical_results(engine, legacy)

    @pytest.mark.parametrize("topo_seed", [1, 2, 11])
    @pytest.mark.parametrize("scheme", ["ecmp", "su2", "adaptive"])
    def test_seeded_random_topologies(self, topo_seed, scheme):
        net = jellyfish(10, 4, servers_per_switch=3, seed=topo_seed)
        _cluster, flows = workload(net, num_flows=200, seed=topo_seed)
        engine, legacy = run_both(net, scheme, flows, seed=topo_seed)
        assert_identical_results(engine, legacy)

    def test_xpander(self):
        net = xpander(4, 3, servers_per_rack=3, seed=7)
        _cluster, flows = workload(net, num_flows=200)
        engine, legacy = run_both(net, "su2", flows)
        assert_identical_results(engine, legacy)

    @pytest.mark.parametrize(
        "kind,fraction", [("link", 0.1), ("gray", 0.2), ("correlated", 0.1)]
    )
    def test_degraded_networks(self, kind, fraction):
        base = dring(6, 2, servers_per_rack=4)
        fault_set = sample_fault_set(
            base, FaultSpec(kind=kind, fraction=fraction), seed=5
        )
        net = apply_fault_set(base, fault_set)
        _cluster, flows = workload(net, num_flows=200)
        engine, legacy = run_both(net, "su2", flows)
        assert_identical_results(engine, legacy)

    def test_skewed_pattern_and_nonzero_seed(self, small_dring):
        cluster = CanonicalCluster(small_dring.num_racks, 4)
        flows = generate_flows(
            fb_skewed(cluster, seed=9), 250, 0.01, seed=9, size_cap=5e6
        )
        engine, legacy = run_both(small_dring, "su3", flows, seed=9)
        assert_identical_results(engine, legacy)

    def test_hop_latency_parity(self, small_dring):
        cluster = CanonicalCluster(small_dring.num_racks, 4)
        placement = Placement(cluster, small_dring)
        _cluster, flows = workload(small_dring, num_flows=100)
        engine = FlowSimulator(
            small_dring, EcmpRouting(small_dring), placement,
            hop_latency_s=10e-6,
        ).run(flows)
        legacy = LegacyFlowSimulator(
            small_dring, EcmpRouting(small_dring), placement,
            hop_latency_s=10e-6,
        ).run(flows)
        assert_identical_results(engine, legacy)

    def test_utilization_parity(self, small_dring):
        cluster = CanonicalCluster(small_dring.num_racks, 4)
        placement = Placement(cluster, small_dring)
        _cluster, flows = workload(small_dring, num_flows=150)
        engine = FlowSimulator(small_dring, EcmpRouting(small_dring), placement)
        legacy = LegacyFlowSimulator(
            small_dring, EcmpRouting(small_dring), placement
        )
        engine.run(flows)
        legacy.run(flows)
        assert engine.link_utilization() == legacy.link_utilization()

    def test_single_flow_line_rate(self, small_dring):
        cluster = CanonicalCluster(small_dring.num_racks, 4)
        placement = Placement(cluster, small_dring)
        from repro.traffic import Flow

        flows = [Flow(0, 23, 1e6, 0.0)]
        engine, legacy = run_both(small_dring, "ecmp", flows)
        assert_identical_results(engine, legacy)
        expected = transfer_seconds(1e6, small_dring.server_link_capacity)
        assert engine.records[0].fct_seconds == pytest.approx(expected)


class TestThroughputParity:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_uniform_demands(self, small_dring, scheme):
        demands = {
            (r1, r2): 4.0
            for r1 in small_dring.racks
            for r2 in small_dring.racks
            if r1 != r2
        }
        engine = commodity_throughput(
            small_dring, SCHEMES[scheme](small_dring), demands
        )
        legacy = legacy_commodity_throughput(
            small_dring, SCHEMES[scheme](small_dring), demands
        )
        assert engine.num_flows == legacy.num_flows
        assert engine.total_gbps == pytest.approx(
            legacy.total_gbps, rel=1e-9, abs=1e-9
        )
        for pair, gbps in legacy.per_commodity_gbps.items():
            assert engine.per_commodity_gbps[pair] == pytest.approx(
                gbps, rel=1e-9, abs=1e-9
            )

    def test_cs_instance(self, small_dring):
        placement = place_cs_concrete(small_dring, 8, 12, seed=2)
        demands = {}
        for c_rack, clients in placement.clients_per_rack.items():
            for s_rack, servers in placement.servers_per_rack.items():
                if c_rack != s_rack:
                    demands[(c_rack, s_rack)] = float(clients * servers)
        caps_src = {
            rack: count * small_dring.server_link_capacity
            for rack, count in placement.clients_per_rack.items()
        }
        caps_dst = {
            rack: count * small_dring.server_link_capacity
            for rack, count in placement.servers_per_rack.items()
        }
        engine = commodity_throughput(
            small_dring, ShortestUnionRouting(small_dring, 2), demands,
            src_host_capacity=caps_src, dst_host_capacity=caps_dst,
        )
        legacy = legacy_commodity_throughput(
            small_dring, ShortestUnionRouting(small_dring, 2), demands,
            src_host_capacity=caps_src, dst_host_capacity=caps_dst,
        )
        assert engine.per_commodity_gbps == legacy.per_commodity_gbps


class TestExperimentCells:
    """The acceptance bar: fig4/fig5 smoke cells byte-identical."""

    def test_fig4_cell_table_byte_identical(self):
        pattern, scheme = "A2A", "DRing (su2)"
        engine = run_fig4_cell(SMALL, pattern, scheme, seed=0)

        spec = {p.label: p for p in fig4_patterns(SMALL, seed=0)}[pattern]
        tut = build_scheme(scheme, SMALL, seed=0)
        flows = _pattern_flows(SMALL, spec, 0, 0.30)
        placement = tut.placement(shuffle=spec.random_placement, seed=0)
        legacy = legacy_simulate_fct(
            tut.network, tut.routing, placement, flows, seed=0
        )

        assert_identical_results(engine, legacy)
        rows_engine = {pattern: {scheme: engine}}
        rows_legacy = {pattern: {scheme: legacy}}
        assert fct_table(rows_engine, metric="median") == fct_table(
            rows_legacy, metric="median"
        )
        assert fct_table(rows_engine, metric="p99") == fct_table(
            rows_legacy, metric="p99"
        )

    def test_fig5_cell_byte_identical(self):
        cell = run_fig5_cell(SMALL, "su2", 24, 24, seed=0)

        dr = dring(
            SMALL.dring_m, SMALL.dring_n, total_servers=SMALL.dring_servers
        )
        ls = leaf_spine(SMALL.leaf_x, SMALL.leaf_y)
        assert cs_throughput(
            dr, ShortestUnionRouting(dr, 2), 24, 24, seed=0
        ).mean_flow_gbps == cell["dring_gbps"]

        def legacy_cs(network, routing, c, s):
            placed = place_cs_concrete(network, c, s, seed=0)
            demands = {
                (cr, sr): float(nc * ns)
                for cr, nc in placed.clients_per_rack.items()
                for sr, ns in placed.servers_per_rack.items()
                if cr != sr
            }
            return legacy_commodity_throughput(
                network, routing, demands,
                src_host_capacity={
                    r: n * network.server_link_capacity
                    for r, n in placed.clients_per_rack.items()
                },
                dst_host_capacity={
                    r: n * network.server_link_capacity
                    for r, n in placed.servers_per_rack.items()
                },
            )

        assert cell["dring_gbps"] == legacy_cs(
            dr, ShortestUnionRouting(dr, 2), 24, 24
        ).mean_flow_gbps
        assert cell["leafspine_gbps"] == legacy_cs(
            ls, EcmpRouting(ls), 24, 24
        ).mean_flow_gbps
