"""Output-queued link with serialization, propagation and drop-tail.

Each directed link of the physical topology (plus every server up/down
link) becomes one :class:`LinkQueue`: packets serialize one at a time at
the link rate, wait in a bounded FIFO while the link is busy, and are
dropped at the tail when the buffer is full — the loss signal TCP's
congestion control feeds on.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.sim.packet.core import EventQueue, Packet

#: Default buffer: 100 full-size packets, a common shallow ToR setting.
DEFAULT_BUFFER_BYTES = 100 * 1_500

#: Default per-hop propagation delay (intra-DC fiber, ~200 m).
DEFAULT_PROPAGATION_S = 1e-6


class LinkQueue:
    """One directed link: FIFO queue + serializer + propagation delay."""

    def __init__(
        self,
        name: str,
        rate_gbps: float,
        events: EventQueue,
        deliver: Callable[[Packet], None],
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        propagation_s: float = DEFAULT_PROPAGATION_S,
        ecn_threshold_bytes: Optional[int] = None,
    ) -> None:
        if rate_gbps <= 0:
            raise ValueError("link rate must be positive")
        if buffer_bytes <= 0:
            raise ValueError("buffer must be positive")
        if ecn_threshold_bytes is not None and ecn_threshold_bytes <= 0:
            raise ValueError("ECN threshold must be positive")
        self.name = name
        self.bytes_per_second = rate_gbps * 1e9 / 8.0
        self.events = events
        self.deliver = deliver
        self.buffer_bytes = buffer_bytes
        self.propagation_s = propagation_s
        #: DCTCP-style instantaneous marking threshold (None = no ECN).
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.marked_packets = 0

        self._queue: Deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False

        # Counters for tests and utilization reports.
        self.transmitted_packets = 0
        self.transmitted_bytes = 0
        self.dropped_packets = 0
        self.peak_queue_bytes = 0

    # ------------------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Accept a packet for transmission; False means tail-dropped.

        With an ECN threshold configured, a packet arriving to a queue
        at or above the threshold is marked CE instead of waiting for a
        drop — the DCTCP congestion signal.
        """
        if self._busy:
            if self._queued_bytes + packet.size_bytes > self.buffer_bytes:
                self.dropped_packets += 1
                return False
            if (
                self.ecn_threshold_bytes is not None
                and not packet.is_ack
                and self._queued_bytes >= self.ecn_threshold_bytes
            ):
                packet.ecn = True
                self.marked_packets += 1
            self._queue.append(packet)
            self._queued_bytes += packet.size_bytes
            if self._queued_bytes > self.peak_queue_bytes:
                self.peak_queue_bytes = self._queued_bytes
            return True
        self._transmit(packet)
        return True

    def _transmit(self, packet: Packet) -> None:
        self._busy = True
        serialization = packet.size_bytes / self.bytes_per_second
        self.transmitted_packets += 1
        self.transmitted_bytes += packet.size_bytes
        # The wire is free again after serialization; the packet arrives
        # at the other end one propagation delay later.
        self.events.schedule(serialization, self._serialization_done)
        self.events.schedule(
            serialization + self.propagation_s,
            lambda packet=packet: self.deliver(packet),
        )

    def _serialization_done(self) -> None:
        if self._queue:
            packet = self._queue.popleft()
            self._queued_bytes -= packet.size_bytes
            self._transmit(packet)
        else:
            self._busy = False

    # ------------------------------------------------------------------

    @property
    def queue_depth_bytes(self) -> int:
        return self._queued_bytes

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent transmitting."""
        if elapsed <= 0:
            return 0.0
        return min(
            1.0, self.transmitted_bytes / (self.bytes_per_second * elapsed)
        )
