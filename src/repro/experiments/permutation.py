"""Permutation throughput: a boundary case for flat networks.

The expander papers ([22, 23]) report how much of each server's line
rate a topology sustains when every rack sends to one other rack.  At
*hyperscale with MPTCP over many paths*, expanders excel at this; at the
moderate scale this repository targets, under deployable oblivious
routing, the measurement comes out the other way: the leaf-spine's
symmetric two-hop fabric sustains exactly ``y/x`` of line rate per
server on *any* rack permutation, while the flat rebuilds lose a factor
~2 to transit interference and split imbalance (and even 8-shortest-path
or VLB routing does not close the gap at this size).

That is consistent with the paper's actual claims — flat networks win by
*absorbing skew* and are merely "comparable" on averaged uniform traffic;
a single rack-permutation is the adversarial pattern where Clos symmetry
shines.  The study exists to mark that boundary honestly (see
EXPERIMENTS.md E24).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.network import Network
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim.throughput import tm_throughput
from repro.topology import dring, flatten, leaf_spine


@dataclass(frozen=True)
class PermutationPoint:
    """Normalized permutation throughput for one (topology, routing)."""

    topology: str
    routing: str
    mean_fraction: float
    worst_fraction: float


def _rack_permutation(
    racks: List[int], rng: random.Random
) -> Dict[Tuple[int, int], int]:
    targets = racks[:]
    while True:
        rng.shuffle(targets)
        if all(a != b for a, b in zip(racks, targets)):
            return dict(zip(racks, targets))


def permutation_throughput(
    network: Network, seed: int = 0
) -> PermutationPoint:
    """One topology's normalized throughput under a rack permutation.

    Each rack sends to its permutation target with one flow per server
    (the fairness weight), so ``mean_fraction`` is the average per-server
    share of line rate and ``worst_fraction`` the unluckiest rack's.
    """
    rng = random.Random(seed)
    mapping = _rack_permutation(list(network.racks), rng)
    demands = {
        (src, dst): float(network.servers_at(src))
        for src, dst in mapping.items()
    }
    routing = (
        ShortestUnionRouting(network, 2)
        if network.is_flat()
        else EcmpRouting(network)
    )
    report = tm_throughput(network, routing, demands)
    line_rate = network.server_link_capacity
    fractions = [
        rate / demands[pair] / line_rate
        for pair, rate in report.per_commodity_gbps.items()
    ]
    return PermutationPoint(
        topology=network.name,
        routing=routing.name,
        mean_fraction=sum(fractions) / len(fractions),
        worst_fraction=min(fractions),
    )


def run_permutation_study(
    leaf_x: int = 12, leaf_y: int = 4, seed: int = 0
) -> List[PermutationPoint]:
    """Leaf-spine vs its flat rebuild vs a DRing, same server totals."""
    ls = leaf_spine(leaf_x, leaf_y)
    rrg = flatten(ls, seed=seed, name="rrg")
    ring = dring(12, 2, total_servers=ls.num_servers)
    return [
        permutation_throughput(net, seed=seed) for net in (ls, rrg, ring)
    ]


def render_permutation(points: List[PermutationPoint]) -> str:
    header = f"{'topology':<22}{'routing':>9}{'mean frac':>11}{'worst frac':>12}"
    lines = [
        "Permutation throughput (fraction of server line rate)",
        header,
        "-" * len(header),
    ]
    for p in points:
        lines.append(
            f"{p.topology:<22}{p.routing:>9}{p.mean_fraction:>11.3f}"
            f"{p.worst_fraction:>12.3f}"
        )
    return "\n".join(lines)
