"""Interprocedural (deep) lint: whole-package dataflow analyses.

``repro lint --deep`` builds one :class:`~repro.lint.flow.program.Program`
over the ``repro`` package, derives a call graph, and runs every
registered :class:`~repro.lint.flow.registry.FlowRule` against it.  Deep
rules emit the same :class:`~repro.lint.findings.Finding` objects as the
per-file rules, so ``# repro-lint: disable=...`` comments, the text/JSON
reporters, ``--baseline`` and CI gating all apply unchanged.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import CallGraph, build_call_graph
from repro.lint.flow.program import Program
from repro.lint.flow.registry import (
    FLOW_REGISTRY,
    FlowRule,
    all_flow_rules,
    flow_rules_by_name,
    register_flow_rule,
)
from repro.lint.suppressions import collect_suppressions

__all__ = [
    "FLOW_REGISTRY",
    "FlowRule",
    "all_flow_rules",
    "build_call_graph",
    "CallGraph",
    "deep_lint_paths",
    "flow_rules_by_name",
    "Program",
    "register_flow_rule",
]


def _display_path(path: str) -> str:
    """Render program paths the way the per-file engine does: relative
    to the working directory whenever they live under it."""
    try:
        relative = os.path.relpath(path)
    except ValueError:  # different drive (Windows)
        return path
    return path if relative.startswith("..") else relative


def _within(path: pathlib.Path, roots: List[pathlib.Path]) -> bool:
    return any(root == path or root in path.parents for root in roots)


def deep_lint_paths(
    paths: Sequence[str],
    rule_names: Optional[Sequence[str]] = None,
    package: str = "repro",
) -> Tuple[List[Finding], Dict[str, float]]:
    """Run the deep rules over the package located under ``paths``.

    The whole package is always analyzed (interprocedural facts need
    every module), but findings are reported only for files under the
    requested paths — so a changed-files pre-commit invocation gates
    exactly the files it was handed.  Returns ``(findings, stats)``
    where ``stats`` is the call graph's resolution summary.
    """
    program = Program.from_paths(
        [pathlib.Path(p) for p in paths], package
    )
    if program is None:
        return [], {}
    graph = build_call_graph(program)
    findings: List[Finding] = []
    for rule in flow_rules_by_name(rule_names):
        findings.extend(rule.check(graph))

    roots = [pathlib.Path(p).resolve() for p in paths]
    suppressions = {
        module.path: collect_suppressions(module.source)
        for module in program.modules.values()
    }
    kept: List[Finding] = []
    for finding in findings:
        if not _within(pathlib.Path(finding.path).resolve(), roots):
            continue
        index = suppressions.get(finding.path)
        if index is not None and index.suppresses(finding):
            continue
        kept.append(
            Finding(
                path=_display_path(finding.path),
                line=finding.line,
                column=finding.column,
                rule=finding.rule,
                message=finding.message,
            )
        )
    return sorted(set(kept)), graph.resolution_stats()
