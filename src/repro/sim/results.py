"""Result containers and statistics for the simulators.

Figure 4 reports median and 99th-percentile flow completion times in
milliseconds; Figure 5 reports average throughputs; Figure 6 reports
ratios of 99th-percentile FCTs.  Percentiles use linear interpolation
(numpy's default), which matters at the small sample sizes of quick
benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.units import seconds_to_ms


@dataclass(frozen=True)
class FlowRecord:
    """One completed flow."""

    src_server: int
    dst_server: int
    size_bytes: float
    start_time: float
    finish_time: float
    path: Tuple[int, ...]

    @property
    def fct_seconds(self) -> float:
        return self.finish_time - self.start_time

    @property
    def fct_ms(self) -> float:
        return seconds_to_ms(self.fct_seconds)

    @property
    def throughput_gbps(self) -> float:
        return self.size_bytes * 8 / 1e9 / self.fct_seconds

    def slowdown(self, line_rate_gbps: float) -> float:
        """FCT normalized to the flow's line-rate ideal (>= 1).

        The standard "FCT slowdown" metric: 1.0 means the flow ran at
        full server line rate end to end; 3.0 means congestion (or
        sharing) tripled its completion time.
        """
        ideal = self.size_bytes * 8 / (line_rate_gbps * 1e9)
        return self.fct_seconds / ideal


@dataclass
class FctResults:
    """All completed flows of one simulation run."""

    records: List[FlowRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._fcts_ms: np.ndarray = np.array([])
        self._dirty = True

    def add(self, record: FlowRecord) -> None:
        if record.finish_time < record.start_time:
            raise ValueError("flow finished before it started")
        self.records.append(record)
        self._dirty = True

    def _fcts(self) -> np.ndarray:
        if self._dirty:
            self._fcts_ms = np.array([r.fct_ms for r in self.records])
            self._dirty = False
        return self._fcts_ms

    @property
    def num_flows(self) -> int:
        return len(self.records)

    def median_fct_ms(self) -> float:
        return float(np.percentile(self._fcts(), 50))

    def p99_fct_ms(self) -> float:
        return float(np.percentile(self._fcts(), 99))

    def mean_fct_ms(self) -> float:
        return float(self._fcts().mean())

    def percentile_fct_ms(self, q: float) -> float:
        return float(np.percentile(self._fcts(), q))

    def mean_slowdown(self, line_rate_gbps: float = 10.0) -> float:
        """Average FCT slowdown; robust to the size mix, unlike raw FCT."""
        if not self.records:
            raise ValueError("no flows recorded")
        return float(
            np.mean([r.slowdown(line_rate_gbps) for r in self.records])
        )

    def p99_slowdown(self, line_rate_gbps: float = 10.0) -> float:
        """99th-percentile FCT slowdown."""
        if not self.records:
            raise ValueError("no flows recorded")
        return float(
            np.percentile(
                [r.slowdown(line_rate_gbps) for r in self.records], 99
            )
        )

    def mean_path_hops(self) -> float:
        """Average switch-level hop count over flows that hit the network."""
        hops = [len(r.path) - 1 for r in self.records if len(r.path) >= 2]
        if not hops:
            return 0.0
        return float(np.mean(hops))

    # -- serialization -------------------------------------------------
    #
    # The sweep harness persists simulation outputs as JSON artifacts;
    # round-tripping must be exact so a cached cell renders the same
    # table as a fresh run (JSON floats round-trip bit-exactly).

    def to_json_dict(self) -> Dict:
        """A compact JSON-serializable form (one row per flow)."""
        return {
            "records": [
                [
                    r.src_server,
                    r.dst_server,
                    r.size_bytes,
                    r.start_time,
                    r.finish_time,
                    list(r.path),
                ]
                for r in self.records
            ]
        }

    @classmethod
    def from_json_dict(cls, payload: Dict) -> "FctResults":
        results = cls()
        for src, dst, size, start, finish, path in payload["records"]:
            results.add(
                FlowRecord(
                    src_server=src,
                    dst_server=dst,
                    size_bytes=size,
                    start_time=start,
                    finish_time=finish,
                    path=tuple(path),
                )
            )
        return results


@dataclass(frozen=True)
class IterationRecord:
    """One training iteration of one job: a comm phase plus its comp.

    ``comm_time_s`` is the barrier-to-last-flow completion time of the
    job's communication phase (phases run on a local clock starting at
    zero, so the latest finish *is* the phase duration); adding the
    job's fixed computation time yields the iteration time.
    """

    job: str
    iteration: int
    comm_time_s: float
    comp_time_s: float
    num_flows: int

    def __post_init__(self) -> None:
        if self.comm_time_s < 0 or self.comp_time_s < 0:
            raise ValueError("phase times must be non-negative")
        if self.iteration < 0:
            raise ValueError("iteration index must be non-negative")

    @property
    def iteration_time_s(self) -> float:
        return self.comm_time_s + self.comp_time_s


@dataclass
class JobTimeline:
    """Every iteration of one job, in iteration order."""

    job: str
    records: List[IterationRecord] = field(default_factory=list)

    def add(self, record: IterationRecord) -> None:
        if record.job != self.job:
            raise ValueError(
                f"record for job {record.job!r} added to timeline "
                f"of {self.job!r}"
            )
        self.records.append(record)

    @property
    def num_iterations(self) -> int:
        return len(self.records)

    def total_time_s(self) -> float:
        """Wall time the job trains for: the sum of its iterations."""
        return float(sum(r.iteration_time_s for r in self.records))

    def mean_iteration_time_s(self) -> float:
        if not self.records:
            raise ValueError(f"job {self.job!r} recorded no iterations")
        return self.total_time_s() / len(self.records)


@dataclass
class CollectiveResults:
    """All job timelines of one phase-cohort run.

    ``timelines`` keeps the jobs in placement order.  ``phase_records``
    is optionally populated (``keep_phase_records``) with each phase's
    full per-flow record set, which is what lets tests pin the driver's
    flows against a plain flowsim run bit-for-bit.
    """

    timelines: List[JobTimeline] = field(default_factory=list)
    phase_records: List[FctResults] = field(default_factory=list)

    def timeline(self, job: str) -> JobTimeline:
        for timeline in self.timelines:
            if timeline.job == job:
                return timeline
        raise KeyError(f"no timeline for job {job!r}")

    @property
    def num_jobs(self) -> int:
        return len(self.timelines)

    def iteration_time_s(self) -> float:
        """The headline metric: mean iteration time across every job.

        Each job contributes its own mean, so a job with many
        iterations does not drown out a short one.
        """
        if not self.timelines:
            raise ValueError("no jobs recorded")
        per_job = [t.mean_iteration_time_s() for t in self.timelines]
        return float(np.mean(per_job))

    def max_iteration_time_s(self) -> float:
        """The slowest job's mean iteration time (the straggler view)."""
        if not self.timelines:
            raise ValueError("no jobs recorded")
        return max(t.mean_iteration_time_s() for t in self.timelines)

    # -- serialization (same exactness contract as FctResults) ---------

    def to_json_dict(self) -> Dict:
        payload: Dict = {
            "jobs": [
                {
                    "job": timeline.job,
                    "records": [
                        [
                            r.iteration,
                            r.comm_time_s,
                            r.comp_time_s,
                            r.num_flows,
                        ]
                        for r in timeline.records
                    ],
                }
                for timeline in self.timelines
            ]
        }
        if self.phase_records:
            payload["phases"] = [
                results.to_json_dict() for results in self.phase_records
            ]
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict) -> "CollectiveResults":
        results = cls()
        for entry in payload["jobs"]:
            timeline = JobTimeline(job=entry["job"])
            for iteration, comm, comp, num_flows in entry["records"]:
                timeline.add(
                    IterationRecord(
                        job=timeline.job,
                        iteration=iteration,
                        comm_time_s=comm,
                        comp_time_s=comp,
                        num_flows=num_flows,
                    )
                )
            results.timelines.append(timeline)
        for phase in payload.get("phases", ()):
            results.phase_records.append(FctResults.from_json_dict(phase))
        return results


def fct_table(
    rows: Dict[str, Dict[str, FctResults]],
    metric: str = "median",
) -> str:
    """Render a Figure-4-style table: traffic patterns x schemes.

    ``rows[pattern][scheme]`` holds the results; ``metric`` is
    ``"median"`` or ``"p99"``.
    """
    schemes: List[str] = sorted(
        {scheme for by_scheme in rows.values() for scheme in by_scheme}
    )
    header = f"{'pattern':<20}" + "".join(f"{s:>22}" for s in schemes)
    lines = [f"FCT ({metric}, ms)", header, "-" * len(header)]
    for pattern, by_scheme in rows.items():
        cells = []
        for scheme in schemes:
            results = by_scheme.get(scheme)
            if results is None:
                cells.append(f"{'-':>22}")
                continue
            value = (
                results.median_fct_ms()
                if metric == "median"
                else results.p99_fct_ms()
            )
            cells.append(f"{value:>22.3f}")
        lines.append(f"{pattern:<20}" + "".join(cells))
    return "\n".join(lines)


def heatmap_text(
    values: np.ndarray,
    row_labels: List[float],
    col_labels: List[float],
    title: str = "",
) -> str:
    """Render a Figure-5-style heatmap as fixed-width text.

    Rows are client counts, columns server counts; each cell is the
    throughput ratio (DRing / leaf-spine in the paper's usage).
    """
    lines = []
    if title:
        lines.append(title)
    corner = "C \\ S"
    lines.append(f"{corner:>8}" + "".join(f"{c:>8g}" for c in col_labels))
    for label, row in zip(row_labels, values):
        lines.append(f"{label:>8g}" + "".join(f"{v:>8.2f}" for v in row))
    return "\n".join(lines)
