"""Result containers and statistics for the simulators.

Figure 4 reports median and 99th-percentile flow completion times in
milliseconds; Figure 5 reports average throughputs; Figure 6 reports
ratios of 99th-percentile FCTs.  Percentiles use linear interpolation
(numpy's default), which matters at the small sample sizes of quick
benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.units import seconds_to_ms


@dataclass(frozen=True)
class FlowRecord:
    """One completed flow."""

    src_server: int
    dst_server: int
    size_bytes: float
    start_time: float
    finish_time: float
    path: Tuple[int, ...]

    @property
    def fct_seconds(self) -> float:
        return self.finish_time - self.start_time

    @property
    def fct_ms(self) -> float:
        return seconds_to_ms(self.fct_seconds)

    @property
    def throughput_gbps(self) -> float:
        return self.size_bytes * 8 / 1e9 / self.fct_seconds

    def slowdown(self, line_rate_gbps: float) -> float:
        """FCT normalized to the flow's line-rate ideal (>= 1).

        The standard "FCT slowdown" metric: 1.0 means the flow ran at
        full server line rate end to end; 3.0 means congestion (or
        sharing) tripled its completion time.
        """
        ideal = self.size_bytes * 8 / (line_rate_gbps * 1e9)
        return self.fct_seconds / ideal


@dataclass
class FctResults:
    """All completed flows of one simulation run."""

    records: List[FlowRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._fcts_ms: np.ndarray = np.array([])
        self._dirty = True

    def add(self, record: FlowRecord) -> None:
        if record.finish_time < record.start_time:
            raise ValueError("flow finished before it started")
        self.records.append(record)
        self._dirty = True

    def _fcts(self) -> np.ndarray:
        if self._dirty:
            self._fcts_ms = np.array([r.fct_ms for r in self.records])
            self._dirty = False
        return self._fcts_ms

    @property
    def num_flows(self) -> int:
        return len(self.records)

    def median_fct_ms(self) -> float:
        return float(np.percentile(self._fcts(), 50))

    def p99_fct_ms(self) -> float:
        return float(np.percentile(self._fcts(), 99))

    def mean_fct_ms(self) -> float:
        return float(self._fcts().mean())

    def percentile_fct_ms(self, q: float) -> float:
        return float(np.percentile(self._fcts(), q))

    def mean_slowdown(self, line_rate_gbps: float = 10.0) -> float:
        """Average FCT slowdown; robust to the size mix, unlike raw FCT."""
        if not self.records:
            raise ValueError("no flows recorded")
        return float(
            np.mean([r.slowdown(line_rate_gbps) for r in self.records])
        )

    def p99_slowdown(self, line_rate_gbps: float = 10.0) -> float:
        """99th-percentile FCT slowdown."""
        if not self.records:
            raise ValueError("no flows recorded")
        return float(
            np.percentile(
                [r.slowdown(line_rate_gbps) for r in self.records], 99
            )
        )

    def mean_path_hops(self) -> float:
        """Average switch-level hop count over flows that hit the network."""
        hops = [len(r.path) - 1 for r in self.records if len(r.path) >= 2]
        if not hops:
            return 0.0
        return float(np.mean(hops))

    # -- serialization -------------------------------------------------
    #
    # The sweep harness persists simulation outputs as JSON artifacts;
    # round-tripping must be exact so a cached cell renders the same
    # table as a fresh run (JSON floats round-trip bit-exactly).

    def to_json_dict(self) -> Dict:
        """A compact JSON-serializable form (one row per flow)."""
        return {
            "records": [
                [
                    r.src_server,
                    r.dst_server,
                    r.size_bytes,
                    r.start_time,
                    r.finish_time,
                    list(r.path),
                ]
                for r in self.records
            ]
        }

    @classmethod
    def from_json_dict(cls, payload: Dict) -> "FctResults":
        results = cls()
        for src, dst, size, start, finish, path in payload["records"]:
            results.add(
                FlowRecord(
                    src_server=src,
                    dst_server=dst,
                    size_bytes=size,
                    start_time=start,
                    finish_time=finish,
                    path=tuple(path),
                )
            )
        return results


def fct_table(
    rows: Dict[str, Dict[str, FctResults]],
    metric: str = "median",
) -> str:
    """Render a Figure-4-style table: traffic patterns x schemes.

    ``rows[pattern][scheme]`` holds the results; ``metric`` is
    ``"median"`` or ``"p99"``.
    """
    schemes: List[str] = sorted(
        {scheme for by_scheme in rows.values() for scheme in by_scheme}
    )
    header = f"{'pattern':<20}" + "".join(f"{s:>22}" for s in schemes)
    lines = [f"FCT ({metric}, ms)", header, "-" * len(header)]
    for pattern, by_scheme in rows.items():
        cells = []
        for scheme in schemes:
            results = by_scheme.get(scheme)
            if results is None:
                cells.append(f"{'-':>22}")
                continue
            value = (
                results.median_fct_ms()
                if metric == "median"
                else results.p99_fct_ms()
            )
            cells.append(f"{value:>22.3f}")
        lines.append(f"{pattern:<20}" + "".join(cells))
    return "\n".join(lines)


def heatmap_text(
    values: np.ndarray,
    row_labels: List[float],
    col_labels: List[float],
    title: str = "",
) -> str:
    """Render a Figure-5-style heatmap as fixed-width text.

    Rows are client counts, columns server counts; each cell is the
    throughput ratio (DRing / leaf-spine in the paper's usage).
    """
    lines = []
    if title:
        lines.append(title)
    corner = "C \\ S"
    lines.append(f"{corner:>8}" + "".join(f"{c:>8g}" for c in col_labels))
    for label, row in zip(row_labels, values):
        lines.append(f"{label:>8g}" + "".join(f"{v:>8.2f}" for v in row))
    return "\n".join(lines)
