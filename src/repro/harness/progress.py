"""Live progress reporting for long sweeps.

The executor accepts any ``(outcome, done, total) -> None`` callback;
this module provides the two standard ones: a line-per-job printer for
interactive runs and CI logs, and a silent sink for tests.  Output goes
to stderr so rendered tables on stdout stay byte-identical to the
serial path.
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from repro.harness.executor import FAILED, HIT, JobOutcome

_STATUS_TAGS = {HIT: "hit ", FAILED: "FAIL"}


class ProgressPrinter:
    """Print one line per finished job: ``[done/total] status label``."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = sys.stderr if stream is None else stream

    def __call__(self, outcome: JobOutcome, done: int, total: int) -> None:
        tag = _STATUS_TAGS.get(outcome.status, "run ")
        line = (
            f"[{done:>{len(str(total))}}/{total}] {tag} "
            f"{outcome.spec.label()} ({outcome.seconds:.1f}s)"
        )
        if outcome.attempts > 1:
            line += f" [attempt {outcome.attempts}]"
        if outcome.error:
            line += f" — {outcome.error}"
        print(line, file=self.stream, flush=True)


class NullProgress:
    """Swallow progress events (tests, library use)."""

    def __call__(self, outcome: JobOutcome, done: int, total: int) -> None:
        pass
