"""Per-link capacity overrides must be honored by every simulator layer.

Gray failures are modelled as a per-link ``cap_scale`` on the Network;
these tests pin the contract at each consumer: the max-min allocator
(conservation), the flow-level simulator (achieved throughput), and the
packet-level simulator (a scaled link behaves identically to a link
built with the lower capacity outright).
"""

import pytest

from repro.core.network import Network, build_network
from repro.routing import EcmpRouting
from repro.sim.flowsim import simulate_fct
from repro.sim.packet import PacketSimulator
from repro.sim.throughput import tm_throughput
from repro.traffic import CanonicalCluster, Flow, Placement


def line_network(link_capacity=10.0, server_capacity=10.0):
    """0 -- 1 -- 2 with 4 servers at each end rack."""
    base = build_network(
        [(0, 1), (1, 2)], {0: 4, 2: 4}, link_capacity=link_capacity
    )
    return Network(
        base.graph,
        {0: 4, 2: 4},
        link_capacity=link_capacity,
        server_link_capacity=server_capacity,
    )


class TestMaxMinConservation:
    def test_gray_link_caps_the_allocation(self):
        net = line_network()
        net.set_link_capacity_scale(0, 1, 0.5)
        routing = EcmpRouting(net)
        report = tm_throughput(net, routing, {(0, 2): 4.0})
        # The degraded hop offers 10 * 0.5 = 5 Gbps; the allocator must
        # conserve flow through it even though hosts could push 40.
        assert report.total_gbps == pytest.approx(5.0)

    def test_healthy_baseline_is_link_limited(self):
        net = line_network()
        report = tm_throughput(net, EcmpRouting(net), {(0, 2): 4.0})
        assert report.total_gbps == pytest.approx(10.0)

    def test_shared_scaled_link_split_fairly(self):
        # Two opposite commodities cross the same degraded trunk; each
        # direction independently conserves the scaled capacity.
        net = line_network()
        net.set_link_capacity_scale(1, 2, 0.25)
        report = tm_throughput(
            net, EcmpRouting(net), {(0, 2): 2.0, (2, 0): 2.0}
        )
        assert report.per_commodity_gbps[(0, 2)] == pytest.approx(2.5)
        assert report.per_commodity_gbps[(2, 0)] == pytest.approx(2.5)


class TestFlowsimGrayLink:
    def test_gray_link_halves_achieved_throughput(self):
        cluster = CanonicalCluster(2, 4)
        flows = [Flow(0, 4, 1e6, 0.0)]

        healthy = line_network()
        healthy_fct = simulate_fct(
            healthy,
            EcmpRouting(healthy),
            Placement(cluster, healthy),
            flows,
        ).records[0].fct_seconds

        degraded = line_network()
        degraded.set_link_capacity_scale(0, 1, 0.5)
        degraded_fct = simulate_fct(
            degraded,
            EcmpRouting(degraded),
            Placement(cluster, degraded),
            flows,
        ).records[0].fct_seconds

        assert degraded_fct == pytest.approx(2.0 * healthy_fct)


class TestPacketParity:
    def test_scaled_link_equals_lower_capacity_link(self):
        """cap_scale 0.5 at 10 Gbps ≡ a fabric built at 5 Gbps outright:
        identical drop and timeout counters under an incast."""
        cluster = CanonicalCluster(2, 4)
        flows = [Flow(src, 4, 3e5, 0.0) for src in range(4)]

        def run(net):
            sim = PacketSimulator(
                net,
                EcmpRouting(net),
                Placement(cluster, net),
                seed=0,
            )
            results = sim.run(flows)
            return (
                sim.total_drops(),
                sim.total_timeouts(),
                [r.fct_seconds for r in results.records],
            )

        scaled = line_network(link_capacity=10.0, server_capacity=10.0)
        scaled.set_link_capacity_scale(0, 1, 0.5)
        scaled.set_link_capacity_scale(1, 2, 0.5)
        native = line_network(link_capacity=5.0, server_capacity=10.0)

        assert run(scaled) == run(native)
