"""Tests for the packet simulator's event queue and link model."""

import pytest

from repro.sim.packet.core import EventQueue, Packet
from repro.sim.packet.link import LinkQueue


class TestEventQueue:
    def test_runs_in_time_order(self):
        events = EventQueue()
        log = []
        events.schedule(2.0, lambda: log.append("b"))
        events.schedule(1.0, lambda: log.append("a"))
        events.schedule(3.0, lambda: log.append("c"))
        assert events.run() == 3
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        events = EventQueue()
        log = []
        for tag in ("first", "second", "third"):
            events.schedule(1.0, lambda t=tag: log.append(t))
        events.run()
        assert log == ["first", "second", "third"]

    def test_now_advances(self):
        events = EventQueue()
        seen = []
        events.schedule(0.5, lambda: seen.append(events.now))
        events.run()
        assert seen == [0.5]

    def test_nested_scheduling(self):
        events = EventQueue()
        log = []

        def outer():
            log.append(("outer", events.now))
            events.schedule(1.0, lambda: log.append(("inner", events.now)))

        events.schedule(1.0, outer)
        events.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_event_budget_enforced(self):
        events = EventQueue()

        def forever():
            events.schedule(1.0, forever)

        events.schedule(1.0, forever)
        with pytest.raises(RuntimeError):
            events.run(max_events=100)


def make_link(events, delivered, rate_gbps=10.0, buffer_bytes=4500):
    return LinkQueue(
        name="test",
        rate_gbps=rate_gbps,
        events=events,
        deliver=delivered.append,
        buffer_bytes=buffer_bytes,
        propagation_s=1e-6,
    )


def packet(seq=0, size=1500):
    return Packet(
        flow_id=0, seq=seq, size_bytes=size, is_ack=False, path=()
    )


class TestLinkQueue:
    def test_serialization_plus_propagation(self):
        events = EventQueue()
        delivered = []
        link = make_link(events, delivered)
        link.enqueue(packet(size=1500))
        events.run()
        # 1500 B at 10 Gbps = 1.2 us, plus 1 us propagation.
        assert events.now == pytest.approx(1.2e-6 + 1e-6)
        assert len(delivered) == 1

    def test_fifo_order_and_back_to_back(self):
        events = EventQueue()
        delivered = []
        link = make_link(events, delivered)
        for seq in range(3):
            link.enqueue(packet(seq=seq))
        events.run()
        assert [p.seq for p in delivered] == [0, 1, 2]
        # Three serializations, one trailing propagation.
        assert events.now == pytest.approx(3 * 1.2e-6 + 1e-6)

    def test_tail_drop_when_buffer_full(self):
        events = EventQueue()
        delivered = []
        link = make_link(events, delivered, buffer_bytes=3000)
        # First packet transmits immediately, two fit in the buffer,
        # the fourth is dropped.
        results = [link.enqueue(packet(seq=s)) for s in range(4)]
        assert results == [True, True, True, False]
        assert link.dropped_packets == 1
        events.run()
        assert len(delivered) == 3

    def test_counters_and_utilization(self):
        events = EventQueue()
        delivered = []
        link = make_link(events, delivered)
        link.enqueue(packet())
        events.run()
        assert link.transmitted_packets == 1
        assert link.transmitted_bytes == 1500
        assert 0 < link.utilization(events.now) <= 1.0

    def test_rejects_bad_parameters(self):
        events = EventQueue()
        with pytest.raises(ValueError):
            make_link(events, [], rate_gbps=0.0)
        with pytest.raises(ValueError):
            make_link(events, [], buffer_bytes=0)
