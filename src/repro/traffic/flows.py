"""Flow workload generation (Section 5.2, "Flow size distribution").

Flow sizes follow a Pareto law with mean 100 KB and shape 1.05 ("scale"
in the paper's wording), mimicking the irregular flow sizes of a typical
data center; flow counts follow the traffic matrix weights and start
times are uniform over the simulation window.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.units import (
    DEFAULT_MEAN_FLOW_BYTES,
    DEFAULT_PARETO_SHAPE,
)
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class Flow:
    """One flow in canonical server space."""

    src_server: int
    dst_server: int
    size_bytes: float
    start_time: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("flow size must be positive")
        if self.start_time < 0:
            raise ValueError("start time must be non-negative")


def pareto_minimum(mean: float, shape: float) -> float:
    """The Pareto scale (minimum) parameter giving the requested mean.

    For shape a > 1 the mean of Pareto(a, m) is a*m/(a-1), so
    m = mean*(a-1)/a.  The paper's shape 1.05 makes the distribution
    extremely heavy-tailed: the minimum is ~4.8 KB for a 100 KB mean.
    """
    if shape <= 1.0:
        raise ValueError("Pareto shape must exceed 1 for a finite mean")
    if mean <= 0:
        raise ValueError("mean must be positive")
    return mean * (shape - 1.0) / shape


def truncated_pareto_mean(
    mean: float,
    shape: float = DEFAULT_PARETO_SHAPE,
    cap: Optional[float] = None,
) -> float:
    """Expected value of the (possibly truncated) Pareto size law.

    With shape 1.05 most of the nominal mean lives in the extreme tail,
    so truncation reduces the realized mean a lot (a 10 MB cap on the
    100 KB law yields ~35 KB); load calculations must use this value or
    they overstate the offered traffic.
    """
    if cap is None:
        return mean
    minimum = pareto_minimum(mean, shape)
    if cap <= minimum:
        return cap
    # E[min(X, c)] = m + integral_m^c (m/x)^a dx for Pareto(a, m).
    integral = (minimum**shape) * (
        cap ** (1.0 - shape) - minimum ** (1.0 - shape)
    ) / (1.0 - shape)
    return minimum + integral


def sample_flow_size(
    rng: random.Random,
    mean: float = DEFAULT_MEAN_FLOW_BYTES,
    shape: float = DEFAULT_PARETO_SHAPE,
    cap: Optional[float] = None,
) -> float:
    """Draw one Pareto flow size, optionally truncated at ``cap`` bytes.

    A cap keeps scaled-down simulations from being dominated by a single
    elephant (the paper's window-limited runs truncate implicitly).
    """
    minimum = pareto_minimum(mean, shape)
    size = minimum / (1.0 - rng.random()) ** (1.0 / shape)
    if cap is not None:
        size = min(size, cap)
    return size


def generate_flows(
    tm: TrafficMatrix,
    num_flows: int,
    window: float,
    seed: int = 0,
    mean_size: float = DEFAULT_MEAN_FLOW_BYTES,
    shape: float = DEFAULT_PARETO_SHAPE,
    size_cap: Optional[float] = None,
) -> List[Flow]:
    """Generate a flow workload over a time window of ``window`` seconds.

    Endpoints are sampled from the traffic matrix, sizes from the Pareto
    law, start times uniformly over the window; the result is sorted by
    start time, ready for the simulator.
    """
    if num_flows < 1:
        raise ValueError("need at least one flow")
    if window <= 0:
        raise ValueError("window must be positive")
    rng = random.Random(seed)
    flows: List[Flow] = []
    for _ in range(num_flows):
        src, dst = tm.sample_server_pair(rng)
        flows.append(
            Flow(
                src_server=src,
                dst_server=dst,
                size_bytes=sample_flow_size(rng, mean_size, shape, size_cap),
                start_time=rng.random() * window,
            )
        )
    flows.sort(key=lambda f: f.start_time)
    return flows


def flows_for_load(
    offered_gbps: float,
    window: float,
    mean_size: float = DEFAULT_MEAN_FLOW_BYTES,
    shape: float = DEFAULT_PARETO_SHAPE,
    size_cap: Optional[float] = None,
) -> int:
    """Number of flows that offers ``offered_gbps`` over the window.

    offered bytes = offered_gbps * 1e9/8 * window; dividing by the
    *realized* mean flow size (accounting for any truncation cap) gives
    the expected flow count.
    """
    if offered_gbps <= 0 or window <= 0:
        raise ValueError("offered load and window must be positive")
    total_bytes = offered_gbps * 1e9 / 8.0 * window
    realized_mean = truncated_pareto_mean(mean_size, shape, size_cap)
    return max(1, round(total_bytes / realized_mean))


def window_for_budget(
    offered_gbps: float,
    max_flows: int,
    max_window: float,
    mean_size: float = DEFAULT_MEAN_FLOW_BYTES,
    shape: float = DEFAULT_PARETO_SHAPE,
    size_cap: Optional[float] = None,
) -> Tuple[float, int]:
    """Pick (window, flow count) that hits the target load within budget.

    Scaled-down runs cap the flow count for tractability; shrinking the
    window instead of thinning arrivals keeps the *offered rate* at the
    target, which is what creates the contention the paper measures.
    """
    if max_flows < 1:
        raise ValueError("max_flows must be at least 1")
    realized_mean = truncated_pareto_mean(mean_size, shape, size_cap)
    byte_rate = offered_gbps * 1e9 / 8.0
    budget_window = max_flows * realized_mean / byte_rate
    window = min(max_window, budget_window)
    num_flows = flows_for_load(
        offered_gbps, window, mean_size, shape, size_cap
    )
    return window, min(num_flows, max_flows)
