#!/usr/bin/env python3
"""Figure-4-style FCT study over all seven traffic patterns.

Runs the full grid — A2A, R2R, C-S skewed, Facebook-like skewed/uniform
and their random-placement variants, against leaf-spine(ECMP) and the
DRing/RRG with ECMP and Shortest-Union(2) — and prints the median and
99th-percentile tables plus the headline ratios the paper quotes.

Run:  python examples/fct_study.py [--seed N]
"""

import argparse

from repro.experiments import SMALL, run_fig4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(
        f"Running the Figure 4 grid at scale '{SMALL.name}' "
        f"(leaf-spine({SMALL.leaf_x},{SMALL.leaf_y}), "
        f"DRing({SMALL.dring_m},{SMALL.dring_n})) ...\n"
    )
    result = run_fig4(SMALL, seed=args.seed)

    print(result.median_table())
    print()
    print(result.p99_table())

    leaf = "leaf-spine (ecmp)"
    print("\nHeadline tail-latency ratios (leaf-spine / flat, p99):")
    for pattern in ("CS skewed", "FB skewed"):
        for scheme in ("DRing (su2)", "RRG (su2)"):
            ratio = result.ratio(pattern, leaf, scheme, metric="p99")
            print(f"  {pattern:<12} vs {scheme:<12}: {ratio:5.2f}x")
    r2r_fix = result.ratio("R2R", "DRing (ecmp)", "DRing (su2)", metric="p99")
    print(f"  R2R on DRing, ECMP/SU(2): {r2r_fix:5.2f}x "
          "(SU(2) repairing the single-shortest-path bottleneck)")


if __name__ == "__main__":
    main()
