"""DRing: the paper's flat ring-like topology (Section 3.2).

The supergraph is a cycle of ``m`` supernodes where supernode ``i`` is
adjacent to supernodes ``i+1`` and ``i+2`` (mod m).  Each supernode holds
``n`` ToR switches, and every pair of ToRs lying in adjacent supernodes is
directly connected.  All switches are symmetric, every switch hosts
servers (the network is flat), and the topology grows incrementally by
inserting supernodes into the ring.

Each ToR has exactly ``4n`` network links (n links to each of the four
adjacent supernodes: i-2, i-1, i+1, i+2), so a radix-R switch supports up
to ``R - 4n`` servers per rack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.network import (
    Network,
    NetworkValidationError,
    build_network,
    distribute_evenly,
)
from repro.core.units import DEFAULT_LINK_GBPS

#: Supernode offsets that are directly connected in the ring supergraph.
SUPERGRAPH_OFFSETS: Tuple[int, int] = (1, 2)


def supernode_of(tor: int, tors_per_supernode: int) -> int:
    """Supernode index of a ToR id under the canonical numbering."""
    return tor // tors_per_supernode


def dring_edges(m: int, n: int) -> List[Tuple[int, int]]:
    """Network links of DRing(m, n); ToRs are numbered supernode-major."""
    if m < 5:
        raise NetworkValidationError(
            "DRing needs at least 5 supernodes so that offsets +1/+2 are "
            "distinct and non-overlapping"
        )
    if n < 1:
        raise NetworkValidationError("DRing needs at least 1 ToR per supernode")
    edges: List[Tuple[int, int]] = []
    for supernode in range(m):
        for offset in SUPERGRAPH_OFFSETS:
            neighbor = (supernode + offset) % m
            for a in range(n):
                for b in range(n):
                    edges.append((supernode * n + a, neighbor * n + b))
    return edges


def dring(
    m: int,
    n: int,
    servers_per_rack: Optional[int] = None,
    total_servers: Optional[int] = None,
    link_capacity: float = DEFAULT_LINK_GBPS,
    name: str = "",
) -> Network:
    """Build DRing(m, n) with servers attached to every ToR.

    Exactly one of ``servers_per_rack`` or ``total_servers`` must be
    given; the latter spreads servers as evenly as possible, which is how
    we realize the paper's 80-rack / 2988-server instance.
    """
    if (servers_per_rack is None) == (total_servers is None):
        raise ValueError(
            "specify exactly one of servers_per_rack or total_servers"
        )
    num_racks = m * n
    if servers_per_rack is not None:
        if servers_per_rack < 1:
            raise NetworkValidationError("servers_per_rack must be >= 1")
        counts = [servers_per_rack] * num_racks
    else:
        assert total_servers is not None
        if total_servers < num_racks:
            raise NetworkValidationError(
                "flat network needs at least one server per rack"
            )
        counts = distribute_evenly(total_servers, num_racks)
    servers: Dict[int, int] = {tor: counts[tor] for tor in range(num_racks)}
    network = build_network(
        dring_edges(m, n),
        servers,
        link_capacity=link_capacity,
        name=name or f"dring(m={m},n={n})",
    )
    network.graph.graph["dring_m"] = m
    network.graph.graph["dring_n"] = n
    network.validate(max_radix=4 * n + max(counts))
    return network


def add_supernode(network: Network) -> Network:
    """Incrementally expand a DRing by one supernode (Section 3.2).

    Returns a new network with ``m + 1`` supernodes and the same
    servers-per-rack profile extended to the new racks.  Implemented by
    rebuilding from parameters — physically this corresponds to rewiring
    only the links adjacent to the insertion point.
    """
    m = network.graph.graph.get("dring_m")
    n = network.graph.graph.get("dring_n")
    if m is None or n is None:
        raise ValueError("network was not built by dring()")
    per_rack = [network.servers_at(tor) for tor in network.racks]
    # Extend the profile with the most common rack size.
    typical = max(set(per_rack), key=per_rack.count)
    total = sum(per_rack) + typical * n
    return dring(
        m + 1,
        n,
        total_servers=total,
        link_capacity=network.link_capacity,
        name=f"dring(m={m + 1},n={n})",
    )


def paper_dring(link_capacity: float = DEFAULT_LINK_GBPS) -> Network:
    """The paper's Section 5.1 DRing instance: 80 racks, 2988 servers.

    The printed parameters (12 supernodes, 80 racks) are mutually
    inconsistent, so we use m=16 supernodes of n=5 ToRs (80 racks) with
    the stated server total — see DESIGN.md for the rationale.
    """
    return dring(
        16, 5, total_servers=2988, link_capacity=link_capacity, name="dring-paper"
    )
