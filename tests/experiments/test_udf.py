"""Tests for the Section 3.1 UDF table driver."""

import pytest

from repro.experiments import figure1_numbers, render_udf_table, run_udf_table


class TestUdfTable:
    def test_closed_form_always_two(self):
        rows = run_udf_table()
        for row in rows:
            assert row.udf_closed_form == pytest.approx(2.0)

    def test_empirical_close_to_two(self):
        for row in run_udf_table():
            assert row.udf_empirical == pytest.approx(2.0, rel=0.1)

    def test_flat_nsr_doubles_baseline(self):
        for row in run_udf_table():
            assert row.nsr_flat == pytest.approx(2 * row.nsr_baseline)

    def test_custom_grid(self):
        rows = run_udf_table(grid=[(8, 4)])
        assert len(rows) == 1
        assert rows[0].x == 8 and rows[0].y == 4

    def test_render(self):
        text = render_udf_table(run_udf_table(grid=[(4, 2)]))
        assert "UDF" in text and "2.000" in text


class TestFigure1:
    def test_caption_numbers(self):
        numbers = figure1_numbers()
        # Leaf-spine: 1/2 network port per server; flat: 1 per server.
        assert numbers["leafspine_ports_per_server"] == pytest.approx(0.5)
        assert numbers["flat_ports_per_server"] == pytest.approx(1.0)
        assert numbers["leafspine_nsr_measured"] == pytest.approx(0.5)
        assert numbers["flat_nsr_measured"] == pytest.approx(1.0)
