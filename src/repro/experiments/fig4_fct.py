"""Figure 4: median and 99th-percentile FCT across traffic matrices.

Reproduces the paper's headline comparison: seven traffic patterns (A2A,
R2R, C-S skewed, FB skewed/uniform and their random-placement variants)
against five (topology, routing) combinations.  Every TM is scaled so
the offered load equals 30% of the baseline leaf-spine's spine capacity,
with the sparse-pattern correction of Section 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.runner import (
    SMALL,
    Scale,
    TopologyUnderTest,
    build_scheme,
    build_suite,
    scheme_labels,
)
from repro.sim.flowsim import simulate_fct
from repro.sim.results import FctResults, fct_table
from repro.traffic import (
    TrafficMatrix,
    cs_skewed_fig4,
    fb_skewed,
    fb_uniform,
    generate_flows,
    window_for_budget,
    rack_to_rack,
    spine_utilization_load,
    uniform,
)
from repro.topology import leaf_spine


@dataclass(frozen=True)
class PatternSpec:
    """One Figure 4 column: a TM plus whether placement is shuffled."""

    label: str
    tm: TrafficMatrix
    random_placement: bool = False


def fig4_patterns(scale: Scale, seed: int = 0) -> List[PatternSpec]:
    """The seven traffic patterns of Figure 4, in paper order."""
    cluster = scale.cluster
    return [
        PatternSpec("A2A", uniform(cluster)),
        PatternSpec("R2R", rack_to_rack(cluster)),
        PatternSpec("CS skewed", cs_skewed_fig4(cluster, seed=seed)),
        PatternSpec("FB skewed", fb_skewed(cluster, seed=seed)),
        PatternSpec("FB uniform", fb_uniform(cluster, seed=seed)),
        PatternSpec("FB skewed (RP)", fb_skewed(cluster, seed=seed), True),
        PatternSpec("FB uniform (RP)", fb_uniform(cluster, seed=seed), True),
    ]


@dataclass
class Fig4Result:
    """All FCT results, indexed [pattern][scheme]."""

    rows: Dict[str, Dict[str, FctResults]]

    def median_table(self) -> str:
        return fct_table(self.rows, metric="median")

    def p99_table(self) -> str:
        return fct_table(self.rows, metric="p99")

    def ratio(
        self, pattern: str, scheme_a: str, scheme_b: str, metric: str = "p99"
    ) -> float:
        """FCT(scheme_a) / FCT(scheme_b) for one pattern."""
        results_a = self.rows[pattern][scheme_a]
        results_b = self.rows[pattern][scheme_b]
        if metric == "median":
            return results_a.median_fct_ms() / results_b.median_fct_ms()
        return results_a.p99_fct_ms() / results_b.p99_fct_ms()


def _pattern_flows(scale: Scale, pattern: PatternSpec, seed: int,
                   utilization: float):
    """The identical workload every scheme receives for one column.

    The baseline for load scaling is the scale's leaf-spine regardless
    of the topology under test, so every scheme sees the same endpoints
    in canonical space, same sizes, same start times.
    """
    baseline = leaf_spine(scale.leaf_x, scale.leaf_y)
    load = spine_utilization_load(baseline, pattern.tm, utilization)
    window, num_flows = window_for_budget(
        load.offered_gbps,
        scale.max_flows,
        scale.window_seconds,
        size_cap=scale.size_cap_bytes,
    )
    return generate_flows(
        pattern.tm,
        num_flows,
        window,
        seed=seed,
        size_cap=scale.size_cap_bytes,
    )


def run_fig4(
    scale: Scale = SMALL,
    seed: int = 0,
    patterns: List[PatternSpec] = None,
    suite: List[TopologyUnderTest] = None,
    utilization: float = 0.30,
) -> Fig4Result:
    """Run the full Figure 4 grid at the given scale."""
    if patterns is None:
        patterns = fig4_patterns(scale, seed=seed)
    if suite is None:
        suite = build_suite(scale, seed=seed)

    rows: Dict[str, Dict[str, FctResults]] = {}
    for pattern in patterns:
        flows = _pattern_flows(scale, pattern, seed, utilization)
        by_scheme: Dict[str, FctResults] = {}
        for tut in suite:
            placement = tut.placement(
                shuffle=pattern.random_placement, seed=seed
            )
            by_scheme[tut.label] = simulate_fct(
                tut.network, tut.routing, placement, flows, seed=seed
            )
        rows[pattern.label] = by_scheme
    return Fig4Result(rows=rows)


def run_fig4_cell(
    scale: Scale,
    pattern: str,
    scheme: str,
    seed: int = 0,
    utilization: float = 0.30,
) -> FctResults:
    """One Figure 4 grid cell, independently executable.

    This is the sweep-harness unit of work: the flow workload is
    regenerated from the same seeded recipe ``run_fig4`` uses, so a cell
    computed in isolation is bit-identical to its value inside the full
    serial grid.
    """
    by_label = {p.label: p for p in fig4_patterns(scale, seed=seed)}
    try:
        pattern_spec = by_label[pattern]
    except KeyError:
        raise KeyError(
            f"unknown fig4 pattern {pattern!r}; know {list(by_label)}"
        ) from None
    tut = build_scheme(scheme, scale, seed=seed)
    flows = _pattern_flows(scale, pattern_spec, seed, utilization)
    placement = tut.placement(
        shuffle=pattern_spec.random_placement, seed=seed
    )
    return simulate_fct(tut.network, tut.routing, placement, flows, seed=seed)


def run_fig4_cell_shard(
    scale: Scale,
    pattern: str,
    scheme: str,
    seed: int = 0,
    utilization: float = 0.30,
    shard_index: int = 0,
    shard_count: int = 1,
) -> FctResults:
    """One shard job of a sharded Figure 4 cell (``repro --shards``).

    Regenerates the cell's workload from the same seeded recipe as
    :func:`run_fig4_cell`, then hands it to the deterministic hash
    partitioner (:mod:`repro.sim.shard`).  Merging all ``shard_count``
    outputs reassembles the sharded cell; the result is byte-identical
    for every ``shard_count`` but — shards do not contend — not equal to
    the unsharded cell.
    """
    from repro.sim.shard import simulate_fct_sharded

    by_label = {p.label: p for p in fig4_patterns(scale, seed=seed)}
    try:
        pattern_spec = by_label[pattern]
    except KeyError:
        raise KeyError(
            f"unknown fig4 pattern {pattern!r}; know {list(by_label)}"
        ) from None
    tut = build_scheme(scheme, scale, seed=seed)
    flows = _pattern_flows(scale, pattern_spec, seed, utilization)
    placement = tut.placement(
        shuffle=pattern_spec.random_placement, seed=seed
    )
    return simulate_fct_sharded(
        tut.network,
        tut.routing,
        placement,
        flows,
        seed=seed,
        shard_index=shard_index,
        shard_count=shard_count,
    )


def fig4_result_from_cells(
    cells: Dict[Tuple[str, str], FctResults],
    patterns: List[str] = None,
    schemes: List[str] = None,
) -> Fig4Result:
    """Assemble a :class:`Fig4Result` from per-cell results.

    ``cells`` maps ``(pattern label, scheme label)`` to results; missing
    cells (a failed sweep job) simply leave a hole the table renders as
    ``-``.  Pattern order follows the paper figure so the assembled
    tables match the serial path byte for byte.
    """
    if patterns is None:
        patterns = [p for p, _s in cells]
    if schemes is None:
        schemes = scheme_labels()
    rows: Dict[str, Dict[str, FctResults]] = {}
    for pattern in dict.fromkeys(patterns):
        by_scheme = {
            scheme: cells[(pattern, scheme)]
            for scheme in schemes
            if (pattern, scheme) in cells
        }
        if by_scheme:
            rows[pattern] = by_scheme
    return Fig4Result(rows=rows)
