"""Tests for the Section 7 other-topologies comparison."""

import pytest

from repro.experiments import (
    render_other_topologies,
    run_other_topologies,
)
from repro.experiments.other_topologies import candidate_networks


@pytest.fixture(scope="module")
def points():
    return run_other_topologies(flows_per_server=4, seed=1)


class TestCandidates:
    def test_four_families_all_flat(self):
        networks = candidate_networks()
        assert len(networks) == 5
        assert all(net.is_flat() for net in networks)

    def test_comparable_rack_band(self):
        racks = [net.num_racks for net in candidate_networks()]
        assert min(racks) >= 30 and max(racks) <= 50


class TestComparison:
    def test_two_routings_per_topology(self, points):
        assert len(points) == 10
        by_topo = {}
        for p in points:
            by_topo.setdefault(p.topology, set()).add(p.routing)
        assert all(r == {"ecmp", "su(2)"} for r in by_topo.values())

    def test_all_fcts_positive(self, points):
        for p in points:
            assert p.uniform_p99_ms > 0
            assert p.skewed_p99_ms > 0

    def test_slimfly_has_smallest_diameter(self, points):
        slimfly_diam = next(
            p.diameter_hops for p in points if "slimfly" in p.topology
        )
        assert slimfly_diam == 2
        assert slimfly_diam == min(p.diameter_hops for p in points)

    def test_low_diameter_graphs_competitive(self, points):
        # Section 7's expectation: Slim Fly performs at least as well as
        # the DRing on uniform traffic at small scale.
        slimfly_uniform = min(
            p.uniform_p99_ms for p in points if "slimfly" in p.topology
        )
        dring_uniform = min(
            p.uniform_p99_ms for p in points if "dring" in p.topology
        )
        assert slimfly_uniform <= dring_uniform * 1.1

    def test_render(self, points):
        text = render_other_topologies(points)
        assert "slimfly" in text and "dragonfly" in text
