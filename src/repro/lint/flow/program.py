"""Whole-package program model: every module parsed and indexed at once.

Where :class:`~repro.lint.context.FileContext` sees one file, a
:class:`Program` sees a package: every module's AST, import map, symbol
table (what each exported name resolves to, following ``from X import
Y`` re-export chains through ``__init__`` modules), every function and
method as a :class:`FunctionDef` node with a stable qualified name, and
every class with its methods, resolved bases and lightly-typed
attributes.  The call-graph builder and the four deep analyses all
consume this index; nothing in it is analysis-specific.

Qualified names are ``module.dotted.path`` plus the lexical nesting of
the definition: ``repro.sim.flowsim.FlowSimulator.run`` for a method,
``repro.topology.search.hill_climb.<locals>.objective`` for a nested
function, ``<lambda@14>`` for a lambda.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.lint.context import build_import_map

#: AST nodes that define a function-like scope.
FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]

#: Maximum re-export hops followed when resolving a dotted name (guards
#: against pathological ``from a import b`` cycles in fixture packages).
_MAX_REEXPORT_HOPS = 16


@dataclass
class FunctionInfo:
    """One function, method, nested function or lambda in the program."""

    qname: str
    module: str
    node: FunctionNode
    #: Qualified name of the enclosing class for methods, else "".
    owner_class: str = ""
    #: Qualified name of the lexically enclosing function, else "".
    parent: str = ""
    #: Short name (``node.name`` or ``<lambda@line>``).
    name: str = ""

    @property
    def line(self) -> int:
        return self.node.lineno

    @property
    def is_method(self) -> bool:
        return bool(self.owner_class)

    def param_names(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """One class: methods by short name, base names, typed attributes."""

    qname: str
    module: str
    node: ast.ClassDef
    #: Short method name -> FunctionInfo qname.
    methods: Dict[str, str] = field(default_factory=dict)
    #: Base-class expressions as written (resolved lazily by Program).
    base_exprs: List[ast.expr] = field(default_factory=list)
    #: ``self.<attr>`` -> type name it was assigned from, when statically
    #: visible in ``__init__`` (a constructor call or annotated param).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its namespace."""

    name: str
    path: str
    tree: ast.Module
    source: str
    #: Local name -> dotted origin for every import (file-wide).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Top-level defs: short name -> qname of function or class.
    defs: Dict[str, str] = field(default_factory=dict)
    #: Top-level ``NAME = <expr>`` assignments (for alias/global tracking).
    assigns: Dict[str, ast.expr] = field(default_factory=dict)


class Program:
    """An indexed package: modules, functions, classes, symbol resolution."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Short method name -> list of owning class qnames (for the
        #: unique-method fallback in the call-graph builder).
        self.methods_by_name: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, package_dir: pathlib.Path, package: str) -> "Program":
        """Index every ``.py`` file under ``package_dir`` as ``package``."""
        program = cls(package)
        package_dir = package_dir.resolve()
        for path in sorted(package_dir.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(package_dir)
            parts = (package,) + rel.with_suffix("").parts
            if parts[-1] == "__init__":
                parts = parts[:-1]
            module_name = ".".join(parts)
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, UnicodeDecodeError):
                continue  # engine reports parse errors; the model skips
            program._index_module(module_name, str(path), tree, source)
        program._finalize_attr_types()
        return program

    @classmethod
    def from_paths(cls, paths: List[pathlib.Path], package: str) -> Optional["Program"]:
        """Locate ``<package>/__init__.py`` under any given path and build.

        Accepts the same path list the CLI takes (``src``, ``tests``,
        single files); returns None when the package is nowhere below.
        """
        for raw in paths:
            base = pathlib.Path(raw)
            if base.is_file():
                base = base.parent
            if not base.is_dir():
                continue
            candidates = [base / package]
            candidates += sorted(base.glob(f"*/{package}"))
            # A path *inside* the package also locates it.
            for parent in [base] + list(base.resolve().parents):
                if parent.name == package and (parent / "__init__.py").exists():
                    candidates.append(parent)
            for candidate in candidates:
                if (candidate / "__init__.py").exists():
                    return cls.build(candidate, package)
        return None

    def _index_module(
        self, name: str, path: str, tree: ast.Module, source: str
    ) -> None:
        module = ModuleInfo(
            name=name,
            path=path,
            tree=tree,
            source=source,
            imports=build_import_map(tree),
        )
        self.modules[name] = module
        self._index_scope(module, tree.body, prefix=name, owner_class="",
                          parent="")
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module.assigns[target.id] = stmt.value
                        self._maybe_index_lambda(
                            module, target.id, stmt.value
                        )
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    module.assigns[stmt.target.id] = stmt.value
                    self._maybe_index_lambda(
                        module, stmt.target.id, stmt.value
                    )

    def _maybe_index_lambda(
        self, module: ModuleInfo, name: str, value: ast.expr
    ) -> None:
        """``f = lambda ...`` at module level defines a callable ``f``."""
        if isinstance(value, ast.Lambda) and name not in module.defs:
            qname = f"{module.name}.{name}"
            self.functions[qname] = FunctionInfo(
                qname=qname, module=module.name, node=value, name=name
            )
            module.defs[name] = qname

    def _index_scope(
        self,
        module: ModuleInfo,
        body: List[ast.stmt],
        prefix: str,
        owner_class: str,
        parent: str,
    ) -> None:
        """Register defs in one lexical scope, then recurse into them."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{stmt.name}"
                info = FunctionInfo(
                    qname=qname, module=module.name, node=stmt,
                    owner_class=owner_class, parent=parent, name=stmt.name,
                )
                self.functions[qname] = info
                if owner_class:
                    owner = self.classes[owner_class]
                    owner.methods[stmt.name] = qname
                    self.methods_by_name.setdefault(stmt.name, []).append(
                        owner_class
                    )
                elif prefix == module.name:
                    module.defs[stmt.name] = qname
                self._index_function_body(module, info)
            elif isinstance(stmt, ast.ClassDef):
                qname = f"{prefix}.{stmt.name}"
                self.classes[qname] = ClassInfo(
                    qname=qname, module=module.name, node=stmt,
                    base_exprs=list(stmt.bases),
                )
                if prefix == module.name:
                    module.defs[stmt.name] = qname
                self._index_scope(
                    module, stmt.body, prefix=qname, owner_class=qname,
                    parent=parent,
                )
                self._index_attr_types(module, self.classes[qname])

    def _index_function_body(
        self, module: ModuleInfo, info: FunctionInfo
    ) -> None:
        """Register nested functions and lambdas inside ``info``."""
        prefix = f"{info.qname}.<locals>"
        for stmt in ast.iter_child_nodes(info.node):
            for child in ast.walk(stmt):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if self._immediate_scope_of(info.node, child):
                        qname = f"{prefix}.{child.name}"
                        nested = FunctionInfo(
                            qname=qname, module=module.name, node=child,
                            parent=info.qname, name=child.name,
                        )
                        if qname not in self.functions:
                            self.functions[qname] = nested
                            self._index_function_body(module, nested)
                elif isinstance(child, ast.Lambda):
                    if self._immediate_scope_of(info.node, child):
                        qname = f"{prefix}.<lambda@{child.lineno}>"
                        if qname not in self.functions:
                            self.functions[qname] = FunctionInfo(
                                qname=qname, module=module.name, node=child,
                                parent=info.qname,
                                name=f"<lambda@{child.lineno}>",
                            )

    def _immediate_scope_of(
        self, scope: FunctionNode, node: ast.AST
    ) -> bool:
        """True when no other function scope sits between scope and node."""
        return _enclosing_scope(scope, node) is scope

    def _index_attr_types(self, module: ModuleInfo, cls: ClassInfo) -> None:
        """Record ``self.x = <typed>`` assignments from ``__init__``."""
        init_qname = cls.methods.get("__init__")
        if init_qname is None:
            return
        init = self.functions[init_qname].node
        assert isinstance(init, (ast.FunctionDef, ast.AsyncFunctionDef))
        param_types: Dict[str, str] = {}
        args = init.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None:
                dotted = annotation_name(arg.annotation)
                if dotted:
                    param_types[arg.arg] = dotted
        for stmt in ast.walk(init):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                type_name = ""
                if isinstance(stmt, ast.AnnAssign):
                    type_name = annotation_name(stmt.annotation) or ""
                elif isinstance(stmt.value, ast.Call):
                    type_name = annotation_name(stmt.value.func) or ""
                elif isinstance(stmt.value, ast.Name):
                    type_name = param_types.get(stmt.value.id, "")
                if type_name:
                    cls.attr_types.setdefault(target.attr, type_name)

    def _finalize_attr_types(self) -> None:
        """Second typing pass, once every module is indexed.

        ``_index_attr_types`` runs per-class during construction and can
        only record the *syntactic* callee of ``self.x = f(...)`` (for
        example ``routing.compile``), which rarely names a class.  With
        the whole program available we can do better: resolve the callee
        to a :class:`FunctionInfo` and follow its **return annotation**
        to a class qname.  This is what types ``self._compiled =
        routing.compile(table)`` as ``CompiledRouting`` so the perf
        engine sees through ``self._compiled.sample(...)`` dispatch.
        """
        for cls in self.classes.values():
            init_qname = cls.methods.get("__init__")
            if init_qname is None:
                continue
            init = self.functions[init_qname].node
            module = self.modules[cls.module]
            param_classes: Dict[str, str] = {}
            args = init.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                resolved = self.resolve_annotation(module, arg.annotation)
                if resolved:
                    param_classes[arg.arg] = resolved
            for stmt in ast.walk(init):
                if not (
                    isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)
                ):
                    continue
                attrs = [
                    t.attr for t in stmt.targets
                    if isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ]
                if not attrs:
                    continue
                returned = self._call_return_class(
                    module, stmt.value.func, param_classes
                )
                if not returned:
                    continue
                for attr in attrs:
                    existing = cls.attr_types.get(attr)
                    if existing and self._resolve_type_name(module, existing):
                        continue  # the syntactic type already resolves
                    cls.attr_types[attr] = returned

    def _call_return_class(
        self,
        module: ModuleInfo,
        func: ast.expr,
        param_classes: Dict[str, str],
    ) -> Optional[str]:
        """Class qname returned by a called function, via its annotation."""
        target: Optional[str] = None
        if isinstance(func, ast.Name):
            target = self.resolve_in_module(module, func.id)
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            owner = param_classes.get(func.value.id)
            if owner:
                target = self.lookup_method(owner, func.attr)
        info = self.functions.get(target) if target else None
        if info is None or isinstance(info.node, ast.Lambda):
            return None
        callee_module = self.modules[info.module]
        return self.resolve_annotation(callee_module, info.node.returns)

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------

    def resolve_qualified(self, dotted: str, _hops: int = 0) -> Optional[str]:
        """Resolve a dotted name to a function/class qname in the program.

        Follows re-export chains: ``repro.topology.dring`` finds the
        ``from repro.topology.dring import dring`` entry in the package
        ``__init__`` and recurses into the defining module.
        """
        if _hops > _MAX_REEXPORT_HOPS:
            return None
        if dotted in self.functions or dotted in self.classes:
            return dotted
        # Longest module prefix, then walk the remainder through it.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:cut])
            module = self.modules.get(module_name)
            if module is None:
                continue
            rest = parts[cut:]
            head = rest[0]
            if head in module.defs:
                candidate = module.defs[head]
                if len(rest) == 1:
                    return candidate
                # Class attribute path: Class.method.
                if candidate in self.classes and len(rest) == 2:
                    return self.lookup_method(candidate, rest[1])
                return None
            if head in module.imports:
                target = module.imports[head] + (
                    "." + ".".join(rest[1:]) if len(rest) > 1 else ""
                )
                return self.resolve_qualified(target, _hops + 1)
            return None
        return None

    def resolve_in_module(
        self, module: ModuleInfo, name: str
    ) -> Optional[str]:
        """Resolve a bare name used in ``module`` to a program qname."""
        if name in module.defs:
            return module.defs[name]
        dotted = module.imports.get(name)
        if dotted is not None:
            return self.resolve_qualified(dotted)
        value = module.assigns.get(name)
        if isinstance(value, ast.Name):  # top-level alias: g = f
            if value.id != name:
                return self.resolve_in_module(module, value.id)
        return None

    def lookup_method(self, class_qname: str, method: str) -> Optional[str]:
        """Find ``method`` on a class or its in-program bases (MRO-ish)."""
        seen = set()
        stack = [class_qname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            module = self.modules[cls.module]
            for base in cls.base_exprs:
                dotted = annotation_name(base)
                if not dotted:
                    continue
                resolved = self._resolve_type_name(module, dotted)
                if resolved:
                    stack.append(resolved)
        return None

    def _resolve_type_name(
        self, module: ModuleInfo, dotted: str
    ) -> Optional[str]:
        """Resolve a type name as written in ``module`` to a class qname."""
        if dotted in self.classes:  # already a qname (finalized attr type)
            return dotted
        head, _, rest = dotted.partition(".")
        base = module.defs.get(head) or module.imports.get(head)
        if base is None:
            return None
        full = base + ("." + rest if rest else "")
        resolved = self.resolve_qualified(full)
        if resolved in self.classes:
            return resolved
        return None

    def resolve_annotation(
        self, module: ModuleInfo, annotation: Optional[ast.expr]
    ) -> Optional[str]:
        """Class qname an annotation refers to, unwrapping Optional[...]"""
        dotted = annotation_name(annotation)
        if not dotted:
            return None
        return self._resolve_type_name(module, dotted)

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------

    def functions_in(self, module_name: str) -> Iterator[FunctionInfo]:
        for info in self.functions.values():
            if info.module == module_name:
                yield info

    def module_of(self, func: FunctionInfo) -> ModuleInfo:
        return self.modules[func.module]


def annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    """Dotted type name of an annotation expression, best effort.

    Handles ``Network``, ``nx.Graph``, string annotations
    (``"Network"``) and one level of subscripting
    (``Optional[Network]`` -> first Name argument).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text if text.replace(".", "").isidentifier() else None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts: List[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            return ".".join(reversed(parts))
        return None
    if isinstance(node, ast.Subscript):
        outer = annotation_name(node.value)
        if outer and outer.split(".")[-1] == "Optional":
            return annotation_name(node.slice)
        return None
    return None


def _enclosing_scope(
    root: FunctionNode, target: ast.AST
) -> Optional[ast.AST]:
    """The innermost function scope containing ``target`` under ``root``."""
    result: List[Optional[ast.AST]] = [None]

    def visit(node: ast.AST, scope: ast.AST) -> bool:
        if node is target:
            result[0] = scope
            return True
        next_scope = scope
        if node is not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            next_scope = node
        for child in ast.iter_child_nodes(node):
            if visit(child, next_scope):
                return True
        return False

    visit(root, root)
    return result[0]


def function_statements(node: FunctionNode) -> Iterator[ast.AST]:
    """Every AST node lexically inside ``node`` but not inside a nested
    function scope — the nodes that belong to *this* function's body."""
    def walk(current: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(current):
            yield child
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield from walk(child)

    yield from walk(node)


def local_scope_params(info: FunctionInfo) -> Tuple[str, ...]:
    return tuple(info.param_names())
