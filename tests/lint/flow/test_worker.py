"""Worker-safety checks on fixture packages."""

from __future__ import annotations

from repro.lint.flow.worker import (
    DeepWorkerSafety,
    find_thread_entry_points,
    reachable_from,
)

from tests.lint.flow.util import build_fixture_graph, build_fixture_program

REGISTRY = (
    "def register_experiment(name, run, deps):\n"
    "    return (name, run, deps)\n"
)


def _check(tmp_path, files, package="wpkg"):
    _, graph = build_fixture_graph(tmp_path, files, package)
    return list(DeepWorkerSafety().check(graph))


class TestGlobalMutation:
    FIXTURE = {
        "registry.py": REGISTRY,
        "work.py": (
            "RESULTS = []\n"
            "COUNTER = 0\n"
            "\n"
            "\n"
            "def run_job(spec):\n"
            "    return accumulate(spec)\n"
            "\n"
            "\n"
            "def accumulate(spec):\n"
            "    global COUNTER\n"
            "    COUNTER = COUNTER + 1\n"
            "    RESULTS.append(spec)\n"
            "    return COUNTER\n"
            "\n"
            "\n"
            "def untouched(spec):\n"
            "    RESULTS.append(spec)\n"
            "    return spec\n"
        ),
        "jobs.py": (
            "from wpkg.registry import register_experiment\n"
            "from wpkg.work import run_job\n"
            "\n"
            "register_experiment('job', run_job, ())\n"
        ),
    }

    def test_reachable_mutations_flagged(self, tmp_path):
        findings = _check(tmp_path, self.FIXTURE)
        messages = [f.message for f in findings]
        assert any("rebinds module global 'COUNTER'" in m for m in messages)
        assert any(
            "mutates module-level 'RESULTS' (.append())" in m
            for m in messages
        )
        assert len(findings) == 2

    def test_unreachable_mutation_not_flagged(self, tmp_path):
        """`untouched` also appends to RESULTS but no job reaches it."""
        findings = _check(tmp_path, self.FIXTURE)
        lines = {f.line for f in findings}
        assert all(line < 16 for line in lines)

    def test_local_shadow_not_flagged(self, tmp_path):
        assert _check(tmp_path, {
            "registry.py": REGISTRY,
            "work.py": (
                "RESULTS = []\n"
                "\n"
                "\n"
                "def run_job(spec):\n"
                "    RESULTS = list()\n"
                "    RESULTS.append(spec)\n"
                "    return RESULTS\n"
            ),
            "jobs.py": (
                "from wpkg.registry import register_experiment\n"
                "from wpkg.work import run_job\n"
                "\n"
                "register_experiment('job', run_job, ())\n"
            ),
        }) == []

    def test_import_time_registration_not_flagged(self, tmp_path):
        """Module-level registry population re-runs identically in every
        worker; only runtime mutation desynchronizes."""
        assert _check(tmp_path, {
            "registry.py": REGISTRY,
            "work.py": (
                "TABLE = {}\n"
                "\n"
                "\n"
                "def run_job(spec):\n"
                "    return spec\n"
                "\n"
                "\n"
                "TABLE['job'] = run_job\n"
            ),
            "jobs.py": (
                "from wpkg.registry import register_experiment\n"
                "from wpkg.work import run_job\n"
                "\n"
                "register_experiment('job', run_job, ())\n"
            ),
        }) == []


class TestRunnerShape:
    def test_lambda_runner_flagged(self, tmp_path):
        findings = _check(tmp_path, {
            "registry.py": REGISTRY,
            "jobs.py": (
                "from wpkg.registry import register_experiment\n"
                "\n"
                "register_experiment('bad', lambda spec: spec, ())\n"
            ),
        })
        assert len(findings) == 1
        assert "lambda registered" in findings[0].message

    def test_module_level_runner_ok(self, tmp_path):
        assert _check(tmp_path, {
            "registry.py": REGISTRY,
            "jobs.py": (
                "from wpkg.registry import register_experiment\n"
                "\n"
                "\n"
                "def run_job(spec):\n"
                "    return spec\n"
                "\n"
                "\n"
                "register_experiment('ok', run_job, ())\n"
            ),
        }) == []


class TestThreadEntryPoints:
    HANDLER = (
        "from http.server import BaseHTTPRequestHandler\n"
        "\n"
        "HITS = []\n"
        "\n"
        "\n"
        "class Handler(BaseHTTPRequestHandler):\n"
        "    def do_GET(self):\n"
        "        record(self.path)\n"
        "\n"
        "    def helper(self):\n"
        "        return None\n"
        "\n"
        "\n"
        "def record(path):\n"
        "    HITS.append(path)\n"
    )

    def test_handler_do_methods_are_entries(self, tmp_path):
        program = build_fixture_program(
            tmp_path, {"api.py": self.HANDLER}, "tpkg"
        )
        entries = find_thread_entry_points(program)
        assert "tpkg.api.Handler.do_GET" in entries
        assert "tpkg.api.Handler.helper" not in entries

    def test_handler_subclass_inherits_entry_status(self, tmp_path):
        program = build_fixture_program(tmp_path, {
            "base.py": (
                "from http.server import BaseHTTPRequestHandler\n"
                "\n"
                "\n"
                "class Base(BaseHTTPRequestHandler):\n"
                "    pass\n"
            ),
            "api.py": (
                "from tpkg.base import Base\n"
                "\n"
                "\n"
                "class Handler(Base):\n"
                "    def do_POST(self):\n"
                "        return None\n"
            ),
        }, "tpkg")
        assert "tpkg.api.Handler.do_POST" in find_thread_entry_points(
            program
        )

    def test_thread_target_is_entry(self, tmp_path):
        program = build_fixture_program(tmp_path, {
            "mgr.py": (
                "import threading\n"
                "\n"
                "\n"
                "def worker_loop():\n"
                "    return None\n"
                "\n"
                "\n"
                "def start():\n"
                "    thread = threading.Thread(target=worker_loop)\n"
                "    thread.start()\n"
            ),
        }, "tpkg")
        assert "tpkg.mgr.worker_loop" in find_thread_entry_points(program)

    def test_self_method_thread_target_is_entry(self, tmp_path):
        program = build_fixture_program(tmp_path, {
            "mgr.py": (
                "import threading\n"
                "\n"
                "\n"
                "class Manager:\n"
                "    def start(self):\n"
                "        threading.Thread(target=self._loop).start()\n"
                "\n"
                "    def _loop(self):\n"
                "        return None\n"
            ),
        }, "tpkg")
        assert "tpkg.mgr.Manager._loop" in find_thread_entry_points(
            program
        )

    def test_thread_reachable_mutation_flagged(self, tmp_path):
        findings = _check(
            tmp_path, {"api.py": self.HANDLER}, package="tpkg"
        )
        assert len(findings) == 1
        message = findings[0].message
        assert "thread-reachable 'record'" in message
        assert "mutates module-level 'HITS' (.append())" in message
        assert "behind a lock" in message

    def test_job_flavor_wins_on_shared_reachability(self, tmp_path):
        """Code both job- and thread-reachable is flagged once, with the
        worker-boundary message (the stricter contract)."""
        findings = _check(tmp_path, {
            "registry.py": REGISTRY,
            "work.py": (
                "RESULTS = []\n"
                "\n"
                "\n"
                "def run_job(spec):\n"
                "    RESULTS.append(spec)\n"
                "    return spec\n"
            ),
            "jobs.py": (
                "import threading\n"
                "from wpkg.registry import register_experiment\n"
                "from wpkg.work import run_job\n"
                "\n"
                "register_experiment('job', run_job, ())\n"
                "\n"
                "\n"
                "def serve():\n"
                "    threading.Thread(target=run_job).start()\n"
            ),
        })
        assert len(findings) == 1
        assert "job-reachable 'run_job'" in findings[0].message

    def test_instance_state_not_flagged(self, tmp_path):
        """Mutating self-owned state under a lock is the sanctioned
        pattern — nothing module-level, nothing to flag."""
        assert _check(tmp_path, {
            "api.py": (
                "from http.server import BaseHTTPRequestHandler\n"
                "\n"
                "\n"
                "class Handler(BaseHTTPRequestHandler):\n"
                "    def do_GET(self):\n"
                "        self.server.hits.append(self.path)\n"
            ),
        }, package="tpkg") == []


class TestReachability:
    def test_reachable_from_closure(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {
            "a.py": (
                "def entry():\n"
                "    return middle()\n"
                "\n"
                "def middle():\n"
                "    return leaf()\n"
                "\n"
                "def leaf():\n"
                "    return 1\n"
                "\n"
                "def island():\n"
                "    return 2\n"
            ),
        }, "rpkg")
        reach = reachable_from(graph, ["rpkg.a.entry"])
        assert reach == {"rpkg.a.entry", "rpkg.a.middle", "rpkg.a.leaf"}
