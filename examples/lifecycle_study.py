#!/usr/bin/env python3
"""Lifecycle study: growing, adapting, and reconfiguring flat fabrics.

Three Section 3.2 / Section 7 angles in one script:

1. **Expansion churn** — cables touched when each topology family grows
   by one rack/supernode (DRing and RRG are incremental, the leaf-spine
   re-cables its spine layer);
2. **Coarse adaptive routing** — observing the demand snapshot and
   installing ECMP or Shortest-Union(2), matching the better static
   scheme on every pattern;
3. **Dynamic networks** — reconfiguring into rotated DRings vs transient
   expanders for skewed and uniform demand.

Run:  python examples/lifecycle_study.py
"""

from repro.experiments import (
    render_dynamic,
    render_expansion,
    run_adaptive_study,
    run_dynamic_study,
    run_expansion_study,
    skewed_demand,
    uniform_demand,
)
from repro.topology import dring
from repro.traffic import CanonicalCluster


def main() -> None:
    print(render_expansion(run_expansion_study(sizes=(6, 10, 14))))

    print("\nCoarse-grained adaptive routing (Section 7):")
    net = dring(8, 2, servers_per_rack=6)
    cluster = CanonicalCluster(16, 6)
    print(f"{'pattern':<10}{'mode':>8}{'adaptive p99':>14}{'ecmp':>9}{'su2':>9}")
    for point in run_adaptive_study(net, cluster, num_flows=600, seed=0):
        print(
            f"{point.pattern:<10}{point.chosen_mode:>8}"
            f"{point.adaptive_p99_ms:>14.4f}{point.ecmp_p99_ms:>9.4f}"
            f"{point.su2_p99_ms:>9.4f}"
        )

    print()
    results = {
        "skewed": run_dynamic_study(skewed_demand(16, 3, seed=2)),
        "uniform": run_dynamic_study(uniform_demand(16)),
    }
    print(render_dynamic(results))
    print(
        "\nReconfiguring into rotated flat DRings beats transient "
        "expanders by "
        f"{results['skewed'].gain('dynamic dring (su2)', 'dynamic rrg (ecmp)'):.2f}x "
        "for skewed demand — the Section 7 question, answered."
    )


if __name__ == "__main__":
    main()
