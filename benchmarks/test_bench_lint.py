"""Deep lint stays fast enough to gate every commit.

Runs the full-repository ``repro lint --deep`` in a fresh interpreter
(cold: includes interpreter start, imports, parsing all ~100 modules,
call-graph construction and all four interprocedural analyses) and
asserts it lands under a wall-clock budget with a wide margin over the
measured ~4s.  If this fails, the pre-commit hook and the CI deep-lint
job have become a tax on every contributor — fix the regression, don't
raise the budget first.
"""

import json
import pathlib
import subprocess
import sys
import time

from conftest import save_artifact

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Seconds a cold full-repo deep lint may take.
COLD_BUDGET_SECONDS = 30.0


def test_cold_deep_lint_under_budget():
    env_paths = [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
    start = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "lint", "--deep",
            "--format", "json", *env_paths,
        ],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": ""},
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - start

    assert proc.returncode == 0, proc.stdout + proc.stderr
    report = json.loads(proc.stdout)
    assert report["clean"] is True

    assert elapsed < COLD_BUDGET_SECONDS, (
        f"cold deep lint took {elapsed:.1f}s "
        f"(budget {COLD_BUDGET_SECONDS:.0f}s)"
    )
    save_artifact(
        "bench_lint.txt",
        f"cold full-repo `repro lint --deep`: {elapsed:.2f}s "
        f"(budget {COLD_BUDGET_SECONDS:.0f}s, clean)",
    )
