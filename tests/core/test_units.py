"""Tests for unit conversions."""

import pytest

from repro.core.units import (
    bytes_to_gbits,
    seconds_to_ms,
    transfer_seconds,
)


def test_bytes_to_gbits():
    assert bytes_to_gbits(1e9 / 8) == pytest.approx(1.0)


def test_transfer_seconds():
    # 100 KB at 10 Gbps = 80 microseconds.
    assert transfer_seconds(100_000, 10.0) == pytest.approx(8e-5)


def test_transfer_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        transfer_seconds(1000, 0.0)
    with pytest.raises(ValueError):
        transfer_seconds(1000, -1.0)


def test_seconds_to_ms():
    assert seconds_to_ms(0.25) == pytest.approx(250.0)
