"""Command-line interface: ``python -m repro <command>``.

Exposes the library's main workflows without writing any Python:

* ``summarize``        — structural comparison of the topology suite
* ``udf``              — the Section 3.1 UDF table
* ``fig4``             — Figure 4 FCT tables
* ``fig5``             — Figure 5 C-S heatmaps
* ``fig6``             — Figure 6 scale sweep
* ``sweep``            — cached parallel sweeps over the paper figures
* ``ml``               — ML collective sweep: per-job iteration time
* ``cache``            — inspect / prune / clear the sweep result cache
* ``serve``            — run the simulation-as-a-service HTTP server
* ``submit``           — submit one cell to a running server
* ``status``           — job states (and event streams) from a server
* ``results``          — the server's cached-result inventory
* ``leaderboard``      — ranked cells, from a server or a local cache
* ``microburst``       — the Section 3 microburst study
* ``other-topologies`` — the Section 7 Slim Fly / Dragonfly comparison
* ``verify``           — exhaustive Theorem 1 / path-set verification
* ``lint``             — domain-aware static analysis (see repro.lint)
* ``configs``          — emit per-router Cisco or FRR configurations

The figure commands accept ``--jobs N`` / ``--cache-dir`` /
``--no-cache`` to route through the ``repro.harness`` orchestrator:
cells run in parallel worker processes and results are memoized in a
content-addressed on-disk cache, so re-rendering a figure is
incremental.  Tables on stdout are byte-identical either way; harness
telemetry goes to stderr.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Any, Dict, List, Optional

from repro.experiments.runner import SCALES, Scale

_SCALES = SCALES  # historical alias; the registry lives in runner


def _scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="small",
        help="experiment size (default: small)",
    )


def _harness_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run cells through the sweep harness with N worker "
        "processes (enables result caching)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: ~/.cache/repro or "
        "$REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="run through the harness without reading or writing the cache",
    )


def _shards_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="opt-in within-cell sharding for large fig4/ml cells: "
        "expand each cell into N cooperating shard jobs (deterministic "
        "hash partition, output byte-identical for every N; shards do "
        "not contend, so sharded numbers differ from unsharded ones). "
        "0 (default) keeps cells unsharded",
    )


def _wants_harness(args: argparse.Namespace) -> bool:
    return (
        args.jobs is not None or args.cache_dir is not None or args.no_cache
    )


def _cache_for(args: argparse.Namespace):
    from repro.harness import ResultCache

    if args.no_cache:
        return None
    if args.cache_dir is not None:
        return ResultCache(pathlib.Path(args.cache_dir))
    return ResultCache.default()


def _run_harness(args: argparse.Namespace, specs, sweep: str):
    """Run a job list with CLI-configured workers/cache; report to stderr.

    Returns the results-by-key map; stdout is reserved for the rendered
    artifacts so harness runs stay byte-identical to the serial path.
    """
    from repro.harness import ProgressPrinter, RunManifest, clock, run_jobs

    cache = _cache_for(args)
    workers = args.jobs if args.jobs is not None else 1
    timeout = getattr(args, "timeout", None)
    started = clock.now()
    t0 = clock.perf()
    results, outcomes = run_jobs(
        specs,
        jobs=workers,
        cache=cache,
        timeout=timeout,
        progress=ProgressPrinter(),
    )
    manifest = RunManifest.from_outcomes(
        outcomes,
        sweep=sweep,
        wall_seconds=clock.perf() - t0,
        scale=getattr(args, "scale", ""),
        seed=getattr(args, "seed", 0),
        workers=workers,
        cache_dir=str(cache.root) if cache is not None else "",
        started_at=started,
    )
    print(manifest.render(), file=sys.stderr)
    trace_totals = manifest.sim_trace_totals
    if trace_totals:
        counters = trace_totals.get("counters", {})
        timers = trace_totals.get("timers", {})
        parts = [f"{name}={value}" for name, value in counters.items()]
        parts += [f"{name}={seconds:.2f}s" for name, seconds in timers.items()]
        solves = counters.get("alloc_solves", 0)
        warm = counters.get("alloc_warm_solves", 0)
        if solves:
            # Round-2 engine health at a glance: how often the warm
            # allocator reused the previous solve, and how small the
            # re-solved dirty link set was relative to full cold sweeps.
            parts.append(f"warm_reuse={warm / solves:.1%}")
        link_space = counters.get("alloc_link_space", 0)
        if link_space:
            resolved = counters.get("alloc_resolved_links", 0)
            parts.append(f"resolved_links_frac={resolved / link_space:.2%}")
        print("  engine: " + " ".join(parts), file=sys.stderr)
    manifest_out = getattr(args, "manifest_out", None)
    if manifest_out:
        path = manifest.save(pathlib.Path(manifest_out))
        print(f"manifest written to {path}", file=sys.stderr)
    elif cache is not None:
        path = manifest.save(
            cache.root / "manifests" / f"{sweep}-{int(started)}.json"
        )
        print(f"manifest written to {path}", file=sys.stderr)
    return results


TOPOLOGY_CHOICES = (
    "dring",
    "rrg",
    "leaf-spine",
    "xpander",
    "slimfly",
    "dragonfly",
    "fat-tree",
)


def _build_topology(kind: str, scale: Scale, seed: int = 0):
    from repro.topology import (
        dragonfly,
        dring,
        fat_tree,
        flatten,
        leaf_spine,
        slimfly,
        xpander,
    )

    if kind == "leaf-spine":
        return leaf_spine(scale.leaf_x, scale.leaf_y)
    if kind == "dring":
        return dring(
            scale.dring_m, scale.dring_n, total_servers=scale.dring_servers
        )
    if kind == "rrg":
        return flatten(
            leaf_spine(scale.leaf_x, scale.leaf_y), seed=seed, name="rrg"
        )
    # The Section 7 families come in fixed admissible sizes; pick small
    # instances in the same band as the SMALL scale.
    if kind == "xpander":
        return xpander(7, 4, servers_per_rack=scale.leaf_x // 2, seed=seed)
    if kind == "slimfly":
        return slimfly(5, servers_per_rack=scale.leaf_x // 2)
    if kind == "dragonfly":
        return dragonfly(4, 2, servers_per_rack=scale.leaf_x // 2)
    if kind == "fat-tree":
        return fat_tree(8)
    raise ValueError(f"unknown topology {kind!r}")


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------


def cmd_summarize(args: argparse.Namespace) -> int:
    from repro.core import summarize, summary_table

    scale = _SCALES[args.scale]
    networks = [
        _build_topology(kind, scale, seed=args.seed)
        for kind in ("leaf-spine", "rrg", "dring")
    ]
    print(summary_table([summarize(net) for net in networks]))
    return 0


def cmd_udf(args: argparse.Namespace) -> int:
    from repro.experiments import render_udf_table, run_udf_table

    print(render_udf_table(run_udf_table()))
    return 0


def cmd_fig4(args: argparse.Namespace) -> int:
    if _wants_harness(args):
        from repro.harness import assemble_fig4, fig4_jobs

        specs = fig4_jobs(args.scale, seed=args.seed)
        result = assemble_fig4(specs, _run_harness(args, specs, "fig4"))
    else:
        from repro.experiments import run_fig4

        result = run_fig4(_SCALES[args.scale], seed=args.seed)
    print(result.median_table())
    print()
    print(result.p99_table())
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    if _wants_harness(args):
        from repro.harness import assemble_fig5, fig5_jobs

        specs = fig5_jobs(args.scale, seed=args.seed)
        panels = assemble_fig5(specs, _run_harness(args, specs, "fig5"))
    else:
        from repro.experiments import run_fig5

        panels = run_fig5(_SCALES[args.scale], seed=args.seed)
    for key in ("ecmp", "su2"):
        print(panels[key].render())
        print()
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    from repro.experiments import Fig6Config, render_fig6

    if _wants_harness(args):
        from repro.harness import assemble_fig6, fig6_jobs

        specs = fig6_jobs(seed=args.seed)
        points = assemble_fig6(specs, _run_harness(args, specs, "fig6"))
    else:
        from repro.experiments import run_fig6

        points = run_fig6(Fig6Config(), seed=args.seed)
    print(render_fig6(points))
    return 0


def _render_ablation_results(specs, results) -> str:
    """Text tables for the K-sweep and shape-sweep ablation cells."""
    lines: List[str] = []
    k_rows = []
    shape_rows = []
    for spec in specs:
        payload = results.get(spec.key())
        if payload is None:
            continue
        if spec.experiment == "ablation-k":
            k_rows.extend(payload)
        elif spec.experiment == "ablation-shape":
            shape_rows.extend(payload)
    if k_rows:
        lines.append("Shortest-Union(K) sweep")
        lines.append(
            f"{'k':>3}{'pattern':>10}{'median ms':>12}{'p99 ms':>10}"
            f"{'paths':>8}"
        )
        for row in k_rows:
            lines.append(
                f"{row['k']:>3}{row['pattern']:>10}{row['median_ms']:>12.4f}"
                f"{row['p99_ms']:>10.4f}{row['mean_paths']:>8.2f}"
            )
    if shape_rows:
        if lines:
            lines.append("")
        lines.append("DRing shape sweep (fixed rack budget)")
        lines.append(
            f"{'m':>3}{'n':>3}{'racks':>7}{'degree':>8}{'diam':>6}"
            f"{'p99 ms':>10}"
        )
        for row in shape_rows:
            lines.append(
                f"{row['m']:>3}{row['n']:>3}{row['racks']:>7}"
                f"{row['network_degree']:>8}{row['diameter']:>6}"
                f"{row['p99_ms']:>10.4f}"
            )
    return "\n".join(lines)


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import (
        render_failure_sweep,
        render_fig6,
        render_ml_sweep,
        render_robustness,
    )
    from repro.harness import (
        assemble_faults,
        assemble_fig4,
        assemble_fig5,
        assemble_fig6,
        assemble_ml,
        assemble_robustness,
        sweep_jobs,
    )

    specs = sweep_jobs(
        args.experiment, args.scale, seed=args.seed, shards=args.shards
    )
    results = _run_harness(args, specs, "+".join(args.experiment))
    for name in args.experiment:
        if name == "fig4":
            fig4 = assemble_fig4(specs, results)
            print(fig4.median_table())
            print()
            print(fig4.p99_table())
        elif name == "fig5":
            panels = assemble_fig5(specs, results)
            for key in ("ecmp", "su2"):
                if key in panels:
                    print(panels[key].render())
        elif name == "fig6":
            print(render_fig6(assemble_fig6(specs, results)))
        elif name == "robustness":
            print(render_robustness(assemble_robustness(specs, results)))
        elif name == "ablations":
            print(_render_ablation_results(specs, results))
        elif name == "faults":
            print(render_failure_sweep(assemble_faults(specs, results)))
        elif name == "ml":
            print(render_ml_sweep(assemble_ml(specs, results)))
        print()
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments import render_failure_sweep, render_hot_links
    from repro.harness import assemble_faults, faults_jobs

    specs = faults_jobs(
        args.scale,
        seed=args.seed,
        topologies=args.topology,
        schemes=args.scheme,
        kinds=args.kind,
        fractions=args.fractions,
        trials=args.trials,
        capacity_factor=args.gray_capacity_fraction,
    )
    # Always route through the harness: every scenario cell is cached
    # and crash-isolated, so reruns and wider sweeps are incremental.
    cells = assemble_faults(specs, _run_harness(args, specs, "faults"))
    print(render_failure_sweep(cells))
    hot = render_hot_links(cells)
    if hot:
        print()
        print(hot)
    return 0


def cmd_ml(args: argparse.Namespace) -> int:
    from repro.experiments import render_ml_sweep
    from repro.harness import assemble_ml, ml_jobs

    placement_seeds = args.placement_seeds
    if placement_seeds is None:
        # Derived from --seed, mirroring the rrg/xpander seed threading:
        # reseeding the run reseeds every placement draw too.
        placement_seeds = [args.seed, args.seed + 1]
    specs = ml_jobs(
        args.scale,
        seed=args.seed,
        topologies=args.topology,
        schemes=args.scheme,
        policies=args.policy,
        placement_seeds=placement_seeds,
        shards=args.shards,
    )
    # Always route through the harness: every collective cell is cached
    # and crash-isolated, so reruns and wider sweeps are incremental.
    cells = assemble_ml(specs, _run_harness(args, specs, "ml"))
    print(render_ml_sweep(cells))
    return 0


def _format_age(seconds: float) -> str:
    """Compact human age: 42s, 3.5m, 2.1h, 4.0d."""
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    if seconds < 86400:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.harness import ResultCache

    root = (
        pathlib.Path(args.cache_dir)
        if args.cache_dir is not None
        else ResultCache.default_root()
    )
    cache = ResultCache(root)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {root}")
        return 0
    if args.action == "prune":
        if args.max_bytes is None:
            print("cache prune requires --max-bytes", file=sys.stderr)
            return 2
        from repro.service.store import ServiceStore

        store = ServiceStore(root)
        before = store.total_bytes()
        evicted = store.prune(args.max_bytes)
        print(
            f"pruned {len(evicted)} entries ({before} -> "
            f"{store.total_bytes()} bytes, budget {args.max_bytes})"
        )
        for key in evicted:
            print(f"  evicted {key}")
        return 0
    entries = list(cache.entries())
    if not entries:
        print(f"cache at {root} is empty")
        return 0
    total_bytes = sum(e["bytes"] for e in entries)
    print(
        f"cache at {root}: {len(entries)} results, "
        f"{total_bytes} bytes total"
    )
    for entry in entries:
        print(
            f"  {entry['key']}  {entry['label']:<48} "
            f"{entry['elapsed_seconds']:>7.2f}s  {entry['bytes']:>9}B  "
            f"age {_format_age(entry['age_seconds']):>6}"
        )
    return 0


# ----------------------------------------------------------------------
# Service commands (repro serve / submit / status / results / leaderboard)
# ----------------------------------------------------------------------

DEFAULT_SERVICE_URL = "http://127.0.0.1:8277"


def _service_client(args: argparse.Namespace):
    from repro.service import ServiceClient

    return ServiceClient(args.server)


def _print_event(event: dict) -> None:
    parts = [f"[{event['seq']}] {event['kind']}"]
    outcome = event.get("outcome")
    if outcome:
        parts.append(f"status={outcome['status']}")
        trace = outcome.get("sim_trace") or {}
        counters = trace.get("counters", {})
        if counters:
            parts.append(
                "engine: "
                + " ".join(f"{k}={v}" for k, v in counters.items())
            )
    if event.get("error"):
        parts.append(f"error={event['error']}")
    print("  " + " ".join(parts))


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.harness import ResultCache
    from repro.service import JobManager, ServiceStore, create_server

    root = (
        pathlib.Path(args.cache_dir)
        if args.cache_dir is not None
        else ResultCache.default_root()
    )
    store = ServiceStore(root, max_bytes=args.max_bytes)
    manager = JobManager(
        store,
        workers=args.workers,
        queue_limit=args.queue_limit,
        job_timeout=args.timeout,
    ).start()
    server = create_server(
        args.host, args.port, manager, store, quiet=args.quiet
    )
    print(
        f"repro service on {server.url} "
        f"(store {root}, {args.workers} workers)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        print("shutting down", file=sys.stderr)
        manager.shutdown()
        server.server_close()
    return 0


def _parse_param(raw: str):
    key, sep, value = raw.partition("=")
    if not sep or not key:
        raise ValueError(f"--param wants KEY=VALUE, got {raw!r}")
    lowered = value.lower()
    if lowered in ("true", "false"):
        return key, lowered == "true"
    for cast in (int, float):
        try:
            return key, cast(value)
        except ValueError:
            continue
    return key, value


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceError

    submission: dict = {"experiment": args.experiment, "seed": args.seed}
    if args.scale:
        submission["scale"] = args.scale
    if args.scheme:
        submission["scheme"] = args.scheme
    if args.pattern:
        submission["pattern"] = args.pattern
    params: dict = {}
    if args.param:
        try:
            params = dict(_parse_param(raw) for raw in args.param)
        except ValueError as exc:
            print(f"submit: {exc}", file=sys.stderr)
            return 2
    shards = args.shards
    if shards < 0:
        print(f"submit: shard count must be >= 0, got {shards}",
              file=sys.stderr)
        return 2
    submissions: list = []
    if shards:
        # One submission per shard job; the shard geometry rides in
        # params, so each shard gets its own cache key.
        for index in range(shards):
            sharded = dict(submission)
            sharded["params"] = dict(
                params, shard_index=index, shard_count=shards
            )
            submissions.append(sharded)
    else:
        if params:
            submission["params"] = params
        submissions.append(submission)
    client = _service_client(args)
    try:
        jobs = [client.submit(body) for body in submissions]
        for job in jobs:
            print(f"{job['id']} {job['state']} key={job['key']}")
        if not args.wait:
            return 0
        finals = [
            client.wait(job["id"], on_event=_print_event) for job in jobs
        ]
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    for final in finals:
        print(f"{final['id']} {final['state']}"
              + (f" — {final['error']}" if final["error"] else ""))
    return 0 if all(final["state"] == "done" for final in finals) else 1


def cmd_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceError

    client = _service_client(args)
    try:
        if args.job_id:
            job = client.job(args.job_id)
            print(
                f"{job['id']} {job['state']} {job['label']} "
                f"key={job['key']}"
                + (" (cache hit)" if job["cache_hit"] else "")
                + (f" — {job['error']}" if job["error"] else "")
            )
            if args.events:
                for event in client.events(args.job_id)["events"]:
                    _print_event(event)
            return 0
        jobs = client.jobs()
    except ServiceError as exc:
        print(f"status: {exc}", file=sys.stderr)
        return 1
    if not jobs:
        print("no jobs submitted yet")
        return 0
    for job in jobs:
        print(f"{job['id']}  {job['state']:<10} {job['label']}")
    return 0


def cmd_results(args: argparse.Namespace) -> int:
    from repro.service import ServiceError

    try:
        inventory = _service_client(args).results()
    except ServiceError as exc:
        print(f"results: {exc}", file=sys.stderr)
        return 1
    budget = inventory.get("max_bytes")
    print(
        f"{inventory['count']} cached results, "
        f"{inventory['total_bytes']} bytes"
        + (f" (budget {budget})" if budget else "")
    )
    for entry in inventory["results"]:
        print(
            f"  {entry['key']}  {entry['label']:<48} "
            f"{entry['bytes']:>9}B"
        )
    return 0


def cmd_leaderboard(args: argparse.Namespace) -> int:
    from repro.service import ServiceError, render_leaderboard

    if args.cache_dir is not None:
        from repro.service import ServiceStore, build_leaderboard

        rows = build_leaderboard(
            ServiceStore(pathlib.Path(args.cache_dir)),
            metric=args.metric,
            limit=args.limit,
        )
    else:
        try:
            board = _service_client(args).leaderboard(
                metric=args.metric, limit=args.limit
            )
        except ServiceError as exc:
            print(f"leaderboard: {exc}", file=sys.stderr)
            return 1
        rows = board["rows"]
    print(render_leaderboard(rows, metric=args.metric))
    return 0


def cmd_microburst(args: argparse.Namespace) -> int:
    from repro.experiments import render_microburst, run_microburst

    print(render_microburst(run_microburst(_SCALES[args.scale], seed=args.seed)))
    return 0


def cmd_other_topologies(args: argparse.Namespace) -> int:
    from repro.experiments import (
        render_other_topologies,
        run_other_topologies,
    )

    print(render_other_topologies(run_other_topologies(seed=args.seed)))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.bgp import verify_fabric

    network = _build_topology(args.topology, _SCALES[args.scale], seed=args.seed)
    stats = verify_fabric(network, args.k)
    print(
        f"{network.name}: Theorem 1 and Shortest-Union({args.k}) verified "
        f"over {stats['pairs']} rack pairs "
        f"({stats['rounds']} BGP rounds, {stats['updates']} updates)"
    )
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.core.export import to_dot, to_json

    network = _build_topology(args.topology, _SCALES[args.scale], seed=args.seed)
    text = to_dot(network) if args.format == "dot" else to_json(network)
    if args.out == "-":
        print(text)
    else:
        pathlib.Path(args.out).write_text(text + "\n")
        print(f"wrote {network.name} as {args.format} to {args.out}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    timings = generate_report(
        pathlib.Path(args.out),
        scale=_SCALES[args.scale],
        seed=args.seed,
        only=args.only,
    )
    total = sum(seconds for _name, seconds in timings)
    for name, seconds in timings:
        print(f"  {name:<24} {seconds:6.1f}s")
    print(f"wrote {len(timings)} artifacts to {args.out} in {total:.1f}s")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import RULE_REGISTRY, all_rules, lint_paths
    from repro.lint import render_json, render_text
    from repro.lint.flow import FLOW_REGISTRY, all_flow_rules
    from repro.lint.flow.registry import ENGINE_SECTIONS

    if args.list_rules:
        # One registry walk covers every engine: AST rules file under
        # "ast", deep rules under their own engine tag, and any tag
        # missing from ENGINE_SECTIONS gets an untitled trailing
        # section instead of being silently dropped.
        by_engine: Dict[str, List[Any]] = {"ast": list(all_rules())}
        for flow_rule in all_flow_rules():
            by_engine.setdefault(flow_rule.engine, []).append(flow_rule)
        titles = dict(ENGINE_SECTIONS)
        order = [engine for engine, _title in ENGINE_SECTIONS]
        order += sorted(set(by_engine) - set(titles))
        first = True
        for engine in order:
            rules = by_engine.get(engine, [])
            if not rules:
                continue
            if not first:
                print()
            first = False
            title = titles.get(engine, "unregistered engine [deep]")
            print(f"{engine} — {title}")
            for rule in rules:
                print(f"  {rule.name:<28} {rule.summary}")
        return 0
    if args.profile and not args.deep:
        print("lint: --profile requires --deep", file=sys.stderr)
        return 2
    paths = args.paths or [
        p for p in ("src", "tests") if pathlib.Path(p).exists()
    ]
    if not paths:
        print("lint: no paths given and no src/tests here", file=sys.stderr)
        return 2
    if args.diff_only and not args.baseline:
        print("lint: --diff-only requires --baseline", file=sys.stderr)
        return 2

    file_rules = args.rule
    deep_rules = None
    if args.rule is not None:
        all_flow_rules()  # populate FLOW_REGISTRY
        unknown = [
            n for n in args.rule
            if n not in RULE_REGISTRY and n not in FLOW_REGISTRY
        ]
        if unknown:
            print(f"lint: unknown rule '{unknown[0]}'", file=sys.stderr)
            return 2
        file_rules = [n for n in args.rule if n in RULE_REGISTRY]
        deep_rules = [n for n in args.rule if n in FLOW_REGISTRY]
        if deep_rules and not args.deep:
            print(
                f"lint: '{deep_rules[0]}' is a deep rule; pass --deep",
                file=sys.stderr,
            )
            return 2

    findings = []
    if file_rules is None or file_rules:
        findings = lint_paths(paths, rule_names=file_rules)
    if args.deep and (deep_rules is None or deep_rules):
        from repro.lint.flow import deep_lint_paths

        deep_findings, _stats = deep_lint_paths(
            paths, rule_names=deep_rules
        )
        findings = sorted(set(findings) | set(deep_findings))

    profile_failed = False
    if args.profile:
        from repro.lint.flow.perf.profile import (
            profile_hot_coverage,
            render_coverage,
        )

        coverage = profile_hot_coverage()
        report = render_coverage(coverage)
        print(report, file=sys.stderr)
        if args.profile_out:
            pathlib.Path(args.profile_out).write_text(report + "\n")
        profile_failed = not coverage.passed
        if profile_failed:
            print(
                "lint: static hot-set coverage below floor",
                file=sys.stderr,
            )

    if args.write_baseline:
        from repro.lint.baseline import write_baseline

        count = write_baseline(findings, args.write_baseline)
        print(
            f"lint: wrote baseline with {count} finding(s) "
            f"to {args.write_baseline}"
        )
        return 1 if profile_failed else 0

    known = []
    if args.baseline:
        from repro.lint.baseline import (
            BaselineError,
            load_baseline,
            partition,
        )

        try:
            accepted = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
        new, known = partition(findings, accepted)
        shown = new if args.diff_only else findings
        gate = new
    else:
        shown = findings
        gate = findings

    if args.format == "json":
        print(render_json(shown))
    else:
        print(render_text(shown))
        if args.baseline and known:
            print(
                f"baseline: {len(known)} known finding(s) accepted, "
                f"{len(gate)} new"
            )
    return 1 if gate or profile_failed else 0


def cmd_configs(args: argparse.Namespace) -> int:
    from repro.bgp import ConfigGenerator
    from repro.bgp.frr import FrrConfigGenerator

    network = _build_topology(args.topology, _SCALES[args.scale], seed=args.seed)
    generator_cls = (
        FrrConfigGenerator if args.format == "frr" else ConfigGenerator
    )
    generator = generator_cls(network, args.k)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    suffix = "conf" if args.format == "frr" else "cfg"
    for switch, text in generator.render_all().items():
        (out_dir / f"router-{switch}.{suffix}").write_text(text + "\n")
    print(
        f"wrote {network.num_switches} {args.format} configurations "
        f"for {network.name} to {out_dir}"
    )
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spineless Data Centers reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="structural topology comparison")
    _scale_argument(p)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_summarize)

    p = sub.add_parser("udf", help="Section 3.1 UDF table")
    p.set_defaults(func=cmd_udf)

    for name, func, doc in (
        ("fig4", cmd_fig4, "Figure 4 FCT tables"),
        ("fig5", cmd_fig5, "Figure 5 C-S heatmaps"),
    ):
        p = sub.add_parser(name, help=doc)
        _scale_argument(p)
        p.add_argument("--seed", type=int, default=0)
        _harness_arguments(p)
        p.set_defaults(func=func)

    p = sub.add_parser("microburst", help="Section 3 microburst study")
    _scale_argument(p)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_microburst)

    p = sub.add_parser("fig6", help="Figure 6 scale sweep")
    p.add_argument("--seed", type=int, default=1)
    _harness_arguments(p)
    p.set_defaults(func=cmd_fig6)

    p = sub.add_parser(
        "sweep",
        help="run experiment sweeps in parallel with result caching",
    )
    from repro.harness.jobs import SWEEPS

    p.add_argument(
        "--experiment",
        nargs="+",
        choices=SWEEPS,
        default=["fig4", "fig5", "fig6"],
        help="which sweeps to run (default: fig4 fig5 fig6)",
    )
    _scale_argument(p)
    p.add_argument("--seed", type=int, default=0)
    _harness_arguments(p)
    _shards_argument(p)
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget",
    )
    p.add_argument(
        "--manifest-out",
        default=None,
        help="write the run manifest JSON to this path",
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "faults",
        help="failure-resilience sweep: degradation under injected faults",
    )
    from repro.experiments.failure_sweep import (
        DEFAULT_FRACTIONS,
        FAULT_SCHEMES,
        FAULT_TOPOLOGIES,
    )
    from repro.faults import DEFAULT_GRAY_CAPACITY, FAULT_KINDS

    _scale_argument(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--topology",
        nargs="+",
        choices=FAULT_TOPOLOGIES,
        default=list(FAULT_TOPOLOGIES),
        help="topologies to degrade (default: all)",
    )
    p.add_argument(
        "--scheme",
        nargs="+",
        choices=FAULT_SCHEMES,
        default=list(FAULT_SCHEMES),
        help="routing schemes to compare (default: ecmp su2)",
    )
    p.add_argument(
        "--kind",
        nargs="+",
        choices=FAULT_KINDS,
        default=["link"],
        help="fault models to inject (default: link)",
    )
    p.add_argument(
        "--fractions",
        nargs="+",
        type=float,
        default=list(DEFAULT_FRACTIONS),
        metavar="F",
        help="failed fractions per kind (default: 0.02 0.05 0.10)",
    )
    p.add_argument(
        "--trials",
        type=int,
        default=2,
        help="independent scenarios per curve point (default: 2)",
    )
    p.add_argument(
        "--gray-capacity",
        dest="gray_capacity_fraction",
        type=float,
        default=DEFAULT_GRAY_CAPACITY,
        metavar="SCALE",
        help="surviving capacity fraction of gray-failed trunks",
    )
    _harness_arguments(p)
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget",
    )
    p.add_argument(
        "--manifest-out",
        default=None,
        help="write the run manifest JSON to this path",
    )
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "ml",
        help="ML collective sweep: iteration time across "
        "topology x routing x placement",
    )
    from repro.experiments.ml_sweep import (
        ML_POLICIES,
        ML_SCHEMES,
        ML_TOPOLOGIES,
    )
    from repro.traffic.collectives import PLACEMENT_POLICIES

    _scale_argument(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--topology",
        nargs="+",
        choices=ML_TOPOLOGIES,
        default=list(ML_TOPOLOGIES),
        help="topologies to compare (default: all)",
    )
    p.add_argument(
        "--scheme",
        nargs="+",
        choices=ML_SCHEMES,
        default=["ecmp", "su2"],
        help="routing schemes to compare (default: ecmp su2)",
    )
    p.add_argument(
        "--policy",
        nargs="+",
        choices=PLACEMENT_POLICIES,
        default=list(ML_POLICIES),
        help="placement policies to compare (default: compact random)",
    )
    p.add_argument(
        "--placement-seeds",
        nargs="+",
        type=int,
        default=None,
        metavar="S",
        help="placement-policy seeds (default: two draws derived "
        "from --seed)",
    )
    _harness_arguments(p)
    _shards_argument(p)
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget",
    )
    p.add_argument(
        "--manifest-out",
        default=None,
        help="write the run manifest JSON to this path",
    )
    p.set_defaults(func=cmd_ml)

    p = sub.add_parser(
        "cache", help="inspect, prune, or clear the result cache"
    )
    p.add_argument("action", choices=("ls", "prune", "clear"))
    p.add_argument("--cache-dir", default=None)
    p.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="with prune: evict least-recently-used entries until the "
        "cache holds at most N bytes (the service's eviction policy)",
    )
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "serve", help="run the simulation-as-a-service HTTP server"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8277)
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent jobs (each in its own worker process)",
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        metavar="N",
        help="max queued jobs before POST /jobs answers 429",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock budget",
    )
    p.add_argument("--cache-dir", default=None)
    p.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="result-store byte budget; LRU eviction on insert",
    )
    p.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-request access logging",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit one cell to a server")
    p.add_argument("--server", default=DEFAULT_SERVICE_URL)
    p.add_argument("--experiment", required=True)
    p.add_argument("--scale", default="")
    p.add_argument("--scheme", default="")
    p.add_argument("--pattern", default="")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="extra job param (repeatable); values parse as "
        "bool/int/float/str",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="submit the cell as N cooperating shard jobs (fig4/ml "
        "only; merged output is byte-identical for every N)",
    )
    p.add_argument(
        "--wait",
        action="store_true",
        help="stream events until the job finishes; exit 0 only on done",
    )
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("status", help="job states from a server")
    p.add_argument("job_id", nargs="?", default=None)
    p.add_argument("--server", default=DEFAULT_SERVICE_URL)
    p.add_argument(
        "--events",
        action="store_true",
        help="with a job id: also print its event stream",
    )
    p.set_defaults(func=cmd_status)

    p = sub.add_parser(
        "results", help="the server's cached-result inventory"
    )
    p.add_argument("--server", default=DEFAULT_SERVICE_URL)
    p.set_defaults(func=cmd_results)

    p = sub.add_parser(
        "leaderboard",
        help="ranked (topology, routing, workload) cells",
    )
    p.add_argument("--server", default=DEFAULT_SERVICE_URL)
    p.add_argument(
        "--cache-dir",
        default=None,
        help="rank a local result store instead of querying a server",
    )
    from repro.service.leaderboard import DEFAULT_METRIC, metric_names

    p.add_argument(
        "--metric",
        choices=metric_names(),
        default=DEFAULT_METRIC,
    )
    p.add_argument("--limit", type=int, default=None)
    p.set_defaults(func=cmd_leaderboard)

    p = sub.add_parser(
        "other-topologies", help="Section 7 Slim Fly / Dragonfly comparison"
    )
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_other_topologies)

    p = sub.add_parser("verify", help="verify Theorem 1 and the path sets")
    _scale_argument(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--topology", choices=TOPOLOGY_CHOICES, default="dring")
    p.add_argument("--k", type=int, default=2)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("export", help="export a topology as JSON or dot")
    _scale_argument(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--topology", choices=TOPOLOGY_CHOICES, default="dring")
    p.add_argument("--format", choices=("json", "dot"), default="json")
    p.add_argument("--out", default="-", help="output file, or - for stdout")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser(
        "report", help="regenerate every paper artifact into a directory"
    )
    _scale_argument(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="report")
    p.add_argument(
        "--only",
        nargs="+",
        default=None,
        help="subset of artifact names (see repro.experiments.report)",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "lint",
        help="domain-aware static analysis of the repository invariants",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this rule (repeatable; default: all rules)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    p.add_argument(
        "--deep",
        action="store_true",
        help="also run the interprocedural (whole-package) analyses: "
        "call-graph effect inference, seed provenance, unit "
        "consistency, worker safety, the concurrency suite and the "
        "hot-path performance rules",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="with --deep: profile a small seeded fig4 cell and report "
        "static hot-set coverage of the top frames (fails below "
        "the floor)",
    )
    p.add_argument(
        "--profile-out",
        metavar="FILE",
        help="with --profile: also write the coverage report to FILE",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help="accepted-findings file: fail only on findings not in it",
    )
    p.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings as the accepted baseline "
        "and exit 0",
    )
    p.add_argument(
        "--diff-only",
        action="store_true",
        help="with --baseline: report only new findings, hide known",
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("configs", help="emit router configurations")
    _scale_argument(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--topology", choices=TOPOLOGY_CHOICES, default="dring")
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--format", choices=("cisco", "frr"), default="cisco")
    p.add_argument("--out", default="router-configs")
    p.set_defaults(func=cmd_configs)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
