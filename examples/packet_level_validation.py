#!/usr/bin/env python3
"""Packet-level deep dive: TCP dynamics, drops, and flowlet switching.

Runs the same skewed workload through the flow-level (fluid) simulator
and the packet-level simulator (drop-tail queues + NewReno TCP), shows
that both agree on the paper's central comparison, then demonstrates the
Section 2 flowlet-switching mechanism and an incast hotspot with real
packet drops.

Run:  python examples/packet_level_validation.py
"""

from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim import simulate_fct
from repro.sim.packet import PacketSimulator, simulate_fct_packet
from repro.topology import flatten, leaf_spine
from repro.traffic import CanonicalCluster, Flow, Placement, fb_skewed, generate_flows


def main() -> None:
    ls = leaf_spine(8, 4)
    rrg = flatten(ls, seed=2, name="rrg")
    cluster = CanonicalCluster(12, 8)
    flows = generate_flows(
        fb_skewed(cluster, seed=1), 500, 0.0025, seed=1, size_cap=1e6
    )

    print("Cross-validation on an FB-skewed workload (mean FCT, ms):\n")
    print(f"{'model':<14}{'leaf-spine+ecmp':>18}{'rrg+su2':>12}")
    for label, sim in (
        ("flow-level", simulate_fct),
        ("packet-level", simulate_fct_packet),
    ):
        ls_res = sim(ls, EcmpRouting(ls), Placement(cluster, ls), flows)
        rrg_res = sim(
            rrg, ShortestUnionRouting(rrg, 2), Placement(cluster, rrg), flows
        )
        print(
            f"{label:<14}{ls_res.mean_fct_ms():>18.4f}"
            f"{rrg_res.mean_fct_ms():>12.4f}"
        )

    print("\nIncast: 8 senders blast one server (packet level)")
    placement = Placement(cluster, ls)
    incast = [Flow(src, 90, 5e5, 0.0) for src in range(8)]
    sim = PacketSimulator(ls, EcmpRouting(ls), placement, seed=0)
    results = sim.run(incast)
    print(
        f"  p99 FCT {results.p99_fct_ms():.3f} ms, "
        f"{sim.total_drops()} packets tail-dropped at the bottleneck"
    )

    print("\nFlowlet switching (Section 2's Kassing-style mechanism):")
    for gap in (None, 100e-6):
        sim = PacketSimulator(
            ls, EcmpRouting(ls), placement, seed=0, flowlet_gap_s=gap
        )
        results = sim.run(flows[:150])
        flowlets = sum(c.flowlets for c in sim._contexts.values())
        label = "per-flow hashing" if gap is None else f"gap {gap*1e6:.0f} us"
        print(
            f"  {label:<18} mean FCT {results.mean_fct_ms():.4f} ms, "
            f"{flowlets} flowlets over {results.num_flows} flows"
        )


if __name__ == "__main__":
    main()
