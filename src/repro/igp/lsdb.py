"""Link-state advertisements and per-router databases.

Each router originates one LSA describing its live adjacencies; the
fabric floods LSAs until every router holds an identical database, from
which each router independently computes shortest paths.  Sequence
numbers implement the freshness rule: a router installs an LSA only if
its sequence number is newer than what it holds, which is what makes
flooding terminate and failures propagate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Optional, Tuple


@dataclass(frozen=True)
class LinkStateAd:
    """One router's view of its own adjacencies."""

    origin: int
    sequence: int
    #: (neighbor, cost) pairs; cost is hop count 1 in this fabric.
    adjacencies: FrozenSet[Tuple[int, int]]

    def newer_than(self, other: Optional["LinkStateAd"]) -> bool:
        return other is None or self.sequence > other.sequence


class LinkStateDatabase:
    """The set of freshest LSAs a router has heard."""

    def __init__(self) -> None:
        self._ads: Dict[int, LinkStateAd] = {}

    def install(self, ad: LinkStateAd) -> bool:
        """Install if fresher; returns True when the database changed."""
        if ad.newer_than(self._ads.get(ad.origin)):
            self._ads[ad.origin] = ad
            return True
        return False

    def get(self, origin: int) -> Optional[LinkStateAd]:
        return self._ads.get(origin)

    def ads(self) -> Iterator[LinkStateAd]:
        return iter(self._ads.values())

    def origins(self) -> FrozenSet[int]:
        return frozenset(self._ads)

    def digest(self) -> FrozenSet[Tuple[int, int]]:
        """(origin, sequence) fingerprint, for convergence detection."""
        return frozenset(
            (ad.origin, ad.sequence) for ad in self._ads.values()
        )

    def __len__(self) -> int:
        return len(self._ads)
