"""Tests for the experiment harness scaffolding."""


from repro.experiments import PAPER, SMALL, build_suite, scheme_labels


class TestScales:
    def test_small_cluster_matches_leafspine(self):
        cluster = SMALL.cluster
        assert cluster.num_racks == SMALL.leaf_x + SMALL.leaf_y
        assert cluster.servers_per_rack == SMALL.leaf_x

    def test_paper_scale_matches_section_5_1(self):
        assert PAPER.leaf_x == 48 and PAPER.leaf_y == 16
        assert PAPER.cluster.num_servers == 3072
        assert PAPER.dring_m * PAPER.dring_n == 80
        assert PAPER.dring_servers == 2988


class TestSuite:
    def test_five_schemes(self):
        suite = build_suite(SMALL, seed=0)
        assert [t.label for t in suite] == scheme_labels()
        assert len(suite) == 5

    def test_three_scheme_variant(self):
        suite = build_suite(SMALL, seed=0, include_ecmp_flats=False)
        assert len(suite) == 3

    def test_flat_topologies_are_flat(self):
        suite = build_suite(SMALL, seed=0)
        by_label = {t.label: t for t in suite}
        assert by_label["DRing (su2)"].network.is_flat()
        assert by_label["RRG (su2)"].network.is_flat()
        assert not by_label["leaf-spine (ecmp)"].network.is_flat()

    def test_dring_and_rrg_share_network_objects(self):
        suite = build_suite(SMALL, seed=0)
        by_label = {t.label: t for t in suite}
        assert (
            by_label["DRing (su2)"].network
            is by_label["DRing (ecmp)"].network
        )

    def test_placements_target_right_networks(self):
        suite = build_suite(SMALL, seed=0)
        for tut in suite:
            placement = tut.placement(shuffle=False, seed=0)
            assert placement.network is tut.network

    def test_comparable_server_counts(self):
        suite = build_suite(SMALL, seed=0)
        counts = [t.network.num_servers for t in suite]
        assert max(counts) - min(counts) <= 0.05 * max(counts)
