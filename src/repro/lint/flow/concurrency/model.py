"""Shared concurrency model: locks, guard annotations, held-lock regions.

Everything the three concurrency rules need is derived once per call
graph and cached:

* **lock discovery** — instance attributes assigned a
  ``threading.Lock`` / ``RLock`` / ``Condition`` / ``Semaphore`` (or a
  program class that *is* a lock: it defines both ``acquire`` and
  ``release``, like the file-based ``StoreLock``) in ``__init__``, plus
  module-level ``NAME = threading.Lock()`` globals.  A lock's identity
  is its owner: ``repro.service.jobs.JobManager._cond``.
* **guard annotations** — ``# repro-guard:`` comments declare the
  locking contract so the lockset rule can *verify* instead of guess:

  - ``# repro-guard: <attr> by <lock> -- reason`` (in a class body):
    every access of ``<attr>`` must hold ``<lock>``;
  - ``# repro-guard: <attr> unguarded -- reason``: the attribute is
    deliberately lock-free (immutable, or internally synchronized);
  - ``# repro-guard: requires <lock> -- reason`` (on or above a
    ``def``): the function demands the lock already held at entry; it
    is analyzed with the lock held and every call site is checked.

  The reason after ``--`` is mandatory; the lint meta-test rejects
  bare annotations.
* **the region walk** — an interprocedural traversal that carries the
  set of held locks through ``with <lock>:`` blocks, explicit
  ``.acquire()`` / ``.release()`` pairs and ``Condition.wait``
  re-acquires, across resolved call edges.  It records attribute
  accesses (with their locksets), lock acquisition order, calls made
  while holding a lock, and condition-variable misuse.

Known approximations, chosen to keep the gate actionable: acquisitions
inside a branch are assumed balanced (they do not escape the branch),
lock *aliases* (``lock = self._lock``) are not tracked, and module
globals are left to ``deep-worker-safety``.  Classes deriving from
``threading.local`` are exempt everywhere — per-thread state cannot
race.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.lint.flow.callgraph import (
    CLASS,
    EXT,
    EXTERNAL,
    INTERNAL,
    CallGraph,
    CallSite,
    _collect_local_types,
)
from repro.lint.flow.program import (
    FunctionInfo,
    ModuleInfo,
    Program,
    annotation_name,
    function_statements,
)
from repro.lint.flow.worker import find_thread_entry_points

#: (kind, name) like the call-graph's LocalType: kind is CLASS or EXT.
TypeRef = Tuple[str, str]

#: External lock constructors -> reentrant on one thread?  A Condition
#: wraps an RLock by default, so re-entering it is legal.
_EXTERNAL_LOCKS: Dict[str, bool] = {
    "threading.Lock": False,
    "threading.RLock": True,
    "threading.Condition": True,
    "threading.Semaphore": False,
    "threading.BoundedSemaphore": False,
    "multiprocessing.Lock": False,
    "multiprocessing.RLock": True,
}

_CONDITION_TYPES = frozenset({"threading.Condition"})

#: Method names that operate on a lock object itself.
_LOCK_OPS = frozenset({
    "acquire", "release", "locked", "wait", "wait_for",
    "notify", "notify_all",
})

#: Container methods that mutate their receiver in place (an access of
#: the receiver attribute is then a *write* for lockset purposes).
_MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "pop",
    "popleft", "popitem", "clear", "update", "setdefault", "add",
    "discard", "sort", "reverse", "set",
})

#: Subscripted annotations whose *second* argument types the elements.
_VALUE_CONTAINERS = frozenset({
    "Dict", "dict", "Mapping", "MutableMapping", "DefaultDict",
    "OrderedDict",
})

#: Subscripted annotations whose *first* argument types the elements.
_ELEM_CONTAINERS = frozenset({
    "List", "list", "Set", "set", "FrozenSet", "frozenset", "Deque",
    "deque", "Sequence", "Iterable", "Iterator", "Collection",
})

_GUARD_RE = re.compile(
    r"#\s*repro-guard:\s*(?P<body>.*?)\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)

#: Depth cap for the region walk (call chains, not AST depth).
_MAX_WALK_DEPTH = 48


@dataclass(frozen=True)
class AttrType:
    """Light attribute type: the attribute itself and, for containers,
    the element (or dict-value) type."""

    ref: Optional[TypeRef] = None
    elem: Optional[TypeRef] = None


@dataclass(frozen=True)
class LockInfo:
    """One discovered lock and how it behaves."""

    lock_id: str
    owner_class: str  # class qname, or "" for a module-level lock
    attr: str
    type_name: str  # "threading.Condition", or a program class qname
    reentrant: bool
    is_condition: bool

    @property
    def label(self) -> str:
        """Short display form: ``JobManager._cond``."""
        owner = self.owner_class or self.lock_id.rsplit(".", 2)[-2]
        return f"{owner.rsplit('.', 1)[-1]}.{self.attr}"


@dataclass(frozen=True)
class GuardDecl:
    """``# repro-guard: <attr> by <lock>`` (or ``unguarded``)."""

    owner_class: str
    attr: str
    lock_id: str  # "" when declared unguarded
    path: str
    line: int
    reason: str


@dataclass(frozen=True)
class RequiresDecl:
    """``# repro-guard: requires <lock>`` on a function."""

    func: str
    locks: FrozenSet[str]
    path: str
    line: int
    reason: str


@dataclass(frozen=True)
class BadGuard:
    """A guard comment the model could not resolve (typo safety)."""

    path: str
    line: int
    message: str


@dataclass(frozen=True)
class AttrAccess:
    """One read/write of ``cls.attr`` with the locks held at that point."""

    cls: str
    attr: str
    write: bool
    held: FrozenSet[str]
    func: str
    path: str
    line: int
    column: int


@dataclass(frozen=True)
class LockAcquisition:
    """One lock acquisition and what was already held."""

    lock_id: str
    held_before: FrozenSet[str]
    via: str  # "with" | "acquire" | "wait-reacquire"
    func: str
    path: str
    line: int
    column: int


#: LockCall kind for a ``Condition.wait`` made while holding it.
COND_WAIT = "cond-wait"


@dataclass(frozen=True)
class LockCall:
    """A call made while holding locks (or a call to a requires-func)."""

    target: str
    kind: str  # internal/external/unresolved/cond-wait
    text: str
    held: FrozenSet[str]
    func: str
    path: str
    line: int
    column: int
    #: Externally-typed receiver of a method call ("threading.Thread"
    #: for ``worker.join()``), when the model can recover it.
    receiver: str = ""


@dataclass(frozen=True)
class CondMisuse:
    """``wait``/``notify`` on a condition that is not held."""

    lock_id: str
    op: str
    func: str
    path: str
    line: int
    column: int


@dataclass
class RegionFacts:
    """Everything one region walk observed."""

    accesses: List[AttrAccess] = field(default_factory=list)
    acquisitions: List[LockAcquisition] = field(default_factory=list)
    calls: List[LockCall] = field(default_factory=list)
    misuses: List[CondMisuse] = field(default_factory=list)
    reached: Set[str] = field(default_factory=set)
    #: Caller -> internal callees this walk resolved (a superset of the
    #: call graph's edges: receiver types flow through the region walk).
    edges: Dict[str, Set[str]] = field(default_factory=dict)


@dataclass
class Scope:
    """Per-function typing context for the walker."""

    info: FunctionInfo
    module: ModuleInfo
    env: Dict[str, TypeRef]
    elems: Dict[str, TypeRef]


class ConcurrencyModel:
    """Locks, guards and typing shared by the three concurrency rules."""

    def __init__(self, graph: CallGraph) -> None:
        self.callgraph = graph
        self.program: Program = graph.program
        #: class qname -> attr -> AttrType (richer than the program's
        #: ``attr_types``: class-body annotations, container elements).
        self.attr_types: Dict[str, Dict[str, AttrType]] = {}
        self.locks: Dict[str, LockInfo] = {}
        self.locks_by_class: Dict[str, Dict[str, LockInfo]] = {}
        self.module_locks: Dict[str, Dict[str, LockInfo]] = {}
        self.guards: Dict[Tuple[str, str], GuardDecl] = {}
        self.requires: Dict[str, RequiresDecl] = {}
        self.bad_guards: List[BadGuard] = []
        self.thread_local_classes: Set[str] = set()
        self._site_index: Dict[Tuple[str, int, int], CallSite] = {}
        for site in graph.sites:
            self._site_index[(site.caller, site.line, site.column)] = site
        self._scopes: Dict[str, Scope] = {}
        self._build_attr_types()
        self._discover_locks()
        self._collect_guards()

    # -- attribute typing ----------------------------------------------

    def _build_attr_types(self) -> None:
        for cls in self.program.classes.values():
            module = self.program.modules[cls.module]
            attrs: Dict[str, AttrType] = {}
            # Class-body annotations (dataclass fields, handler attrs).
            for stmt in cls.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    attrs[stmt.target.id] = self._resolve_type_expr(
                        module, stmt.annotation
                    )
            init_qname = cls.methods.get("__init__")
            if init_qname is not None:
                self._scan_init(module, cls.qname, init_qname, attrs)
            self.attr_types[cls.qname] = attrs
            for base in cls.base_exprs:
                if (annotation_name(base) or "") == "threading.local":
                    self.thread_local_classes.add(cls.qname)
        # Inherit attribute types from in-program bases (one pass is
        # enough for the shallow hierarchies this package has).
        for cls in self.program.classes.values():
            module = self.program.modules[cls.module]
            for base in cls.base_exprs:
                dotted = annotation_name(base)
                resolved = (
                    self.program._resolve_type_name(module, dotted)
                    if dotted
                    else None
                )
                if resolved and resolved in self.attr_types:
                    for attr, at in self.attr_types[resolved].items():
                        self.attr_types[cls.qname].setdefault(attr, at)

    def _scan_init(
        self,
        module: ModuleInfo,
        cls_qname: str,
        init_qname: str,
        attrs: Dict[str, AttrType],
    ) -> None:
        init = self.program.functions[init_qname].node
        if not isinstance(init, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        param_types: Dict[str, AttrType] = {}
        args = init.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is not None:
                param_types[arg.arg] = self._resolve_type_expr(
                    module, arg.annotation
                )
        for stmt in function_statements(init):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                at = AttrType()
                if isinstance(stmt, ast.AnnAssign):
                    at = self._resolve_type_expr(module, stmt.annotation)
                elif isinstance(stmt.value, ast.Call):
                    at = AttrType(
                        ref=self._constructor_ref(module, stmt.value)
                    )
                elif isinstance(stmt.value, ast.Name):
                    at = param_types.get(stmt.value.id, AttrType())
                elif isinstance(stmt.value, (ast.List, ast.ListComp)):
                    elt: Optional[ast.expr] = None
                    if isinstance(stmt.value, ast.List) and stmt.value.elts:
                        elt = stmt.value.elts[0]
                    elif isinstance(stmt.value, ast.ListComp):
                        elt = stmt.value.elt
                    if isinstance(elt, ast.Call):
                        at = AttrType(
                            elem=self._constructor_ref(module, elt)
                        )
                if at.ref is not None or at.elem is not None:
                    attrs.setdefault(target.attr, at)

    def _resolve_type_expr(
        self, module: ModuleInfo, expr: Optional[ast.expr]
    ) -> AttrType:
        """An annotation expression to an :class:`AttrType`, containers
        included (``Dict[str, ServiceJob]`` -> elem ServiceJob)."""
        if expr is None:
            return AttrType()
        if isinstance(expr, ast.Subscript):
            outer = annotation_name(expr.value) or ""
            tail = outer.rsplit(".", 1)[-1]
            if tail == "Optional":
                return self._resolve_type_expr(module, expr.slice)
            inner = expr.slice
            if tail in _VALUE_CONTAINERS:
                if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                    return AttrType(
                        elem=self._name_ref(module, inner.elts[1])
                    )
                return AttrType()
            if tail in _ELEM_CONTAINERS:
                target = (
                    inner.elts[0]
                    if isinstance(inner, ast.Tuple) and inner.elts
                    else inner
                )
                return AttrType(elem=self._name_ref(module, target))
            return AttrType()
        return AttrType(ref=self._name_ref(module, expr))

    def _name_ref(
        self, module: ModuleInfo, expr: Optional[ast.expr]
    ) -> Optional[TypeRef]:
        """A Name/Attribute type expression to a :data:`TypeRef`."""
        dotted = annotation_name(expr)
        if not dotted:
            return None
        resolved = self.program._resolve_type_name(module, dotted)
        if resolved is not None:
            return (CLASS, resolved)
        root, _, rest = dotted.partition(".")
        base = module.imports.get(root)
        if base is not None:
            return (EXT, base + ("." + rest if rest else ""))
        if dotted in module.imports:
            return (EXT, module.imports[dotted])
        return None

    def _constructor_ref(
        self, module: ModuleInfo, call: ast.Call
    ) -> Optional[TypeRef]:
        return self._name_ref(module, call.func)

    # -- lock discovery ------------------------------------------------

    def _discover_locks(self) -> None:
        for cls_qname, attrs in self.attr_types.items():
            for attr, at in sorted(attrs.items()):
                info = self._lock_info_for(cls_qname, attr, at.ref)
                if info is not None:
                    self.locks[info.lock_id] = info
                    self.locks_by_class.setdefault(cls_qname, {})[
                        attr
                    ] = info
        for module in self.program.modules.values():
            for name, value in sorted(module.assigns.items()):
                if not isinstance(value, ast.Call):
                    continue
                ref = self._constructor_ref(module, value)
                info = self._lock_info_for(
                    "", name, ref, module_name=module.name
                )
                if info is not None:
                    self.locks[info.lock_id] = info
                    self.module_locks.setdefault(module.name, {})[
                        name
                    ] = info

    def _lock_info_for(
        self,
        owner_class: str,
        attr: str,
        ref: Optional[TypeRef],
        module_name: str = "",
    ) -> Optional[LockInfo]:
        if ref is None:
            return None
        kind, name = ref
        lock_id = (
            f"{owner_class}.{attr}"
            if owner_class
            else f"{module_name}.{attr}"
        )
        if kind == EXT and name in _EXTERNAL_LOCKS:
            return LockInfo(
                lock_id=lock_id,
                owner_class=owner_class,
                attr=attr,
                type_name=name,
                reentrant=_EXTERNAL_LOCKS[name],
                is_condition=name in _CONDITION_TYPES,
            )
        if kind == CLASS and self._is_lock_like(name):
            return LockInfo(
                lock_id=lock_id,
                owner_class=owner_class,
                attr=attr,
                type_name=name,
                reentrant=False,
                is_condition=False,
            )
        return None

    def _is_lock_like(self, cls_qname: str) -> bool:
        """A program class that behaves as a lock: it defines both
        ``acquire`` and ``release`` (e.g. the file-based StoreLock)."""
        return (
            self.program.lookup_method(cls_qname, "acquire") is not None
            and self.program.lookup_method(cls_qname, "release") is not None
        )

    # -- guard annotations ---------------------------------------------

    def _collect_guards(self) -> None:
        for module in self.program.modules.values():
            try:
                tokens = list(
                    tokenize.generate_tokens(
                        io.StringIO(module.source).readline
                    )
                )
            except (tokenize.TokenError, SyntaxError, IndentationError):
                continue
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _GUARD_RE.search(token.string)
                if match is None:
                    continue
                self._register_guard(
                    module,
                    token.start[0],
                    match.group("body").strip(),
                    (match.group("reason") or "").strip(),
                )

    def _register_guard(
        self, module: ModuleInfo, line: int, body: str, reason: str
    ) -> None:
        words = body.split()
        if len(words) == 2 and words[0] == "requires":
            func = self._function_at(module, line)
            if func is None:
                self._bad(module, line, "no 'def' on or below this line")
                return
            owner = func.owner_class
            lock_id = self._resolve_lock_spec(module, owner, words[1])
            if lock_id is None:
                self._bad(module, line, f"unknown lock {words[1]!r}")
                return
            existing = self.requires.get(func.qname)
            locks = frozenset({lock_id}) | (
                existing.locks if existing else frozenset()
            )
            self.requires[func.qname] = RequiresDecl(
                func=func.qname, locks=locks, path=module.path,
                line=line, reason=reason,
            )
            return
        if len(words) == 2 and words[1] == "unguarded":
            owner = self._class_at(module, line)
            if owner is None:
                self._bad(module, line, "not inside a class body")
                return
            self.guards[(owner, words[0])] = GuardDecl(
                owner_class=owner, attr=words[0], lock_id="",
                path=module.path, line=line, reason=reason,
            )
            return
        if len(words) == 3 and words[1] == "by":
            owner = self._class_at(module, line)
            if owner is None:
                self._bad(module, line, "not inside a class body")
                return
            lock_id = self._resolve_lock_spec(module, owner, words[2])
            if lock_id is None:
                self._bad(module, line, f"unknown lock {words[2]!r}")
                return
            self.guards[(owner, words[0])] = GuardDecl(
                owner_class=owner, attr=words[0], lock_id=lock_id,
                path=module.path, line=line, reason=reason,
            )
            return
        self._bad(
            module, line,
            "expected '<attr> by <lock>', '<attr> unguarded' or "
            "'requires <lock>'",
        )

    def _bad(self, module: ModuleInfo, line: int, what: str) -> None:
        self.bad_guards.append(BadGuard(
            path=module.path, line=line,
            message=f"unusable repro-guard comment: {what}",
        ))

    def _function_at(
        self, module: ModuleInfo, line: int
    ) -> Optional[FunctionInfo]:
        """The function whose ``def`` sits on ``line`` or ``line + 1``
        (comment at the end of the def line, or on the line above)."""
        for info in self.program.functions.values():
            if info.module != module.name:
                continue
            if info.node.lineno in (line, line + 1):
                return info
        return None

    def _class_at(self, module: ModuleInfo, line: int) -> Optional[str]:
        """Innermost class whose body spans ``line``."""
        best: Optional[str] = None
        best_span = 1 << 30
        for cls in self.program.classes.values():
            if cls.module != module.name:
                continue
            end = cls.node.end_lineno or cls.node.lineno
            if cls.node.lineno <= line <= end:
                span = end - cls.node.lineno
                if span < best_span:
                    best, best_span = cls.qname, span
        return best

    def _resolve_lock_spec(
        self, module: ModuleInfo, owner_class: str, spec: str
    ) -> Optional[str]:
        spec = spec.strip()
        if spec.startswith("self."):
            spec = spec[len("self."):]
        if "." in spec:
            head, _, attr = spec.rpartition(".")
            resolved = self.program.resolve_in_module(module, head)
            if resolved is None:
                resolved = self.program.resolve_qualified(head)
            if resolved is not None:
                info = self.locks_by_class.get(resolved, {}).get(attr)
                if info is not None:
                    return info.lock_id
            return None
        if owner_class:
            info = self.locks_by_class.get(owner_class, {}).get(spec)
            if info is not None:
                return info.lock_id
        mod_info = self.module_locks.get(module.name, {}).get(spec)
        if mod_info is not None:
            return mod_info.lock_id
        return None

    # -- per-function typing -------------------------------------------

    def scope_for(self, qname: str) -> Optional[Scope]:
        scope = self._scopes.get(qname)
        if scope is not None:
            return scope
        info = self.program.functions.get(qname)
        if info is None:
            return None
        module = self.program.module_of(info)
        env: Dict[str, TypeRef] = dict(
            _collect_local_types(self.program, module, info)
        )
        scope = Scope(info=info, module=module, env=env, elems={})
        self._scopes[qname] = scope
        self._augment_scope(scope)
        return scope

    def _augment_scope(self, scope: Scope) -> None:
        """Typing the call-graph's tracker misses: container elements,
        dict lookups, for-targets, and method-call results reached
        through attribute chains (``self.server.manager.get(...)``)."""
        module = scope.module
        for stmt in function_statements(scope.info.node):
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                at = self._resolve_type_expr(module, stmt.annotation)
                if at.elem is not None:
                    scope.elems[stmt.target.id] = at.elem
            elif (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                ref = self.type_of_expr(stmt.value, scope)
                if ref is not None:
                    scope.env[stmt.targets[0].id] = ref
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._type_for_target(scope, stmt.target, stmt.iter)
            elif isinstance(stmt, ast.withitem) and isinstance(
                stmt.optional_vars, ast.Name
            ):
                ref = self.type_of_expr(stmt.context_expr, scope)
                if ref is not None:
                    scope.env[stmt.optional_vars.id] = ref

    def _type_for_target(
        self, scope: Scope, target: ast.expr, source: ast.expr
    ) -> None:
        elem = self._iter_elem(scope, source)
        if elem is None:
            return
        if isinstance(target, ast.Name):
            scope.env[target.id] = elem
        elif (
            isinstance(target, ast.Tuple)
            and len(target.elts) == 2
            and isinstance(target.elts[1], ast.Name)
            and isinstance(source, ast.Call)
            and isinstance(source.func, ast.Attribute)
            and source.func.attr == "items"
        ):
            scope.env[target.elts[1].id] = elem

    def _iter_elem(
        self, scope: Scope, source: ast.expr
    ) -> Optional[TypeRef]:
        if isinstance(source, ast.Call):
            func = source.func
            if isinstance(func, ast.Name) and func.id in (
                "list", "sorted", "tuple", "reversed", "iter",
            ):
                if source.args:
                    return self._iter_elem(scope, source.args[0])
                return None
            if isinstance(func, ast.Attribute) and func.attr in (
                "values", "items",
            ):
                at = self.attr_type_of(func.value, scope)
                return at.elem if at is not None else None
            return None
        at = self.attr_type_of(source, scope)
        return at.elem if at is not None else None

    def _owner_class_of(self, info: FunctionInfo) -> str:
        """The class whose ``self`` a function sees — for nested defs
        and lambdas, the closure's enclosing method's class."""
        while True:
            if info.owner_class:
                return info.owner_class
            parent = self.program.functions.get(info.parent)
            if parent is None:
                return ""
            info = parent

    def _closure_scopes(self, scope: Scope) -> Iterator[Scope]:
        """Enclosing function scopes, innermost first (closure chain)."""
        info = scope.info
        while True:
            parent = self.program.functions.get(info.parent)
            if parent is None:
                return
            enclosing = self.scope_for(parent.qname)
            if enclosing is not None:
                yield enclosing
            info = parent

    def type_of_expr(
        self, expr: ast.expr, scope: Scope
    ) -> Optional[TypeRef]:
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls"):
                owner = self._owner_class_of(scope.info)
                if owner:
                    return (CLASS, owner)
            ref = scope.env.get(expr.id)
            if ref is not None:
                return ref
            for enclosing in self._closure_scopes(scope):
                ref = enclosing.env.get(expr.id)
                if ref is not None:
                    return ref
            value = scope.module.assigns.get(expr.id)
            if isinstance(value, ast.Call):
                return self._constructor_ref(scope.module, value)
            return None
        if isinstance(expr, ast.Attribute):
            base = self.type_of_expr(expr.value, scope)
            if base is None:
                return None
            if base[0] == EXT:
                return (EXT, f"{base[1]}.{expr.attr}")
            at = self.attr_types.get(base[1], {}).get(expr.attr)
            return at.ref if at is not None else None
        if isinstance(expr, ast.Subscript):
            at = self.attr_type_of(expr.value, scope)
            return at.elem if at is not None else None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "get", "pop",
            ):
                at = self.attr_type_of(func.value, scope)
                if at is not None and at.elem is not None:
                    return at.elem
            target = self._callee_qname(func, scope)
            if target is None:
                return None
            if target in self.program.classes:
                return (CLASS, target)
            finfo = self.program.functions.get(target)
            if finfo is not None and isinstance(
                finfo.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                at = self._resolve_type_expr(
                    self.program.modules[finfo.module], finfo.node.returns
                )
                return at.ref
            return None
        return None

    def attr_type_of(
        self, expr: ast.expr, scope: Scope
    ) -> Optional[AttrType]:
        if isinstance(expr, ast.Attribute):
            base = self.type_of_expr(expr.value, scope)
            if base is not None and base[0] == CLASS:
                return self.attr_types.get(base[1], {}).get(expr.attr)
            return None
        if isinstance(expr, ast.Name):
            ref = scope.env.get(expr.id)
            elem = scope.elems.get(expr.id)
            if ref is None and elem is None:
                for enclosing in self._closure_scopes(scope):
                    ref = enclosing.env.get(expr.id)
                    elem = enclosing.elems.get(expr.id)
                    if ref is not None or elem is not None:
                        break
            if ref is None and elem is None:
                return None
            return AttrType(ref=ref, elem=elem)
        return None

    def _callee_qname(
        self, func: ast.expr, scope: Scope
    ) -> Optional[str]:
        if isinstance(func, ast.Name):
            return self.program.resolve_in_module(scope.module, func.id)
        if isinstance(func, ast.Attribute):
            base = self.type_of_expr(func.value, scope)
            if base is not None and base[0] == CLASS:
                return self.program.lookup_method(base[1], func.attr)
        return None

    def resolve_call(
        self, node: ast.Call, scope: Scope
    ) -> Tuple[str, str]:
        """(kind, target) for a call, preferring exact resolutions:
        exact call-graph sites, then receiver typing, then the graph's
        approximate unique-method fallback."""
        site = self._site_index.get(
            (scope.info.qname, node.lineno, node.col_offset)
        )
        if site is not None and site.kind == INTERNAL and not site.approximate:
            return INTERNAL, site.target
        target = self._callee_qname(node.func, scope)
        if target is not None:
            if target in self.program.classes:
                init = self.program.lookup_method(target, "__init__")
                return INTERNAL, init or target
            if target in self.program.functions:
                return INTERNAL, target
        if site is not None:
            return site.kind, site.target
        return "unresolved", ""

    def lock_of_expr(
        self, expr: ast.expr, scope: Scope
    ) -> Optional[LockInfo]:
        if isinstance(expr, ast.Attribute):
            base = self.type_of_expr(expr.value, scope)
            if base is not None and base[0] == CLASS:
                return self.locks_by_class.get(base[1], {}).get(expr.attr)
            return None
        if isinstance(expr, ast.Name):
            info = self.module_locks.get(scope.module.name, {}).get(
                expr.id
            )
            if info is not None:
                return info
            dotted = scope.module.imports.get(expr.id)
            if dotted:
                mod, _, name = dotted.rpartition(".")
                return self.module_locks.get(mod, {}).get(name)
        return None

    def label(self, lock_id: str) -> str:
        info = self.locks.get(lock_id)
        return info.label if info is not None else lock_id

    def is_method(self, cls_qname: str, attr: str) -> bool:
        return self.program.lookup_method(cls_qname, attr) is not None

    def thread_targets(self) -> List[str]:
        """Thread entry points the syntactic finder misses:
        ``Thread(target=obj.method)`` where ``obj``'s class is
        recoverable from the model's local typing."""
        entries: List[str] = []
        for qname in sorted(self.program.functions):
            scope = self.scope_for(qname)
            if scope is None:
                continue
            for node in function_statements(scope.info.node):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted_callee(scope.module, node)
                if not (
                    dotted == "threading.Thread"
                    or dotted.endswith(".Thread")
                ):
                    continue
                for keyword in node.keywords:
                    if keyword.arg != "target":
                        continue
                    target = keyword.value
                    if not isinstance(target, ast.Attribute):
                        continue
                    base = self.type_of_expr(target.value, scope)
                    if base is None or base[0] != CLASS:
                        continue
                    resolved = self.program.lookup_method(
                        base[1], target.attr
                    )
                    if resolved:
                        entries.append(resolved)
        return sorted(set(entries))


# ----------------------------------------------------------------------
# The region walk
# ----------------------------------------------------------------------


class RegionWalker:
    """Carry held-lock sets through bodies and across resolved calls."""

    def __init__(self, model: ConcurrencyModel) -> None:
        self.model = model
        self.facts = RegionFacts()
        self._visited: Set[Tuple[str, FrozenSet[str]]] = set()
        self._promoted: Set[int] = set()
        self._depth = 0

    def walk(
        self, roots: Iterable[Tuple[str, FrozenSet[str]]]
    ) -> RegionFacts:
        for qname, held in roots:
            self._walk_function(qname, held)
        return self.facts

    # -- function / statement traversal --------------------------------

    def _walk_function(self, qname: str, held: FrozenSet[str]) -> None:
        key = (qname, held)
        if key in self._visited or self._depth > _MAX_WALK_DEPTH:
            return
        self._visited.add(key)
        scope = self.model.scope_for(qname)
        if scope is None:
            return
        self.facts.reached.add(qname)
        self._depth += 1
        try:
            node = scope.info.node
            if isinstance(node, ast.Lambda):
                self._scan_expr(node.body, held, scope)
            else:
                self._walk_stmts(node.body, held, scope)
        finally:
            self._depth -= 1

    def _walk_stmts(
        self,
        stmts: List[ast.stmt],
        held: FrozenSet[str],
        scope: Scope,
    ) -> FrozenSet[str]:
        for stmt in stmts:
            held = self._walk_stmt(stmt, held, scope)
        return held

    def _walk_stmt(
        self, stmt: ast.stmt, held: FrozenSet[str], scope: Scope
    ) -> FrozenSet[str]:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                lock = self.model.lock_of_expr(item.context_expr, scope)
                if lock is not None:
                    self._record_acquisition(
                        lock, inner, "with", item.context_expr, scope
                    )
                    inner = inner | {lock.lock_id}
                else:
                    self._scan_expr(item.context_expr, inner, scope)
            self._walk_stmts(stmt.body, inner, scope)
            return held
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A closure runs, at the latest, within this dynamic extent
            # (the call graph's `nested` convention); walk it with the
            # locks held at its definition.
            nested = f"{scope.info.qname}.<locals>.{stmt.name}"
            self._walk_function(nested, held)
            return held
        if isinstance(stmt, ast.ClassDef):
            self._walk_stmts(stmt.body, held, scope)
            return held
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, held, scope)
            self._walk_stmts(stmt.body, held, scope)
            self._walk_stmts(stmt.orelse, held, scope)
            return held
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, held, scope)
            self._scan_expr(stmt.target, held, scope)
            self._walk_stmts(stmt.body, held, scope)
            self._walk_stmts(stmt.orelse, held, scope)
            return held
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, held, scope)
            self._walk_stmts(stmt.body, held, scope)
            self._walk_stmts(stmt.orelse, held, scope)
            return held
        if isinstance(stmt, ast.Try):
            held = self._walk_stmts(stmt.body, held, scope)
            for handler in stmt.handlers:
                if handler.type is not None:
                    self._scan_expr(handler.type, held, scope)
                self._walk_stmts(handler.body, held, scope)
            held = self._walk_stmts(stmt.orelse, held, scope)
            return self._walk_stmts(stmt.finalbody, held, scope)
        return self._walk_simple(stmt, held, scope)

    def _walk_simple(
        self, stmt: ast.stmt, held: FrozenSet[str], scope: Scope
    ) -> FrozenSet[str]:
        # Statement-level lock.acquire() / lock.release() track held.
        call = self._stmt_call(stmt)
        if call is not None and isinstance(call.func, ast.Attribute):
            op = call.func.attr
            if op in ("acquire", "release"):
                lock = self.model.lock_of_expr(call.func.value, scope)
                if lock is not None:
                    for arg in call.args:
                        self._scan_expr(arg, held, scope)
                    if op == "acquire":
                        self._record_acquisition(
                            lock, held, "acquire", call, scope
                        )
                        return held | {lock.lock_id}
                    return held - {lock.lock_id}
        self._scan_expr(stmt, held, scope)
        return held

    @staticmethod
    def _stmt_call(stmt: ast.stmt) -> Optional[ast.Call]:
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Expr):
            value = stmt.value
        elif isinstance(stmt, ast.Assign):
            value = stmt.value
        return value if isinstance(value, ast.Call) else None

    # -- expression scanning -------------------------------------------

    def _scan_expr(
        self, node: ast.AST, held: FrozenSet[str], scope: Scope
    ) -> None:
        for child in self._scan(node, held, scope):
            if isinstance(child, ast.Call):
                self._handle_call(child, held, scope)
            elif isinstance(child, ast.Attribute):
                self._handle_attr(child, held, scope)
            elif isinstance(child, (ast.Subscript,)) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                if isinstance(child.value, ast.Attribute):
                    self._promoted.add(id(child.value))

    def _scan(
        self, node: ast.AST, held: FrozenSet[str], scope: Scope
    ) -> Iterable[ast.AST]:
        """Preorder walk of an expression tree that dispatches nested
        lambdas as functions instead of descending into them."""
        if isinstance(node, (ast.Call, ast.Attribute, ast.Subscript)):
            yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Lambda):
                nested = (
                    f"{scope.info.qname}.<locals>.<lambda@{child.lineno}>"
                )
                self._walk_function(nested, held)
                continue
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            yield from self._scan(child, held, scope)

    def _handle_call(
        self, node: ast.Call, held: FrozenSet[str], scope: Scope
    ) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            op = func.attr
            if op in _LOCK_OPS:
                lock = self.model.lock_of_expr(func.value, scope)
                if lock is not None:
                    self._handle_lock_op(node, op, lock, held, scope)
                    return
            if op in _MUTATING_METHODS and isinstance(
                func.value, ast.Attribute
            ):
                self._promoted.add(id(func.value))
        kind, target = self.model.resolve_call(node, scope)
        if kind == INTERNAL and target:
            self.facts.edges.setdefault(scope.info.qname, set()).add(
                target
            )
            # A requires-annotated callee is analyzed under its declared
            # contract; a caller that breaks it is reported once, at the
            # call site, not again for every access inside the callee.
            decl = self.model.requires.get(target)
            inside = held | decl.locks if decl is not None else held
            self._walk_function(target, inside)
        if held or (kind == INTERNAL and target in self.model.requires):
            receiver = ""
            if kind != INTERNAL and isinstance(func, ast.Attribute):
                ref = self.model.type_of_expr(func.value, scope)
                if ref is not None and ref[0] == EXT:
                    receiver = ref[1]
            self.facts.calls.append(LockCall(
                target=target, kind=kind, text=_text_of(func),
                held=held, func=scope.info.qname,
                path=scope.module.path, line=node.lineno,
                column=node.col_offset, receiver=receiver,
            ))

    def _handle_lock_op(
        self,
        node: ast.Call,
        op: str,
        lock: LockInfo,
        held: FrozenSet[str],
        scope: Scope,
    ) -> None:
        if op in ("wait", "wait_for") and lock.is_condition:
            if lock.lock_id in held:
                self.facts.acquisitions.append(LockAcquisition(
                    lock_id=lock.lock_id,
                    held_before=held - {lock.lock_id},
                    via="wait-reacquire", func=scope.info.qname,
                    path=scope.module.path, line=node.lineno,
                    column=node.col_offset,
                ))
                self.facts.calls.append(LockCall(
                    target=lock.lock_id, kind=COND_WAIT,
                    text=_text_of(node.func), held=held,
                    func=scope.info.qname, path=scope.module.path,
                    line=node.lineno, column=node.col_offset,
                ))
            else:
                self._misuse(lock, op, node, scope)
        elif op in ("notify", "notify_all") and lock.is_condition:
            if lock.lock_id not in held:
                self._misuse(lock, op, node, scope)
        elif op == "acquire":
            # Non-statement-level acquire (e.g. `if lock.acquire(False):`)
            # still orders, even though `held` cannot track it from here.
            self._record_acquisition(lock, held, "acquire", node, scope)

    def _misuse(
        self, lock: LockInfo, op: str, node: ast.AST, scope: Scope
    ) -> None:
        self.facts.misuses.append(CondMisuse(
            lock_id=lock.lock_id, op=op, func=scope.info.qname,
            path=scope.module.path, line=getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", 0),
        ))

    def _record_acquisition(
        self,
        lock: LockInfo,
        held: FrozenSet[str],
        via: str,
        node: ast.AST,
        scope: Scope,
    ) -> None:
        self.facts.acquisitions.append(LockAcquisition(
            lock_id=lock.lock_id, held_before=held, via=via,
            func=scope.info.qname, path=scope.module.path,
            line=getattr(node, "lineno", scope.info.line),
            column=getattr(node, "col_offset", 0),
        ))

    def _handle_attr(
        self, node: ast.Attribute, held: FrozenSet[str], scope: Scope
    ) -> None:
        attr = node.attr
        if attr.startswith("__"):
            return
        base = self.model.type_of_expr(node.value, scope)
        if base is None or base[0] != CLASS:
            return
        cls_qname = base[1]
        if cls_qname in self.model.thread_local_classes:
            return
        if attr in self.model.locks_by_class.get(cls_qname, {}):
            return
        if self.model.is_method(cls_qname, attr):
            return
        info = scope.info
        if (
            info.owner_class == cls_qname
            and info.name in ("__init__", "__post_init__")
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return  # construction-time: the object is not shared yet
        write = (
            isinstance(node.ctx, (ast.Store, ast.Del))
            or id(node) in self._promoted
        )
        self.facts.accesses.append(AttrAccess(
            cls=cls_qname, attr=attr, write=write, held=held,
            func=info.qname, path=scope.module.path,
            line=node.lineno, column=node.col_offset,
        ))


def _text_of(func: ast.expr) -> str:
    parts: List[str] = []
    current: ast.expr = func
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    if parts:
        return "<expr>." + ".".join(reversed(parts))
    return "<call>"


# ----------------------------------------------------------------------
# Shared facts, memoized per call graph
# ----------------------------------------------------------------------


@dataclass
class ConcurrencyFacts:
    """The model plus both walks, shared by the three rules."""

    model: ConcurrencyModel
    #: Race-accounting walk: thread entry points, public methods of
    #: lock-owning classes, and requires-annotated functions (with
    #: their locks pre-held) — the contexts that can actually race.
    race: RegionFacts
    #: Whole-program walk: every function, for lock ordering, blocking
    #: regions and requires-checking.
    whole: RegionFacts
    #: Functions reachable from thread entry points over call-graph
    #: edges augmented with the walker's receiver-typed resolutions.
    thread_reachable: Set[str]


def _dotted_callee(module: ModuleInfo, node: ast.Call) -> str:
    """The callee's dotted name as written, imports expanded."""
    func = node.func
    if isinstance(func, ast.Name):
        return module.imports.get(func.id, func.id)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        head = module.imports.get(func.value.id, func.value.id)
        return f"{head}.{func.attr}"
    return ""


def _thread_entries(model: ConcurrencyModel) -> List[str]:
    entries = set(find_thread_entry_points(model.program))
    entries.update(model.thread_targets())
    return sorted(entries)


def _race_roots(
    model: ConcurrencyModel,
) -> List[Tuple[str, FrozenSet[str]]]:
    roots: List[Tuple[str, FrozenSet[str]]] = []
    empty: FrozenSet[str] = frozenset()
    for qname in _thread_entries(model):
        roots.append((qname, empty))
    for cls_qname in sorted(model.locks_by_class):
        cls = model.program.classes.get(cls_qname)
        if cls is None:
            continue
        for method, qname in sorted(cls.methods.items()):
            if method.startswith("_"):
                continue
            if qname in model.requires:
                continue
            roots.append((qname, empty))
    for qname, decl in sorted(model.requires.items()):
        roots.append((qname, decl.locks))
    return roots


def _whole_roots(
    model: ConcurrencyModel,
) -> List[Tuple[str, FrozenSet[str]]]:
    roots: List[Tuple[str, FrozenSet[str]]] = []
    empty: FrozenSet[str] = frozenset()
    for qname in sorted(model.program.functions):
        decl = model.requires.get(qname)
        roots.append((qname, decl.locks if decl else empty))
    return roots


_FACTS_CACHE: List[Tuple[CallGraph, ConcurrencyFacts]] = []


def concurrency_facts(graph: CallGraph) -> ConcurrencyFacts:
    """Build (or reuse) the shared concurrency facts for this graph."""
    for cached_graph, cached in _FACTS_CACHE:
        if cached_graph is graph:
            return cached
    model = ConcurrencyModel(graph)
    race = RegionWalker(model).walk(_race_roots(model))
    whole = RegionWalker(model).walk(_whole_roots(model))
    seen: Set[str] = set()
    stack = _thread_entries(model)
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.callees(current))
        stack.extend(whole.edges.get(current, set()))
    facts = ConcurrencyFacts(
        model=model, race=race, whole=whole, thread_reachable=seen
    )
    del _FACTS_CACHE[:]
    _FACTS_CACHE.append((graph, facts))
    return facts
