"""Exact warm-started re-solving of max-min allocations across events.

The event loop re-solves the max-min allocation after every admission and
completion.  Consecutive solves differ by a handful of entities, yet the
cold solver (:func:`repro.sim.maxmin.fill_levels`) recomputes every
filling round from scratch — O(active incidence) per event.  This module
replays the *previous* solve against the delta instead, touching only
the links whose fill level can change, and falls back to the cold solver
whenever the replay cannot prove it is exact.

Bit-for-bit exactness argument
------------------------------

A filling round is fully described by its increment (the global minimum
headroom), the per-link demand, and the freeze decision.  Three facts
make incremental replay exact rather than approximate:

* **Integer demands.**  The flow simulator's incidence carries value 1.0
  per (flow, link) entry, so per-link demand is a sum of ones — an exact
  integer below 2**53 regardless of summation order.  Cached demand plus
  an integer correction therefore reproduces the cold solver's demand
  float exactly.
* **Elementwise remaining.**  ``remaining -= increment * demand`` is
  elementwise: link ``l``'s remaining depends only on the per-round
  ``(increment, demand[l])`` history.  Replaying that history with
  scalar IEEE ops produces the identical float chain.
* **Compressed = full link space.**  The cold solver works on the sorted
  distinct referenced links.  Unreferenced links carry zero demand and
  infinite headroom, so a full-link-space replay computes the same
  minima, the same argmin tie-breaks (ids ascend in both spaces), and
  the same saturation sets.

Three modes, tried in order:

* **Scalar replay** (`_try_scalar`): succeeds when every cached round's
  increment survives the delta bitwise.  Per round it re-derives the
  headroom of the *dirty* links (links of the added/removed entities)
  with Python-scalar IEEE arithmetic and checks the cached increment is
  still the global minimum — cached tie links outside the dirty set pin
  the clean-link minimum exactly.  Cost is O(dirty links x rounds),
  independent of network size.
* **Vector suffix replay** (`_run_vector`): from the first divergent
  round, re-runs the remaining rounds as full-link-space vector ops
  seeded from the cached pre-round remaining snapshot (patched at dirty
  links) and the cached demand plus integer corrections.  It assembles
  the identical floats the cold solver would, so it is exact by
  construction, with no O(incidence) pass.
* **Cold** (`fill_levels` + a :class:`FillRecorder`): the ground truth.
  Runs on the first event, when a guard trips (dirty set too large,
  correction set cascading, round count past budget), and rebuilds the
  round cache for subsequent warm solves.

Setting ``REPRO_WARM_VALIDATE=1`` shadows every warm solve with a cold
solve and asserts the levels match bitwise — the regression suite runs
with it on.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.sim.maxmin import _EPSILON, FillScratch, fill_levels

#: Smallest positive subnormal: ``max(d, _TINY)`` equals ``d`` for every
#: positive float, so guarding the divisor this way changes no headroom
#: of a used link while keeping zero-demand links out of 0/0 territory.
_TINY = 5e-324

#: Fallback guards.  Solves whose delta or replay outgrows these run cold
#: (always exact, just slower); the limits only bound warm bookkeeping.
_DIRTY_LIMIT = 160
_ROUND_LIMIT = 96
_CORR_LIMIT = 2048
#: Cache budget in array cells (rounds x links); about 50 MB of float64
#: for the two per-round snapshots together.
_CACHE_CELLS = 3_200_000
#: Vector replay works in the full link space; a cold solve works in the
#: compressed active space.  When the replayed suffix would sweep more
#: than this multiple of the estimated cold work, run cold instead.
_VECTOR_FACTOR = 4.0

_INF = math.inf

#: Shadow-validation default, read once at import.  Validation only adds
#: a cold shadow solve plus a bitwise compare — it cannot change any
#: result, so it is cache-key neutral by construction.
_VALIDATE_DEFAULT = os.environ.get("REPRO_WARM_VALIDATE", "") not in ("", "0")  # repro-lint: disable=cache-key-purity


class _B(Exception):
    """Internal: scalar replay diverged; carries the vector handoff."""

    # repro-perf: allow=deep-hot-dispatch -- divergence signal raised at most once per solve; super().__init__ is CPython-resolved
    def __init__(self, j0: int, rem_pre: Dict[int, float]) -> None:
        super().__init__(j0)
        self.j0 = j0
        self.rem_pre = rem_pre


class _Cold(Exception):
    """Internal: replay cannot proceed; fall back to the cold solver."""

    # repro-perf: allow=deep-hot-dispatch -- cold-fallback signal raised at most once per solve; super().__init__ is CPython-resolved
    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class _Recorder:
    """Snapshots a cold solve's rounds into full-link-space caches."""

    # repro-perf: allow=deep-alloc-in-hot-loop -- one recorder per cold fallback; eight empty lists cost nothing next to the O(network) solve they cache
    def __init__(self, owner: "WarmFill") -> None:
        self._owner = owner
        self.overflow = False
        self.inc: List[float] = []
        self.cur: List[float] = []
        self.frz: List[Set[int]] = []
        self.sat: List[Set[int]] = []
        self.tie: List[Set[int]] = []
        self.forced: List[bool] = []
        self.d: List[np.ndarray] = []
        self.rem: List[np.ndarray] = []
        self.done = False

    def on_round(
        self,
        links: np.ndarray,
        demand: np.ndarray,
        rem_pre: np.ndarray,
        increment: float,
        current: float,
        frozen: np.ndarray,
        sat_mask: np.ndarray,
        tie_mask: np.ndarray,
        forced: bool,
    ) -> None:
        if self.overflow:
            return
        owner = self._owner
        if (len(self.inc) + 1) * owner.num_links > owner.cache_cells or len(
            self.inc
        ) >= owner.round_limit:
            self.overflow = True
            return
        d_full = np.zeros(owner.num_links)
        d_full[links] = demand
        rem_full = owner.caps.copy()
        rem_full[links] = rem_pre
        self.inc.append(increment)
        self.cur.append(current)
        self.frz.append(set(int(e) for e in frozen))
        self.sat.append(set(int(l) for l in links[sat_mask]))
        self.tie.append(set(int(l) for l in links[tie_mask]))
        self.forced.append(forced)
        self.d.append(d_full)
        self.rem.append(rem_full)

    def on_done(self, levels: np.ndarray, iterations: int) -> None:
        self.done = True


class WarmFill:
    """Persistent warm-start state for one event-driven simulation.

    The owner notifies it of every admission (:meth:`admit`) and
    retirement (:meth:`retire`) and calls :meth:`solve` wherever it
    previously called :func:`fill_levels`; results are bitwise
    identical, usually much cheaper.
    """

    # repro-perf: allow=deep-alloc-in-hot-loop -- one-time construction per simulator; buffers built here are reused by every solve
    def __init__(
        self,
        caps: np.ndarray,
        *,
        dirty_limit: int = _DIRTY_LIMIT,
        round_limit: int = _ROUND_LIMIT,
        corr_limit: int = _CORR_LIMIT,
        cache_cells: int = _CACHE_CELLS,
        vector_factor: float = _VECTOR_FACTOR,
        validate: Optional[bool] = None,
    ) -> None:
        self.caps = np.asarray(caps, dtype=float)
        self.num_links = len(self.caps)
        #: Same floats as the cold solver's per-link saturation cutoff.
        self._satv = self.caps * _EPSILON
        self.dirty_limit = dirty_limit
        self.round_limit = round_limit
        self.corr_limit = corr_limit
        self.cache_cells = cache_cells
        self.vector_factor = vector_factor
        if validate is None:
            validate = _VALIDATE_DEFAULT
        self._validate = validate
        self.counters: Dict[str, int] = {}

        # Entity bookkeeping (ids are simulator slots; never reused).
        self._links: Dict[int, List[int]] = {}
        self._users: Dict[int, Set[int]] = {}
        self._frz_round: Dict[int, int] = {}
        self._adds: List[int] = []
        self._rems: List[int] = []

        # Per-round solve cache (full link space).
        self._valid = False
        self._inc: List[float] = []
        self._cur: List[float] = []
        self._frz: List[Set[int]] = []
        self._sat: List[Set[int]] = []
        self._tie: List[Set[int]] = []
        self._forced: List[bool] = []
        self._d: List[np.ndarray] = []
        self._rem: List[np.ndarray] = []
        self._levels = np.zeros(1024)

        # Vector-replay scratch.
        self._b_dsafe = np.empty(self.num_links)
        self._b_h = np.empty(self.num_links)
        self._b_unused = np.empty(self.num_links, dtype=bool)

        # Scalar-replay handoff state (rebuilt by every _try_scalar call).
        self._corr: Dict[int, int] = {}
        self._unf_adds: Set[int] = set()
        self._rmset: Set[int] = set()
        self._patch_prefix: List[
            Tuple[Dict[int, float], Dict[int, float], Dict[int, float], Set[int], List[int]]
        ] = []
        self._dlist: List[int] = []
        self._rem_a: Dict[int, float] = {}
        self._sat_a: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Owner notifications
    # ------------------------------------------------------------------

    # repro-perf: allow=deep-alloc-in-hot-loop,deep-hot-dispatch -- per-admit bookkeeping is O(path length) small-int work; the arrays it avoids are O(network)
    def admit(self, entity: int, links: Sequence[int]) -> None:
        """Register a newly admitted entity and its link ids."""
        ll = [int(l) for l in links]
        self._links[entity] = ll
        for l in ll:
            self._users.setdefault(l, set()).add(entity)
        self._adds.append(entity)
        if entity >= len(self._levels):
            grown = np.zeros(max(2 * len(self._levels), entity + 1))
            grown[: len(self._levels)] = self._levels
            self._levels = grown

    def retire(self, entities: Sequence[int]) -> None:
        """Mark entities finished; they leave the next solve's actives."""
        for e in entities:
            self._rems.append(int(e))
            for l in self._links[int(e)]:
                users = self._users.get(l)
                if users is not None:
                    users.discard(int(e))
                    if not users:
                        del self._users[l]

    def reset(self) -> None:
        """Forget all entities and cached rounds (fresh run)."""
        self._links.clear()
        self._users.clear()
        self._frz_round.clear()
        self._adds.clear()
        self._rems.clear()
        self._invalidate()
        self._levels[:] = 0.0

    def _invalidate(self) -> None:
        self._valid = False
        self._inc.clear()
        self._cur.clear()
        self._frz.clear()
        self._sat.clear()
        self._tie.clear()
        self._forced.clear()
        self._d.clear()
        self._rem.clear()

    def _count(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    # ------------------------------------------------------------------
    # Solve
    # ------------------------------------------------------------------

    # repro-hot: per-event -- warm replacement for the from-scratch solve
    def solve(
        self,
        ent: np.ndarray,
        lnk: np.ndarray,
        val: np.ndarray,
        active: np.ndarray,
        link_refs: np.ndarray,
        scratch: FillScratch,
    ) -> Tuple[np.ndarray, int]:
        """Levels for the current actives, bitwise equal to a cold solve.

        ``ent``/``lnk``/``val``/``active``/``link_refs`` describe the
        same state a cold :func:`fill_levels` call would see; the warm
        modes only read the cached rounds plus the admit/retire delta,
        and the cold fallback consumes the arrays directly.
        """
        self._count("alloc_solves")
        adds = self._adds
        rems = self._rems
        iterations = -1
        if self._valid:
            try:
                iterations = self._try_scalar(adds, rems)
                self._count("alloc_warm_scalar")
            except _B as handoff:
                # The vector suffix sweeps full-link-space arrays once per
                # replayed round; a cold solve sweeps only the active
                # entries plus referenced links.  On large networks with
                # few actives the replay can cost more than starting over,
                # so compare the two estimates before committing to it.
                suffix = max(len(self._inc) - handoff.j0, 1)
                cold_work = (len(self._inc) + 1) * (
                    lnk.size + int(np.count_nonzero(link_refs))
                )
                if suffix * self.num_links > self.vector_factor * cold_work:
                    self._count("alloc_cold_vector_guard")
                    iterations = -1
                else:
                    try:
                        iterations = self._run_vector(adds, rems, handoff)
                        self._count("alloc_warm_vector")
                    except _Cold as bail:
                        self._count("alloc_cold_" + bail.reason)
                        iterations = -1
            except _Cold as bail:
                self._count("alloc_cold_" + bail.reason)
                iterations = -1
        else:
            self._count("alloc_cold_nocache")
        if iterations < 0:
            iterations = self._run_cold(ent, lnk, val, active, link_refs, scratch)
        else:
            self._count("alloc_warm_solves")
            self._count("alloc_resolved_links", len(self._dirty(adds, rems)))
            # Denominator for the re-solved-links fraction: what a cold
            # solve would have swept for each of these warm solves.
            self._count("alloc_link_space", self.num_links)
        self._count("alloc_rounds", iterations)
        self._finish_delta()
        if self._validate:
            self._shadow_check(ent, lnk, val, active, link_refs)
        return self._levels, iterations

    def _dirty(self, adds: List[int], rems: List[int]) -> Set[int]:
        dirty: Set[int] = set()
        for e in adds:
            dirty.update(self._links[e])
        for e in rems:
            dirty.update(self._links[e])
        return dirty

    def _finish_delta(self) -> None:
        for e in self._rems:
            del self._links[e]
            self._frz_round.pop(e, None)
        self._adds.clear()
        self._rems.clear()

    # repro-perf: allow=deep-hot-dispatch -- validation-only path, off by default; runs a full shadow cold solve anyway
    def _shadow_check(
        self,
        ent: np.ndarray,
        lnk: np.ndarray,
        val: np.ndarray,
        active: np.ndarray,
        link_refs: np.ndarray,
    ) -> None:
        expect, _ = fill_levels(
            ent, lnk, val, self.caps, active,
            links=np.flatnonzero(link_refs > 0),
        )
        got = self._levels[: len(expect)]
        if not np.array_equal(expect, got):
            bad = np.flatnonzero(expect != got)
            raise AssertionError(
                f"warm solve diverged from cold at entities {bad[:8].tolist()}: "
                f"warm={got[bad[:8]].tolist()} cold={expect[bad[:8]].tolist()}"
            )

    # ------------------------------------------------------------------
    # Cold fallback (records the cache for the next event)
    # ------------------------------------------------------------------

    # repro-perf: allow=deep-alloc-in-hot-loop -- cold fallback already pays an O(network) solve; the recorder dict is noise beside it
    def _run_cold(
        self,
        ent: np.ndarray,
        lnk: np.ndarray,
        val: np.ndarray,
        active: np.ndarray,
        link_refs: np.ndarray,
        scratch: FillScratch,
    ) -> int:
        self._count("alloc_cold_solves")
        self._invalidate()
        recorder = _Recorder(self)
        levels, iterations = fill_levels(
            ent, lnk, val, self.caps, active,
            links=np.flatnonzero(link_refs > 0),
            scratch=scratch,
            recorder=recorder,
        )
        if len(levels) > len(self._levels):
            self._levels = np.zeros(max(2 * len(self._levels), len(levels)))
        self._levels[: len(levels)] = levels
        self._levels[len(levels):] = 0.0
        if recorder.done and not recorder.overflow:
            self._inc = recorder.inc
            self._cur = recorder.cur
            self._frz = recorder.frz
            self._sat = recorder.sat
            self._tie = recorder.tie
            self._forced = recorder.forced
            self._d = recorder.d
            self._rem = recorder.rem
            self._frz_round = {
                e: j for j, frz in enumerate(self._frz) for e in frz
            }
            self._valid = True
        return iterations

    # ------------------------------------------------------------------
    # Mode A: scalar replay of every cached round
    # ------------------------------------------------------------------

    # repro-perf: allow=deep-alloc-in-hot-loop -- scalar replay touches only dirty links (bounded by dirty_limit); small dict/set churn replaces O(network) vector rounds
    def _try_scalar(self, adds: List[int], rems: List[int]) -> int:
        caps = self.caps
        satv = self._satv
        dirty = self._dirty(adds, rems)
        if len(dirty) > self.dirty_limit:
            raise _Cold("dirty_guard")
        dlist = sorted(dirty)
        rem_a: Dict[int, float] = {l: float(caps[l]) for l in dlist}
        sat_a: Dict[int, float] = {l: float(satv[l]) for l in dlist}
        corr: Dict[int, int] = {}
        for e in adds:
            for l in self._links[e]:
                corr[l] = corr.get(l, 0) + 1
        for e in rems:
            for l in self._links[e]:
                corr[l] = corr.get(l, 0) - 1
        unf_adds = set(adds)
        rmset = set(rems)
        rounds = len(self._inc)
        # Per-round patch data, applied only if the whole replay succeeds.
        patch: List[
            Tuple[Dict[int, float], Dict[int, float], Dict[int, float], Set[int], List[int]]
        ] = []

        self._corr = corr  # vector handoff reads the live correction map
        self._unf_adds = unf_adds
        self._rmset = rmset
        self._patch_prefix = patch
        self._dlist = dlist
        self._rem_a = rem_a
        self._sat_a = sat_a

        for j in range(rounds):
            inc = self._inc[j]
            if self._forced[j]:
                # A forced round's argmin needs every link's headroom;
                # the vector replay recomputes it exactly.
                raise _B(j, dict(rem_a))
            dcj = self._d[j]
            dj: Dict[int, float] = {}
            hj: Dict[int, float] = {}
            min_dirty = _INF
            for l in dlist:
                v = float(dcj[l]) + corr.get(l, 0)
                dj[l] = v
                if v > 0.0:
                    h = rem_a[l] / v
                    hj[l] = h
                    if h < min_dirty:
                        min_dirty = h
            clean_tie = False
            for t in self._tie[j]:
                if t not in dirty:
                    clean_tie = True
                    break
            if clean_tie:
                effective = inc if inc <= min_dirty else min_dirty
            else:
                effective = min_dirty
            if effective != inc:
                raise _B(j, dict(rem_a))
            rem_pre = dict(rem_a)
            dsat: Set[int] = set()
            for l, v in dj.items():
                if v > 0.0:
                    r = rem_a[l] - inc * v
                    rem_a[l] = r
                    if r <= sat_a[l]:
                        dsat.add(l)
            newly_set: Set[int] = set()
            for l in sorted(dsat):
                for e in self._users.get(l, ()):
                    fr = self._frz_round.get(e)
                    if fr is None:
                        if e in unf_adds:
                            newly_set.add(e)
                    elif fr > j:
                        # An old entity would freeze earlier than cached:
                        # its other (possibly clean) links lose demand.
                        raise _B(j, rem_pre)
            for e in self._frz[j]:
                if e in rmset:
                    continue
                covered = False
                sat_j = self._sat[j]
                for l in self._links[e]:
                    if l in dsat or (l in sat_j and l not in dirty):
                        covered = True
                        break
                if not covered:
                    raise _B(j, rem_pre)
            newly = sorted(newly_set)
            for a in newly:
                unf_adds.discard(a)
                self._levels[a] = self._cur[j]
                for l in self._links[a]:
                    corr[l] = corr.get(l, 0) - 1
            for e in self._frz[j]:
                if e in rmset:
                    for l in self._links[e]:
                        corr[l] = corr.get(l, 0) + 1
            patch.append((dj, rem_pre, hj, dsat, newly))

        residual = self._run_residual()
        self._commit_prefix(rounds)
        self._commit_residual(residual)
        for r in rems:
            self._levels[r] = 0.0
        return len(self._inc)

    # repro-perf: allow=deep-alloc-in-hot-loop -- residual rounds iterate only the delta's own links; bounded by dirty_limit
    def _run_residual(
        self,
    ) -> List[Tuple[float, float, Dict[int, float], Dict[int, float], Dict[int, float], Set[int], List[int], bool]]:
        """Extra rounds past the cached ones for still-unfrozen adds."""
        out: List[
            Tuple[float, float, Dict[int, float], Dict[int, float], Dict[int, float], Set[int], List[int], bool]
        ] = []
        unf_adds = self._unf_adds
        if not unf_adds:
            return out
        corr = self._corr
        rem_a = self._rem_a
        sat_a = self._sat_a
        dlist = self._dlist
        cur = self._cur[-1] if self._cur else 0.0
        while unf_adds:
            if len(self._inc) + len(out) >= self.round_limit:
                raise _Cold("round_guard")
            dj: Dict[int, float] = {}
            hj: Dict[int, float] = {}
            min_h = _INF
            arg_l = -1
            for l in dlist:
                c = corr.get(l, 0)
                if c > 0:
                    v = float(c)
                    dj[l] = v
                    h = rem_a[l] / v
                    hj[l] = h
                    if h < min_h:
                        min_h = h
                        arg_l = l
            if arg_l < 0 or not math.isfinite(min_h) or min_h < 0:
                raise _Cold("residual_bail")
            inc = min_h
            cur = cur + inc
            rem_pre = dict(rem_a)
            dsat: Set[int] = set()
            for l, v in dj.items():
                r = rem_a[l] - inc * v
                rem_a[l] = r
                if r <= sat_a[l]:
                    dsat.add(l)
            newly_set: Set[int] = set()
            forced = not dsat
            freeze_links: Tuple[int, ...] = (
                tuple(sorted(dsat)) if dsat else (arg_l,)
            )
            for l in freeze_links:
                for e in self._users.get(l, ()):
                    if e in unf_adds:
                        newly_set.add(e)
            if not newly_set:
                raise _Cold("residual_bail")
            newly = sorted(newly_set)
            for a in newly:
                unf_adds.discard(a)
                self._levels[a] = cur
                for l in self._links[a]:
                    corr[l] = corr.get(l, 0) - 1
            out.append((inc, cur, dj, hj, rem_pre, dsat, newly, forced))
        return out

    # repro-perf: allow=deep-hot-dispatch -- rmset is a plain set built in solve(); isdisjoint is CPython-resolved
    def _commit_prefix(self, upto: int) -> None:
        """Patch cached rounds ``[0, upto)`` with the replayed deltas."""
        dlist = self._dlist
        rmset = self._rmset
        for j in range(upto):
            dj, rem_pre, hj, dsat, newly = self._patch_prefix[j]
            inc = self._inc[j]
            darr = self._d[j]
            rarr = self._rem[j]
            tie = self._tie[j]
            sat = self._sat[j]
            for l in dlist:
                darr[l] = dj[l]
                rarr[l] = rem_pre[l]
                h = hj.get(l)
                if h is not None and h == inc:
                    tie.add(l)
                else:
                    tie.discard(l)
                if l in dsat:
                    sat.add(l)
                else:
                    sat.discard(l)
            frz = self._frz[j]
            if not rmset.isdisjoint(frz):
                frz -= rmset
            for a in newly:
                frz.add(a)
                self._frz_round[a] = j

    # repro-perf: allow=deep-alloc-in-hot-loop -- cache commit clones one compressed round per residual round; bounded by round_limit
    def _commit_residual(
        self,
        residual: List[
            Tuple[float, float, Dict[int, float], Dict[int, float], Dict[int, float], Set[int], List[int], bool]
        ],
    ) -> None:
        if not residual:
            return
        if (len(self._inc) + len(residual)) * self.num_links > self.cache_cells:
            self._invalidate()
            return
        base = self._rem[-1] - self._inc[-1] * self._d[-1]
        for inc, cur, dj, hj, rem_pre, dsat, newly, forced in residual:
            d_full = np.zeros(self.num_links)
            rem_full = base.copy()
            for l, v in dj.items():
                d_full[l] = v
            for l, v in rem_pre.items():
                rem_full[l] = v
            j = len(self._inc)
            self._inc.append(inc)
            self._cur.append(cur)
            self._frz.append(set(newly))
            self._sat.append(set(dsat))
            self._tie.append(
                {l for l, h in hj.items() if dj.get(l, 0.0) > 0.0 and h == inc}
            )
            self._forced.append(forced)
            self._d.append(d_full)
            self._rem.append(rem_full)
            for a in newly:
                self._frz_round[a] = j

    # ------------------------------------------------------------------
    # Mode B: exact vector replay of the divergent suffix
    # ------------------------------------------------------------------

    # repro-perf: allow=deep-alloc-in-hot-loop,deep-hot-dispatch -- vector re-solve allocates per diverged round only; cold would allocate the same arrays for every round
    def _run_vector(
        self, adds: List[int], rems: List[int], handoff: _B
    ) -> int:
        j0 = handoff.j0
        rounds = len(self._inc)
        num_links = self.num_links
        corr = self._corr
        rmset = self._rmset
        # Full-space remaining at round j0: cached snapshot, dirty links
        # patched with the scalar-replayed chain.
        rem = self._rem[j0].copy()
        for l, v in handoff.rem_pre.items():
            rem[l] = v
        unf: Set[int] = set(self._unf_adds)
        for r in range(j0, rounds):
            for e in self._frz[r]:
                if e not in rmset:
                    unf.add(e)
        cur = self._cur[j0 - 1] if j0 > 0 else 0.0
        jc = j0
        satv = self._satv
        dsafe = self._b_dsafe
        h = self._b_h
        unused = self._b_unused
        new_rounds: List[
            Tuple[float, float, Set[int], Set[int], Set[int], bool, np.ndarray, np.ndarray]
        ] = []

        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            while unf:
                if j0 + len(new_rounds) >= self.round_limit:
                    raise _Cold("round_guard")
                if len(corr) > self.corr_limit:
                    raise _Cold("corr_guard")
                self._count("alloc_replay_rounds")
                while jc < rounds and all(
                    (e in rmset or e not in unf) for e in self._frz[jc]
                ):
                    for e in self._frz[jc]:
                        for l in self._links[e]:
                            corr[l] = corr.get(l, 0) + 1
                    jc += 1
                d_eff = self._d[jc].copy() if jc < rounds else np.zeros(num_links)
                if corr:
                    idx = np.fromiter(corr.keys(), dtype=np.intp, count=len(corr))
                    vals = np.fromiter(
                        corr.values(), dtype=np.float64, count=len(corr)
                    )
                    d_eff[idx] += vals
                used = d_eff > 0.0
                if not used.any():
                    raise _Cold("vector_bail")
                np.maximum(d_eff, _TINY, out=dsafe)
                np.divide(rem, dsafe, out=h)
                np.logical_not(used, out=unused)
                np.copyto(h, np.inf, where=unused)
                inc = float(h.min())
                if not math.isfinite(inc) or inc < 0:
                    raise _Cold("vector_bail")
                rem_pre = rem.copy()
                cur = cur + inc
                rem -= inc * d_eff
                sat_mask = used & (rem <= satv)
                sat_ids = np.flatnonzero(sat_mask)
                frz: Set[int] = set()
                forced = sat_ids.size == 0
                if forced:
                    freeze_from: Tuple[int, ...] = (int(np.argmin(h)),)
                else:
                    freeze_from = tuple(int(l) for l in sat_ids)
                for l in freeze_from:
                    for e in self._users.get(l, ()):
                        if e in unf:
                            frz.add(e)
                if not frz:
                    raise _Cold("vector_bail")
                tie_ids = np.flatnonzero(used & (h == inc))
                for e in sorted(frz):
                    unf.discard(e)
                    self._levels[e] = cur
                    for l in self._links[e]:
                        corr[l] = corr.get(l, 0) - 1
                new_rounds.append(
                    (
                        inc,
                        cur,
                        frz,
                        set(int(l) for l in sat_ids),
                        set(int(l) for l in tie_ids),
                        forced,
                        d_eff,
                        rem_pre,
                    )
                )

        # Commit: patch the identical prefix, replace the suffix.
        self._commit_prefix(j0)
        del self._inc[j0:]
        del self._cur[j0:]
        del self._frz[j0:]
        del self._sat[j0:]
        del self._tie[j0:]
        del self._forced[j0:]
        del self._d[j0:]
        del self._rem[j0:]
        for inc, cur, frz, sat, tie, forced, d_full, rem_pre in new_rounds:
            j = len(self._inc)
            self._inc.append(inc)
            self._cur.append(cur)
            self._frz.append(frz)
            self._sat.append(sat)
            self._tie.append(tie)
            self._forced.append(forced)
            self._d.append(d_full)
            self._rem.append(rem_pre)
            for e in sorted(frz):
                self._frz_round[e] = j
        for r in rems:
            self._levels[r] = 0.0
        if len(self._inc) * num_links > self.cache_cells:
            self._invalidate()
        return len(self._inc)
