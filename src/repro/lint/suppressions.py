"""``# repro-lint: disable=<rule>`` suppression comments.

Two forms, parsed from real COMMENT tokens (so a suppression inside a
string literal is inert):

* ``# repro-lint: disable=rule-a,rule-b`` — suppresses those rules on
  the comment's own line.  Put it at the end of the offending line (for
  multi-line statements: the line the statement *starts* on).
* ``# repro-lint: disable-file=rule-a`` — suppresses a rule for the
  whole file.  Conventionally placed near the top, next to a short
  justification.

``disable=all`` silences every rule.  CONTRIBUTING.md asks every
suppression to carry a one-line justification comment.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.lint.findings import Finding

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*(?P<form>disable|disable-file)\s*="
    r"\s*(?P<rules>[A-Za-z0-9_,\- ]+)"
)

#: Wildcard accepted in place of a rule name.
ALL = "all"


@dataclass
class SuppressionIndex:
    """Which rules are silenced where, for one file."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)

    def suppresses(self, finding: Finding) -> bool:
        for scope in (self.file_wide, self.by_line.get(finding.line, set())):
            if finding.rule in scope or ALL in scope:
                return True
        return False


def collect_suppressions(source: str) -> SuppressionIndex:
    """Parse every suppression comment in ``source``."""
    index = SuppressionIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return index
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(token.string)
        if match is None:
            continue
        rules = {
            name.strip()
            for name in match.group("rules").split(",")
            if name.strip()
        }
        if match.group("form") == "disable-file":
            index.file_wide |= rules
        else:
            index.by_line.setdefault(token.start[0], set()).update(rules)
    return index
