"""FRRouting configuration generation for the VRF routing design.

The paper targets "essentially all datacenter switches"; in practice the
open networking stacks (SONiC, Cumulus) run FRRouting rather than IOS,
so this module renders the same Shortest-Union(K) design as
``frr.conf`` text: Linux VRF devices, one ``router bgp`` instance per
VRF with the router's shared AS, per-neighbor ``route-map`` prepending
for the virtual-connection costs, and ``bestpath as-path
multipath-relax`` for ECMP over equal-length AS paths.

Addressing and connection ordering are inherited from
:class:`~repro.bgp.config.ConfigGenerator`, so the two renderers emit
interoperable configurations for the same fabric.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.bgp.config import ConfigGenerator, _link_subnet, rack_prefix, router_as


class FrrConfigGenerator(ConfigGenerator):
    """Render the fabric's configuration as FRRouting ``frr.conf`` files."""

    def render_router(self, switch: int) -> str:
        lines: List[str] = [
            "frr version 8.4",
            "frr defaults datacenter",
            f"hostname router-{switch}",
            "!",
        ]
        lines += list(self._vrf_lines())
        lines += list(self._frr_interface_lines(switch))
        lines += list(self._frr_bgp_lines(switch))
        lines += list(self._route_map_lines(switch))
        lines.append("end")
        return "\n".join(lines)

    # ------------------------------------------------------------------

    def _vrf_lines(self) -> Iterator[str]:
        for level in range(1, self.k + 1):
            yield f"vrf VRF{level}"
            yield " exit-vrf"
            yield "!"

    def _frr_interface_lines(self, switch: int) -> Iterator[str]:
        for a, b, _cost, outgoing in self._local_connections(switch):
            index = self._conn_index[(a, b)]
            local = a if outgoing else b
            addr_a, addr_b = _link_subnet(index)
            address = addr_a if outgoing else addr_b
            yield f"interface eth0.{index} vrf VRF{local[0]}"
            yield f" description vconn-{index} to router-{(b if outgoing else a)[1]}"
            yield f" ip address {address}/31"
            yield "!"

    def _frr_bgp_lines(self, switch: int) -> Iterator[str]:
        local_as = router_as(switch)
        # One BGP instance per VRF, all sharing the router's AS.
        for level in range(1, self.k + 1):
            yield f"router bgp {local_as} vrf VRF{level}"
            yield " bgp bestpath as-path multipath-relax"
            yield " address-family ipv4 unicast"
            if level == self.k:
                yield f"  network {rack_prefix(switch)}"
            yield f"  maximum-paths {max(2, 2 * self.k)}"
            yield " exit-address-family"
            for a, b, cost, outgoing in self._local_connections(switch):
                local = a if outgoing else b
                if local[0] != level:
                    continue
                index = self._conn_index[(a, b)]
                addr_a, addr_b = _link_subnet(index)
                if outgoing:
                    peer_as = router_as(b[1])
                    yield f" neighbor {addr_b} remote-as {peer_as}"
                else:
                    peer_as = router_as(a[1])
                    yield f" neighbor {addr_a} remote-as {peer_as}"
                    if cost > 1:
                        yield (
                            f" neighbor {addr_a} route-map PREPEND-{cost} out"
                        )
            yield "!"

    def _route_map_lines(self, switch: int) -> Iterator[str]:
        costs = sorted({c for _a, _b, c in self._connections if c > 1})
        local_as = router_as(switch)
        for cost in costs:
            prepends = " ".join([str(local_as)] * (cost - 1))
            yield f"route-map PREPEND-{cost} permit 10"
            yield f" set as-path prepend {prepends}"
            yield "!"
