"""Next-hop DAG utilities shared by ECMP and the VRF realization of
Shortest-Union(K).

Hardware ECMP is a per-hop decision: at each switch, traffic toward a
destination splits (approximately) evenly over the next hops that lie on
a minimum-cost path, weighted by the number of parallel links.  Both the
physical shortest-path DAG (plain ECMP) and the VRF-graph shortest-path
DAG (Shortest-Union) reduce to the same two primitives:

* :func:`walk` — sample one concrete path, as a flow hashed at each hop;
* :func:`fractions` — the expected traffic fraction per DAG edge, by
  forward propagation of the per-hop splits.

A "DAG" here is given functionally: ``next_hops(node)`` returns the list
of ``(neighbor, weight)`` choices at ``node``.  Weights are proportional
shares (parallel-link multiplicity); they need not be normalized.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, List, Sequence, Tuple

Node = Hashable
NextHops = Callable[[Node], Sequence[Tuple[Node, float]]]


class DagError(RuntimeError):
    """Raised when a walk or propagation cannot reach the destination."""


def walk(
    next_hops: NextHops,
    src: Node,
    dst: Node,
    rng: random.Random,
    max_hops: int = 1_000,
) -> List[Node]:
    """Sample one path from src to dst by weighted per-hop choices."""
    path = [src]
    node = src
    for _ in range(max_hops):
        if node == dst:
            return path
        choices = next_hops(node)
        if not choices:
            raise DagError(f"dead end at {node!r} walking toward {dst!r}")
        node = _weighted_choice(choices, rng)
        path.append(node)
    raise DagError(f"walk exceeded {max_hops} hops; next_hops is not a DAG")


def fractions(
    next_hops: NextHops,
    src: Node,
    dst: Node,
    max_nodes: int = 1_000_000,
) -> Dict[Tuple[Node, Node], float]:
    """Expected traffic fraction on each DAG edge for a unit of src→dst.

    Performs forward propagation: a unit of traffic enters at ``src``
    and splits at every node proportionally to the next-hop weights.
    The DAG property guarantees each node's inflow is final once all its
    predecessors have been drained; we exploit it with a worklist over a
    dynamically discovered subgraph (Kahn-style, on in-degrees within the
    reachable subgraph).
    """
    # Discover the reachable subgraph and in-degrees.
    successors: Dict[Node, Sequence[Tuple[Node, float]]] = {}
    indegree: Dict[Node, int] = {src: 0}
    stack = [src]
    while stack:
        node = stack.pop()
        if node in successors or node == dst:
            continue
        choices = next_hops(node)
        if not choices:
            raise DagError(f"dead end at {node!r} propagating toward {dst!r}")
        successors[node] = choices
        for nbr, _weight in choices:
            indegree[nbr] = indegree.get(nbr, 0) + 1
            if nbr not in successors and nbr != dst:
                stack.append(nbr)
        if len(successors) > max_nodes:
            raise DagError("propagation exceeded max_nodes; graph has a cycle?")

    inflow: Dict[Node, float] = {src: 1.0}
    edge_flow: Dict[Tuple[Node, Node], float] = {}
    ready = [src]
    while ready:
        node = ready.pop()
        if node == dst:
            continue
        amount = inflow.get(node, 0.0)
        choices = successors[node]
        total_weight = sum(weight for _nbr, weight in choices)
        if total_weight <= 0:
            raise DagError(f"non-positive weights at {node!r}")
        for nbr, weight in choices:
            share = amount * weight / total_weight
            if share > 0.0:
                edge_flow[(node, nbr)] = edge_flow.get((node, nbr), 0.0) + share
            inflow[nbr] = inflow.get(nbr, 0.0) + share
            indegree[nbr] -= 1
            if indegree[nbr] == 0:
                ready.append(nbr)
    arrived = inflow.get(dst, 0.0)
    if abs(arrived - 1.0) > 1e-9:
        raise DagError(
            f"propagation lost traffic: {arrived} arrived at {dst!r} "
            "(next_hops is not a DAG toward dst)"
        )
    return edge_flow


def _weighted_choice(
    choices: Sequence[Tuple[Node, float]], rng: random.Random
) -> Node:
    total = sum(weight for _node, weight in choices)
    if total <= 0:
        raise DagError("non-positive total weight in next-hop choice")
    threshold = rng.random() * total
    accumulated = 0.0
    for node, weight in choices:
        accumulated += weight
        if accumulated >= threshold:
            return node
    return choices[-1][0]
