"""The C-S model of Section 5.2: C clients talk to S servers.

A subset of C hosts acts as clients, packed into the fewest racks
possible (racks chosen at random); S hosts act as servers, packed into
the fewest racks avoiding the client racks.  Sweeping |C| and |S|
captures incast/outcast (C=1 or S=1), rack-to-rack, skewed (|C| << |S|)
and uniform (|C| = |S| = n/2) patterns — the axes of Figure 5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.traffic.matrix import CanonicalCluster, RackPair, TrafficMatrix


@dataclass(frozen=True)
class CsPlacement:
    """Which canonical racks host the clients and servers, and how many."""

    clients_per_rack: Dict[int, int]
    servers_per_rack: Dict[int, int]

    @property
    def num_clients(self) -> int:
        return sum(self.clients_per_rack.values())

    @property
    def num_servers(self) -> int:
        return sum(self.servers_per_rack.values())

    def participating_racks(self) -> List[int]:
        return sorted(set(self.clients_per_rack) | set(self.servers_per_rack))


def place_cs(
    cluster: CanonicalCluster,
    num_clients: int,
    num_servers: int,
    seed: int = 0,
) -> CsPlacement:
    """Pack clients and servers into the fewest racks, racks random.

    Client racks are drawn first; server racks avoid them (Section 5.2).
    Raises when the cluster cannot host both sets disjointly.
    """
    if num_clients < 1 or num_servers < 1:
        raise ValueError("need at least one client and one server")
    per_rack = cluster.servers_per_rack
    client_racks_needed = -(-num_clients // per_rack)
    server_racks_needed = -(-num_servers // per_rack)
    if client_racks_needed + server_racks_needed > cluster.num_racks:
        raise ValueError(
            f"{num_clients} clients + {num_servers} servers do not fit in "
            f"{cluster.num_racks} racks of {per_rack}"
        )
    rng = random.Random(seed)
    racks = list(range(cluster.num_racks))
    rng.shuffle(racks)
    client_racks = racks[:client_racks_needed]
    server_racks = racks[
        client_racks_needed : client_racks_needed + server_racks_needed
    ]
    return CsPlacement(
        clients_per_rack=_fill(client_racks, num_clients, per_rack),
        servers_per_rack=_fill(server_racks, num_servers, per_rack),
    )


def _fill(racks: List[int], count: int, per_rack: int) -> Dict[int, int]:
    filled: Dict[int, int] = {}
    remaining = count
    for rack in racks:
        take = min(per_rack, remaining)
        filled[rack] = take
        remaining -= take
    assert remaining == 0
    return filled


def cs_matrix(
    cluster: CanonicalCluster,
    num_clients: int,
    num_servers: int,
    seed: int = 0,
    name: str = "",
) -> TrafficMatrix:
    """Traffic matrix where every client sends to every server.

    Rack-pair weight = (clients in rack) x (servers in rack), i.e. one
    unit of demand per client-server pair.
    """
    placement = place_cs(cluster, num_clients, num_servers, seed=seed)
    weights: Dict[RackPair, float] = {}
    for c_rack, clients in placement.clients_per_rack.items():
        for s_rack, servers in placement.servers_per_rack.items():
            weights[(c_rack, s_rack)] = float(clients * servers)
    return TrafficMatrix(
        cluster,
        weights,
        name=name or f"C-S(C={num_clients},S={num_servers})",
    )


def cs_skewed_fig4(cluster: CanonicalCluster, seed: int = 0) -> TrafficMatrix:
    """The "C-S skewed" column of Figure 4: C = n/4, S = n/16.

    n is the total host count of the canonical cluster.
    """
    n = cluster.num_servers
    return cs_matrix(
        cluster, max(1, n // 4), max(1, n // 16), seed=seed, name="CS skewed"
    )
