"""Dynamic networks built from flat topologies (Section 7).

Opera-style dynamic fabrics cycle the switch-to-switch wiring through a
sequence of configurations; long flows see the time-average capacity.
Section 7 asks "how much improvement can be gained by reconfiguring
links to obtain another flat network instead of an expander".  This
study answers it in the fluid model:

* **static**: one DRing / one RRG, as in the rest of the paper;
* **dynamic DRing**: the ring rotates — each phase relabels which racks
  are ring-adjacent, so over a full cycle every rack pair spends some
  phases at distance 1;
* **dynamic RRG**: a fresh random graph per phase (Opera's transient
  expanders).

Each phase is a steady-state max-min allocation
(:func:`repro.sim.throughput.tm_throughput`) of the same demand; the
reported number is the per-flow throughput averaged over phases, i.e.
reconfiguration overhead is idealized away exactly as in Opera's
analysis of long flows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.network import Network
from repro.routing import EcmpRouting, ShortestUnionRouting
from repro.sim.throughput import tm_throughput
from repro.topology import dring, jellyfish

RackPair = Tuple[int, int]


def rotated_dring(
    m: int, n: int, servers_per_rack: int, rotation: int
) -> Network:
    """A DRing whose rack-to-position mapping is rotated by ``rotation``.

    Physically: the rack in ring position p now occupies position
    p + rotation, so a different set of rack pairs is directly wired.
    Implemented by relabeling switch ids; rack r's servers stay on
    rack r.
    """
    base = dring(m, n, servers_per_rack=servers_per_rack)
    racks = base.num_racks
    shift = rotation % racks
    if shift == 0:
        return base
    import networkx as nx

    mapping = {old: (old + shift) % racks for old in base.graph.nodes}
    graph = nx.relabel_nodes(base.graph, mapping)
    servers = {rack: servers_per_rack for rack in range(racks)}
    network = Network(
        graph,
        servers,
        link_capacity=base.link_capacity,
        name=f"dring(m={m},n={n},rot={shift})",
    )
    return network


@dataclass(frozen=True)
class DynamicResult:
    """Mean per-flow throughput of each fabric variant, in Gbps."""

    per_variant_gbps: Dict[str, float]

    def gain(self, dynamic: str, static: str) -> float:
        return self.per_variant_gbps[dynamic] / self.per_variant_gbps[static]


def _phase_average(
    networks: Sequence[Network],
    demands: Dict[RackPair, float],
    use_su2: bool,
) -> float:
    total = 0.0
    for network in networks:
        routing = (
            ShortestUnionRouting(network, 2)
            if use_su2
            else EcmpRouting(network)
        )
        total += tm_throughput(network, routing, demands).mean_flow_gbps
    return total / len(networks)


def run_dynamic_study(
    demands: Dict[RackPair, float],
    m: int = 8,
    n: int = 2,
    servers_per_rack: int = 6,
    phases: int = 4,
    seed: int = 0,
) -> DynamicResult:
    """Compare static and dynamic fabrics on one rack-level demand.

    All variants use the same switch count (m*n racks) and degree (4n);
    the DRing variants run Shortest-Union(2) and the RRGs plain ECMP,
    matching how each would be deployed.
    """
    racks = m * n
    bad = [pair for pair in demands if not all(0 <= r < racks for r in pair)]
    if bad:
        raise ValueError(f"demands reference unknown racks: {bad[:3]}")
    static_dring = [dring(m, n, servers_per_rack=servers_per_rack)]
    static_rrg = [
        jellyfish(racks, 4 * n, servers_per_switch=servers_per_rack, seed=seed)
    ]
    rotation_step = max(1, racks // phases)
    dynamic_dring = [
        rotated_dring(m, n, servers_per_rack, rotation=i * rotation_step)
        for i in range(phases)
    ]
    dynamic_rrg = [
        jellyfish(
            racks, 4 * n, servers_per_switch=servers_per_rack, seed=seed + i
        )
        for i in range(phases)
    ]
    return DynamicResult(
        per_variant_gbps={
            "static dring (su2)": _phase_average(static_dring, demands, True),
            "static rrg (ecmp)": _phase_average(static_rrg, demands, False),
            "dynamic dring (su2)": _phase_average(dynamic_dring, demands, True),
            "dynamic rrg (ecmp)": _phase_average(dynamic_rrg, demands, False),
        }
    )


def skewed_demand(racks: int, hot_pairs: int = 3, seed: int = 0) -> Dict[RackPair, float]:
    """A few hot rack pairs: the workload dynamic links are built for."""
    rng = random.Random(seed)
    demands: Dict[RackPair, float] = {}
    while len(demands) < hot_pairs:
        a, b = rng.randrange(racks), rng.randrange(racks)
        if a != b:
            demands[(a, b)] = 1.0
    return demands


def uniform_demand(racks: int) -> Dict[RackPair, float]:
    return {
        (a, b): 1.0 for a in range(racks) for b in range(racks) if a != b
    }


def render_dynamic(results: Dict[str, DynamicResult]) -> str:
    variants = [
        "static dring (su2)",
        "dynamic dring (su2)",
        "static rrg (ecmp)",
        "dynamic rrg (ecmp)",
    ]
    header = f"{'demand':<10}" + "".join(f"{v:>22}" for v in variants)
    lines = [
        "Section 7: dynamic flat networks (mean per-flow Gbps per phase)",
        header,
        "-" * len(header),
    ]
    for label, result in results.items():
        cells = "".join(
            f"{result.per_variant_gbps[v]:>22.3f}" for v in variants
        )
        lines.append(f"{label:<10}" + cells)
    return "\n".join(lines)
