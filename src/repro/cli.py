"""Command-line interface: ``python -m repro <command>``.

Exposes the library's main workflows without writing any Python:

* ``summarize``        — structural comparison of the topology suite
* ``udf``              — the Section 3.1 UDF table
* ``fig4``             — Figure 4 FCT tables
* ``fig5``             — Figure 5 C-S heatmaps
* ``fig6``             — Figure 6 scale sweep
* ``microburst``       — the Section 3 microburst study
* ``other-topologies`` — the Section 7 Slim Fly / Dragonfly comparison
* ``verify``           — exhaustive Theorem 1 / path-set verification
* ``configs``          — emit per-router Cisco or FRR configurations
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.experiments.runner import MEDIUM, PAPER, SMALL, Scale

_SCALES = {"small": SMALL, "medium": MEDIUM, "paper": PAPER}


def _scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="small",
        help="experiment size (default: small)",
    )


TOPOLOGY_CHOICES = (
    "dring",
    "rrg",
    "leaf-spine",
    "xpander",
    "slimfly",
    "dragonfly",
    "fat-tree",
)


def _build_topology(kind: str, scale: Scale):
    from repro.topology import (
        dragonfly,
        dring,
        fat_tree,
        flatten,
        leaf_spine,
        slimfly,
        xpander,
    )

    if kind == "leaf-spine":
        return leaf_spine(scale.leaf_x, scale.leaf_y)
    if kind == "dring":
        return dring(
            scale.dring_m, scale.dring_n, total_servers=scale.dring_servers
        )
    if kind == "rrg":
        return flatten(leaf_spine(scale.leaf_x, scale.leaf_y), seed=0, name="rrg")
    # The Section 7 families come in fixed admissible sizes; pick small
    # instances in the same band as the SMALL scale.
    if kind == "xpander":
        return xpander(7, 4, servers_per_rack=scale.leaf_x // 2, seed=0)
    if kind == "slimfly":
        return slimfly(5, servers_per_rack=scale.leaf_x // 2)
    if kind == "dragonfly":
        return dragonfly(4, 2, servers_per_rack=scale.leaf_x // 2)
    if kind == "fat-tree":
        return fat_tree(8)
    raise ValueError(f"unknown topology {kind!r}")


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------


def cmd_summarize(args: argparse.Namespace) -> int:
    from repro.core import summarize, summary_table

    scale = _SCALES[args.scale]
    networks = [
        _build_topology(kind, scale) for kind in ("leaf-spine", "rrg", "dring")
    ]
    print(summary_table([summarize(net) for net in networks]))
    return 0


def cmd_udf(args: argparse.Namespace) -> int:
    from repro.experiments import render_udf_table, run_udf_table

    print(render_udf_table(run_udf_table()))
    return 0


def cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig4

    result = run_fig4(_SCALES[args.scale], seed=args.seed)
    print(result.median_table())
    print()
    print(result.p99_table())
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig5

    panels = run_fig5(_SCALES[args.scale], seed=args.seed)
    for key in ("ecmp", "su2"):
        print(panels[key].render())
        print()
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    from repro.experiments import Fig6Config, render_fig6, run_fig6

    print(render_fig6(run_fig6(Fig6Config(), seed=args.seed)))
    return 0


def cmd_microburst(args: argparse.Namespace) -> int:
    from repro.experiments import render_microburst, run_microburst

    print(render_microburst(run_microburst(_SCALES[args.scale], seed=args.seed)))
    return 0


def cmd_other_topologies(args: argparse.Namespace) -> int:
    from repro.experiments import (
        render_other_topologies,
        run_other_topologies,
    )

    print(render_other_topologies(run_other_topologies(seed=args.seed)))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.bgp import verify_fabric

    network = _build_topology(args.topology, _SCALES[args.scale])
    stats = verify_fabric(network, args.k)
    print(
        f"{network.name}: Theorem 1 and Shortest-Union({args.k}) verified "
        f"over {stats['pairs']} rack pairs "
        f"({stats['rounds']} BGP rounds, {stats['updates']} updates)"
    )
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.core.export import to_dot, to_json

    network = _build_topology(args.topology, _SCALES[args.scale])
    text = to_dot(network) if args.format == "dot" else to_json(network)
    if args.out == "-":
        print(text)
    else:
        pathlib.Path(args.out).write_text(text + "\n")
        print(f"wrote {network.name} as {args.format} to {args.out}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    timings = generate_report(
        pathlib.Path(args.out),
        scale=_SCALES[args.scale],
        seed=args.seed,
        only=args.only,
    )
    total = sum(seconds for _name, seconds in timings)
    for name, seconds in timings:
        print(f"  {name:<24} {seconds:6.1f}s")
    print(f"wrote {len(timings)} artifacts to {args.out} in {total:.1f}s")
    return 0


def cmd_configs(args: argparse.Namespace) -> int:
    from repro.bgp import ConfigGenerator
    from repro.bgp.frr import FrrConfigGenerator

    network = _build_topology(args.topology, _SCALES[args.scale])
    generator_cls = (
        FrrConfigGenerator if args.format == "frr" else ConfigGenerator
    )
    generator = generator_cls(network, args.k)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    suffix = "conf" if args.format == "frr" else "cfg"
    for switch, text in generator.render_all().items():
        (out_dir / f"router-{switch}.{suffix}").write_text(text + "\n")
    print(
        f"wrote {network.num_switches} {args.format} configurations "
        f"for {network.name} to {out_dir}"
    )
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spineless Data Centers reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summarize", help="structural topology comparison")
    _scale_argument(p)
    p.set_defaults(func=cmd_summarize)

    p = sub.add_parser("udf", help="Section 3.1 UDF table")
    p.set_defaults(func=cmd_udf)

    for name, func, doc in (
        ("fig4", cmd_fig4, "Figure 4 FCT tables"),
        ("fig5", cmd_fig5, "Figure 5 C-S heatmaps"),
        ("microburst", cmd_microburst, "Section 3 microburst study"),
    ):
        p = sub.add_parser(name, help=doc)
        _scale_argument(p)
        p.add_argument("--seed", type=int, default=0)
        p.set_defaults(func=func)

    p = sub.add_parser("fig6", help="Figure 6 scale sweep")
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_fig6)

    p = sub.add_parser(
        "other-topologies", help="Section 7 Slim Fly / Dragonfly comparison"
    )
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=cmd_other_topologies)

    p = sub.add_parser("verify", help="verify Theorem 1 and the path sets")
    _scale_argument(p)
    p.add_argument("--topology", choices=TOPOLOGY_CHOICES, default="dring")
    p.add_argument("--k", type=int, default=2)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("export", help="export a topology as JSON or dot")
    _scale_argument(p)
    p.add_argument("--topology", choices=TOPOLOGY_CHOICES, default="dring")
    p.add_argument("--format", choices=("json", "dot"), default="json")
    p.add_argument("--out", default="-", help="output file, or - for stdout")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser(
        "report", help="regenerate every paper artifact into a directory"
    )
    _scale_argument(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="report")
    p.add_argument(
        "--only",
        nargs="+",
        default=None,
        help="subset of artifact names (see repro.experiments.report)",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("configs", help="emit router configurations")
    _scale_argument(p)
    p.add_argument("--topology", choices=TOPOLOGY_CHOICES, default="dring")
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--format", choices=("cisco", "frr"), default="cisco")
    p.add_argument("--out", default="router-configs")
    p.set_defaults(func=cmd_configs)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
