"""Event-driven flow-level simulator: the stand-in for htsim (Section 5.3).

Flows arrive at their start times, share bandwidth max-min fairly with
every other active flow (the fluid limit of long-lived TCP), and depart
when their bytes are delivered.  Rates are recomputed at every arrival
and departure, so between events the system is piecewise constant and
completion times are exact under the fluid model.

Each flow occupies its source server's uplink, its destination server's
downlink, and the directed network links of the switch path its first
packet was ECMP-hashed onto (``RoutingScheme.sample_path``).  Intra-rack
flows use only the server links, which is how flat networks keep local
traffic off the fabric.

The simulator runs on the array-backed engine (:mod:`repro.sim.engine`):
link ids come from the network's :class:`~repro.core.linktable.LinkTable`
(net links first, then one uplink and one downlink per server), paths
are hashed through the scheme's :class:`CompiledRouting`, and the
flow→link incidence persists across events in a
:class:`~repro.sim.maxmin.Incidence` updated on admit/finish instead of
being rebuilt from Python lists at every event.  Entry order is kept in
admission order throughout, so allocator demand sums and per-link byte
accounting accumulate floats in exactly the legacy order — results are
bit-for-bit identical to the per-event rebuild.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.network import Network
from repro.routing.base import RoutingScheme
from repro.sim.engine import trace as sim_trace
from repro.sim.maxmin import (
    AllocationError,
    FillScratch,
    Incidence,
    fill_levels,
)
from repro.sim.results import FctResults, FlowRecord
from repro.sim.warmfill import WarmFill
from repro.traffic.flows import Flow
from repro.traffic.matrix import Placement

#: Bytes below which a flow counts as finished (guards float round-off).
_RESIDUAL_BYTES = 1e-6

#: Relative tolerance for "this event is the earliest completion": the
#: timestep ``dt`` equals ``finish_dt`` unless an arrival preempts it,
#: and equality survives the float arithmetic because both come from the
#: same ``min``; the tolerance guards the measure-zero case of an
#: arrival landing within rounding distance of a completion.
_COMPLETION_RTOL = 1e-12

#: Warm-engine kill switch, read once at import (``REPRO_ENGINE_WARM=0``
#: forces cold solves).  Warm and cold engines are bit-identical — see
#: tests/sim/test_warmfill.py — so the switch cannot change any cached
#: result and is cache-key neutral.
_WARM_DEFAULT = os.environ.get("REPRO_ENGINE_WARM", "1") != "0"  # repro-lint: disable=cache-key-purity


@dataclass
class _ActiveFlow:
    flow: Flow
    links: np.ndarray
    path: Tuple[int, ...]
    src_server: int
    dst_server: int


class FlowSimulator:
    """Simulates a flow workload on one (topology, routing) combination."""

    # repro-perf: allow=deep-alloc-in-hot-loop,deep-recompile-in-loop -- constructed once per driver and rewound with reset(); setup never runs inside the event loop
    def __init__(
        self,
        network: Network,
        routing: RoutingScheme,
        placement: Placement,
        seed: int = 0,
        hop_latency_s: float = 0.0,
    ) -> None:
        """``hop_latency_s`` adds a fixed per-link latency to each flow's
        completion time (propagation + store-and-forward), improving
        small-flow fidelity; it does not affect bandwidth sharing.  The
        default 0 reproduces the pure fluid model."""
        if hop_latency_s < 0:
            raise ValueError("hop latency must be non-negative")
        if routing.network is not network:
            raise ValueError("routing was built for a different network")
        if placement.network is not network:
            raise ValueError("placement targets a different network")
        self.network = network
        self.routing = routing
        self.placement = placement
        self.hop_latency_s = hop_latency_s
        self._rng = random.Random(seed)

        table = network.link_table()
        bad = np.flatnonzero(table.capacities <= 0)
        if bad.size:
            key = ("net",) + table.pairs[int(bad[0])]
            raise AllocationError(f"link {key!r} has non-positive capacity")
        self._table = table
        self._compiled = routing.compile(table)
        self._num_net = len(table)
        self._num_servers = network.num_servers
        self._server_cap = network.server_link_capacity
        # Dense link ids: net links 0..L-1 in LinkTable order, then one
        # uplink per server, then one downlink per server.  Links a run
        # never touches carry zero demand, so pre-registering all of
        # them leaves the allocation unchanged.
        self._caps = np.concatenate(
            [
                table.capacities,
                np.full(2 * self._num_servers, float(self._server_cap)),
            ]
        )

        self._incidence = Incidence()
        self._fill_scratch = FillScratch()
        #: Active incidence entries per link id; ``> 0`` is exactly the
        #: distinct-link set of the live incidence, handed to
        #: :func:`fill_levels` to skip its per-event ``np.unique`` sort.
        self._link_refs = np.zeros(len(self._caps), dtype=np.int64)
        self._meta: List[_ActiveFlow] = []
        self._slot_alive = np.zeros(0, dtype=bool)
        self._remaining = np.zeros(0)
        #: Per-slot bytes drained this event.  Dead slots hold stale
        #: values, which is fine: the incidence only references alive
        #: slots, so stale entries are never gathered.
        self._spent = np.zeros(0)
        #: Alive slot ids, ascending — maintained incrementally so the
        #: event loop never scans the full (monotonically growing) slot
        #: space.  Identical content to ``flatnonzero(slot_alive)``.
        self._alive_ids = np.zeros(0, dtype=np.intp)
        self._alive_n = 0
        self._num_active = 0
        #: Bytes carried per link id, filled during :meth:`run`.
        self._link_bytes = np.zeros(len(self._caps))
        self._elapsed = 0.0
        #: Warm-start allocator state; solves are bitwise identical to
        #: cold :func:`fill_levels` calls (set ``REPRO_ENGINE_WARM=0``
        #: to force the cold path).
        self._warm: Optional[WarmFill] = (
            WarmFill(self._caps) if _WARM_DEFAULT else None
        )
        #: Instrumentation from the most recent :meth:`run`.
        self.trace = sim_trace.SimTrace()

    # ------------------------------------------------------------------

    # repro-perf: allow=deep-alloc-in-hot-loop -- amortized geometric growth
    def _grow_slots(self, total: int) -> None:
        capacity = len(self._slot_alive)
        if total <= capacity:
            return
        capacity = max(capacity * 2, total, 64)
        alive = np.zeros(capacity, dtype=bool)
        alive[: len(self._slot_alive)] = self._slot_alive
        remaining = np.zeros(capacity)
        remaining[: len(self._remaining)] = self._remaining
        spent = np.zeros(capacity)
        spent[: len(self._spent)] = self._spent
        alive_ids = np.zeros(capacity, dtype=np.intp)
        alive_ids[: self._alive_n] = self._alive_ids[: self._alive_n]
        self._slot_alive = alive
        self._remaining = remaining
        self._spent = spent
        self._alive_ids = alive_ids

    # repro-perf: allow=deep-recompile-in-loop,deep-alloc-in-hot-loop -- runs once per phase, not per event; the fresh Incidence is the rewind, while the expensive compile-time state (routing, link table) is kept
    def reset(self, seed: int = 0) -> None:
        """Rearm for a fresh run without rebuilding topology state.

        Drops all per-run mutable state (rng, flow slots, incidence,
        byte counters, warm-start cache) while keeping the link table,
        compiled routing, and grown buffers.  A reset simulator produces
        bit-identical results to a freshly constructed one with the same
        seed: the rng is rebuilt from the seed and the routing caches
        are deterministic.  This is what lets the phase driver reuse one
        simulator across thousands of collective phases.
        """
        self._rng = random.Random(seed)
        self._incidence = Incidence()
        self._link_refs[:] = 0
        self._meta.clear()
        self._slot_alive[:] = False
        self._remaining[:] = 0.0
        self._spent[:] = 0.0
        self._alive_n = 0
        self._num_active = 0
        self._link_bytes[:] = 0.0
        self._elapsed = 0.0
        if self._warm is not None:
            self._warm.reset()
        self.trace = sim_trace.SimTrace()

    # repro-perf: allow=deep-alloc-in-hot-loop -- each admission builds the flow's own link-id array; it lives as long as the flow
    def _admit(self, flow: Flow) -> np.ndarray:
        """Resolve endpoints, hash a path, and register the flow's slot.

        Returns the flow's link ids; the caller folds the whole
        admission cohort into ``_link_refs`` with one scatter-add.
        """
        src = self.placement.network_server(flow.src_server)
        dst = self.placement.network_server(flow.dst_server)
        if self._server_cap <= 0:
            raise AllocationError(
                f"link {('up', src)!r} has non-positive capacity"
            )
        links = [self._num_net + src]
        if dst != src:
            links.append(self._num_net + self._num_servers + dst)
        src_rack = self.network.switch_of_server(src)
        dst_rack = self.network.switch_of_server(dst)
        if src_rack != dst_rack:
            path, net_links = self._compiled.sample(src_rack, dst_rack, self._rng)
            links.extend(net_links)
        else:
            path = (src_rack,)
        link_ids = np.asarray(links, dtype=np.intp)
        slot = len(self._meta)
        self._meta.append(
            _ActiveFlow(
                flow=flow,
                links=link_ids,
                path=path,
                src_server=src,
                dst_server=dst,
            )
        )
        self._grow_slots(slot + 1)
        self._slot_alive[slot] = True
        self._remaining[slot] = flow.size_bytes
        self._alive_ids[self._alive_n] = slot
        self._alive_n += 1
        self._incidence.append(slot, link_ids)
        if self._warm is not None:
            self._warm.admit(slot, link_ids)
        self._num_active += 1
        return link_ids

    # ------------------------------------------------------------------

    # repro-hot -- the fluid event loop: every admission/completion runs here
    def run(self, flows: Sequence[Flow]) -> FctResults:
        """Simulate the workload to completion and return all FCTs."""
        # Resolved here, not at module level: repro.harness's package
        # init imports repro.sim, so a top-level import would cycle.
        from repro.harness.clock import perf

        arrivals = sorted(flows, key=lambda f: f.start_time)
        results = FctResults()
        now = 0.0
        next_arrival = 0
        inc = self._incidence
        warm = self._warm
        if warm is not None:
            warm.counters.clear()
        run_trace = sim_trace.SimTrace()
        run_started = perf()

        while self._num_active or next_arrival < len(arrivals):
            # Admit every flow starting exactly now (zero-width batch);
            # the cohort lands on ``_link_refs`` as one scatter-add.
            cohort_links: List[np.ndarray] = []  # repro-perf: allow=deep-alloc-in-hot-loop -- one small list per event gathers the admission cohort for a single scatter-add
            while (
                next_arrival < len(arrivals)
                and arrivals[next_arrival].start_time <= now + 1e-15
            ):
                cohort_links.append(self._admit(arrivals[next_arrival]))
                run_trace.count("flows_admitted")
                next_arrival += 1
            if cohort_links:
                delta = (
                    cohort_links[0]
                    if len(cohort_links) == 1
                    else np.concatenate(cohort_links)  # repro-perf: allow=deep-alloc-in-hot-loop -- cohort concat replaces one scatter-add per flow with one per event
                )
                np.add.at(self._link_refs, delta, 1)
                run_trace.count("admit_cohorts")
                run_trace.count(sim_trace.cohort_bucket("admit", len(cohort_links)))

            if not self._num_active:
                now = arrivals[next_arrival].start_time
                continue

            nslots = len(self._meta)
            alive_mask = self._slot_alive[:nslots]
            alive = self._alive_ids[: self._alive_n]

            allocate_started = perf()
            if warm is not None:
                levels, iterations = warm.solve(
                    inc.ent, inc.lnk, inc.val, alive_mask,
                    self._link_refs, self._fill_scratch,
                )
            else:
                levels, iterations = fill_levels(
                    inc.ent, inc.lnk, inc.val, self._caps, alive_mask,
                    links=np.flatnonzero(self._link_refs > 0),
                    scratch=self._fill_scratch,
                )
            run_trace.add_time("allocate", perf() - allocate_started)
            run_trace.count("events")
            run_trace.count("allocator_iterations", iterations)
            rates_bps = levels[alive]
            rates_bps *= 1e9  # fresh array from the fancy index above

            # Earliest completion under current rates, in seconds.
            times = self._remaining[alive] * 8.0 / rates_bps
            finish_dt = float(times.min())
            arrival_dt = (
                arrivals[next_arrival].start_time - now
                if next_arrival < len(arrivals)
                else np.inf
            )
            dt = min(finish_dt, arrival_dt)
            if dt < 0:
                raise RuntimeError("simulation time went backwards")

            # Drain bytes at the constant rates over dt.  The unmasked
            # scatter-add is bitwise equal to the old ``> 0``-masked
            # one: a zero-drain entry adds +0.0, the float identity.
            drained = rates_bps / 8.0 * dt
            now += dt
            self._remaining[alive] -= drained

            spent = self._spent
            spent[alive] = drained
            entry_spent = spent[inc.ent]
            np.add.at(self._link_bytes, inc.lnk, entry_spent)

            # Retire completions only when this event *is* the earliest
            # completion (an arrival may preempt it); the tolerance
            # replaces the old exact ``dt == finish_dt`` float equality.
            if finish_dt - dt <= finish_dt * _COMPLETION_RTOL:
                done_mask = self._remaining[alive] <= _RESIDUAL_BYTES
                done = alive[done_mask]
                # repro-perf: allow=deep-numpy-scalar-loop -- completions build one FlowRecord each; object construction cannot vectorize
                for slot in done:
                    entry = self._meta[slot]
                    latency = self.hop_latency_s * len(entry.links)
                    results.add(
                        FlowRecord(
                            src_server=entry.src_server,
                            dst_server=entry.dst_server,
                            size_bytes=entry.flow.size_bytes,
                            start_time=entry.flow.start_time,
                            finish_time=now + latency,
                            path=entry.path,
                        )
                    )
                    self._slot_alive[slot] = False
                if done.size:
                    # The completion cohort leaves ``_link_refs`` as one
                    # scatter-subtract and the incidence as one compact.
                    retired = (
                        self._meta[int(done[0])].links
                        if done.size == 1
                        else np.concatenate(  # repro-perf: allow=deep-alloc-in-hot-loop -- cohort concat replaces one scatter-subtract per flow with one per event
                            [self._meta[int(s)].links for s in done]  # repro-perf: allow=deep-alloc-in-hot-loop -- list of the completion cohort's link arrays, one per retiring flow
                        )
                    )
                    np.subtract.at(self._link_refs, retired, 1)
                    kept = alive[~done_mask]
                    self._alive_ids[: len(kept)] = kept
                    self._alive_n = len(kept)
                    if warm is not None:
                        warm.retire(done.tolist())
                    self._num_active -= int(done.size)
                    run_trace.count("flows_completed", int(done.size))
                    run_trace.count("retire_cohorts")
                    run_trace.count(sim_trace.cohort_bucket("retire", int(done.size)))
                    inc.compact(self._slot_alive[:nslots])

        self._elapsed = now
        if warm is not None:
            for key, value in warm.counters.items():
                run_trace.count(key, value)
        run_trace.add_time("run", sim_trace.perf_now() - run_started)
        if now > 0.0:
            run_trace.snapshot_utilization("flowsim", self.link_utilization())
        self.trace = run_trace
        collector = sim_trace.current()
        if collector is not None:
            collector.merge(run_trace)
        return results

    # ------------------------------------------------------------------
    # Post-run analysis
    # ------------------------------------------------------------------

    def _key_of(self, link_id: int) -> Tuple[object, ...]:
        if link_id < self._num_net:
            return ("net",) + self._table.pairs[link_id]
        if link_id < self._num_net + self._num_servers:
            return ("up", link_id - self._num_net)
        return ("down", link_id - self._num_net - self._num_servers)

    def link_utilization(self) -> Dict[object, float]:
        """Average utilization per link over the run, keyed by link key.

        Keys are ``("net", u, v)`` for directed network links and
        ``("up"/"down", server)`` for host links; only links that carried
        traffic appear.  Must be called after :meth:`run`.
        """
        if self._elapsed <= 0.0:
            raise RuntimeError("run() has not completed yet")
        report: Dict[object, float] = {}
        for link_id in np.flatnonzero(self._link_bytes > 0.0):
            capacity_bps = self._caps[link_id] * 1e9 / 8.0
            report[self._key_of(int(link_id))] = self._link_bytes[link_id] / (
                capacity_bps * self._elapsed
            )
        return report

    def hottest_links(self, count: int = 5) -> List[Tuple[object, float]]:
        """The ``count`` most utilized links, hottest first.

        Utilization ties break on the link key, so reports are stable
        across runs and platforms.
        """
        utilization = self.link_utilization()
        ranked = sorted(utilization.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:count]


def simulate_fct(
    network: Network,
    routing: RoutingScheme,
    placement: Placement,
    flows: Sequence[Flow],
    seed: int = 0,
) -> FctResults:
    """Convenience wrapper: build the simulator and run one workload."""
    return FlowSimulator(network, routing, placement, seed=seed).run(flows)
