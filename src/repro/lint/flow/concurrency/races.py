"""``deep-lockset-races``: static lockset race detection.

An Eraser-style lockset discipline, adapted to static analysis: every
access of shared instance state observed by the region walk carries the
set of locks held on that path.  Two accounting modes:

* **declared** — a ``# repro-guard: <attr> by <lock>`` comment states
  the invariant; every access of the attribute anywhere in the race
  walk must hold that lock.  ``<attr> unguarded`` documents (and
  silences) deliberately lock-free fields.
* **inferred** — for attributes of lock-owning classes with no
  declaration, the candidate lockset is the intersection of held sets
  over all accesses.  A non-empty intersection is a consistently
  guarded attribute; an empty one, on an attribute that is written and
  reachable from a thread entry point, is a potential race — the rule
  names the lock that guards the majority of accesses and flags the
  outliers.

``# repro-guard: requires <lock>`` moves a function's locking burden to
its callers: the function is analyzed with the lock held, and every
call site missing it is flagged here.  Condition-variable misuse
(``wait``/``notify`` without holding the condition) is reported too —
it is the same held-set bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import INTERNAL, CallGraph
from repro.lint.flow.concurrency.model import (
    AttrAccess,
    ConcurrencyFacts,
    ConcurrencyModel,
    concurrency_facts,
)
from repro.lint.flow.registry import FlowRule, register_flow_rule


@register_flow_rule
class DeepLocksetRaces(FlowRule):
    name = "deep-lockset-races"
    engine = "concurrency"
    summary = (
        "shared instance state accessed with an empty or inconsistent "
        "lockset on thread-reachable paths (static Eraser)"
    )
    invariant = (
        "every shared mutable attribute has one guarding lock, held on "
        "every interprocedural access path; the contract is declared "
        "with '# repro-guard: <attr> by <lock>' or inferred from the "
        "dominant locking pattern"
    )

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        facts = concurrency_facts(graph)
        findings: List[Finding] = []
        findings.extend(self._bad_guards(facts))
        findings.extend(self._cond_misuse(facts))
        findings.extend(self._requires_violations(facts))
        findings.extend(self._declared_violations(facts))
        findings.extend(self._inferred_races(facts))
        return sorted(set(findings))

    # -- annotation hygiene --------------------------------------------

    def _bad_guards(self, facts: ConcurrencyFacts) -> Iterable[Finding]:
        for bad in facts.model.bad_guards:
            yield self.finding(bad.path, bad.line, 0, bad.message)
        for decl in facts.model.guards.values():
            if not decl.reason:
                yield self.finding(
                    decl.path, decl.line, 0,
                    "repro-guard declaration needs a justification: "
                    "append ' -- <why this contract holds>'",
                )
        for req in facts.model.requires.values():
            if not req.reason:
                yield self.finding(
                    req.path, req.line, 0,
                    "repro-guard requires-declaration needs a "
                    "justification: append ' -- <why callers hold it>'",
                )

    # -- condition discipline ------------------------------------------

    def _cond_misuse(self, facts: ConcurrencyFacts) -> Iterable[Finding]:
        for misuse in facts.whole.misuses:
            label = facts.model.label(misuse.lock_id)
            yield self.finding(
                misuse.path, misuse.line, misuse.column,
                f"'{misuse.op}' on condition {label} without holding it "
                f"(in {_short(misuse.func)}); wait/notify outside the "
                "condition raises RuntimeError at runtime",
            )

    # -- requires contracts --------------------------------------------

    def _requires_violations(
        self, facts: ConcurrencyFacts
    ) -> Iterable[Finding]:
        for call in facts.whole.calls:
            if call.kind != INTERNAL:
                continue
            decl = facts.model.requires.get(call.target)
            if decl is None:
                continue
            missing = decl.locks - call.held
            if not missing:
                continue
            labels = ", ".join(
                facts.model.label(lock) for lock in sorted(missing)
            )
            yield self.finding(
                call.path, call.line, call.column,
                f"{_short(call.func)} calls {_short(call.target)} "
                f"without holding {labels}, which it declares with "
                "'# repro-guard: requires' — acquire the lock around "
                "this call",
            )

    # -- declared attribute guards -------------------------------------

    def _declared_violations(
        self, facts: ConcurrencyFacts
    ) -> Iterable[Finding]:
        model = facts.model
        for access in facts.race.accesses:
            decl = model.guards.get((access.cls, access.attr))
            if decl is None or not decl.lock_id:
                continue
            if decl.lock_id in access.held:
                continue
            label = model.label(decl.lock_id)
            cls = access.cls.rsplit(".", 1)[-1]
            kind = "writes" if access.write else "reads"
            yield self.finding(
                access.path, access.line, access.column,
                f"{_short(access.func)} {kind} {cls}.{access.attr} "
                f"without holding {label} (declared '# repro-guard: "
                f"{access.attr} by ...' at {_file(decl.path)}:"
                f"{decl.line}); take the lock or go through a "
                "lock-taking accessor",
            )

    # -- inferred locksets ---------------------------------------------

    def _inferred_races(
        self, facts: ConcurrencyFacts
    ) -> Iterable[Finding]:
        model = facts.model
        by_attr: Dict[Tuple[str, str], List[AttrAccess]] = {}
        for access in facts.race.accesses:
            key = (access.cls, access.attr)
            if access.cls not in model.locks_by_class:
                continue
            if key in model.guards:
                continue
            by_attr.setdefault(key, []).append(access)
        for (cls_qname, attr), accesses in sorted(by_attr.items()):
            if not any(a.write for a in accesses):
                continue
            if not any(
                a.func in facts.thread_reachable for a in accesses
            ):
                continue
            lockset: Set[str] = set(accesses[0].held)
            for access in accesses[1:]:
                lockset &= access.held
            if lockset:
                continue  # consistently guarded
            yield from self._flag_outliers(model, cls_qname, attr, accesses)

    def _flag_outliers(
        self,
        model: ConcurrencyModel,
        cls_qname: str,
        attr: str,
        accesses: List[AttrAccess],
    ) -> Iterable[Finding]:
        counts: Dict[str, int] = {}
        for access in accesses:
            for lock in access.held:
                counts[lock] = counts.get(lock, 0) + 1
        cls = cls_qname.rsplit(".", 1)[-1]
        if not counts:
            for access in accesses:
                if not access.write:
                    continue
                yield self.finding(
                    access.path, access.line, access.column,
                    f"{_short(access.func)} writes {cls}.{attr} with no "
                    "lock held, and the attribute is reachable from a "
                    "thread entry point with no lock on any access — "
                    "guard it, or declare '# repro-guard: "
                    f"{attr} unguarded -- <why>' if it is safe",
                )
            return
        majority = max(sorted(counts), key=lambda lock: counts[lock])
        label = model.label(majority)
        guarded = counts[majority]
        total = len(accesses)
        for access in accesses:
            if majority in access.held:
                continue
            kind = "writes" if access.write else "reads"
            yield self.finding(
                access.path, access.line, access.column,
                f"{_short(access.func)} {kind} {cls}.{attr} without "
                f"{label}, which guards {guarded} of {total} accesses "
                "— inconsistent lockset; hold the lock here or declare "
                f"the contract with '# repro-guard: {attr} by ...'",
            )


def _short(qname: str) -> str:
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qname


def _file(path: str) -> str:
    return path.rsplit("/", 1)[-1]
