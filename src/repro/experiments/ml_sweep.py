"""ML collective sweep: iteration time across topology x placement.

The paper's transit-bandwidth argument says a flat fabric has enough
spare capacity to carry traffic that a leaf-spine would send through its
spine.  Synchronized training collectives are the sharpest probe of that
claim: every iteration, whole jobs burst all at once, and the fabric
either absorbs the cohort or the barrier stretches.  This sweep measures
per-job **iteration time** (communication phase completion plus fixed
computation, :mod:`repro.sim.phases`) over

* topology — leaf-spine vs the flat DRing/RRG/Xpander suite,
* routing — ECMP, SU(2), or the coarse adaptive controller,
* placement policy — ``compact`` / ``random`` / ``striped`` worker
  placement (:func:`repro.traffic.collectives.place_jobs`),
* placement seed — independent draws of the seeded policies.

Every cell is a pure function of ``(scale, topology, scheme, policy,
placement_seed, seed)``, so the sweep harness content-addresses it like
any other figure cell.  Workload and placement seeds deliberately do
*not* fold in the routing scheme: every scheme faces byte-identical
cohorts from identically placed jobs, so columns compare directly —
the same discipline as the failure sweep.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.network import Network
from repro.core.seeding import stable_seed
from repro.experiments.failure_sweep import build_fault_topology
from repro.experiments.runner import Scale
from repro.routing import EcmpRouting, RoutingScheme, ShortestUnionRouting
from repro.routing.adaptive import CoarseAdaptiveRouting
from repro.sim.phases import run_collectives
from repro.traffic.collectives import TrainingJob, place_jobs

#: Topologies the sweep covers (same recipes as the failure sweep).
ML_TOPOLOGIES: Tuple[str, ...] = ("leaf-spine", "dring", "rrg", "xpander")

#: Routing schemes compared on every topology.
ML_SCHEMES: Tuple[str, ...] = ("ecmp", "su2", "adaptive")

#: Placement policies the default sweep compares.
ML_POLICIES: Tuple[str, ...] = ("compact", "random")


def build_ml_topology(kind: str, scale: Scale, seed: int = 0) -> Network:
    """One sweep topology (delegates to the failure sweep's recipes)."""
    if kind not in ML_TOPOLOGIES:
        raise ValueError(
            f"unknown ml-sweep topology {kind!r}; know {list(ML_TOPOLOGIES)}"
        )
    return build_fault_topology(kind, scale, seed=seed)


def build_ml_routing(scheme: str, network: Network) -> RoutingScheme:
    if scheme == "ecmp":
        return EcmpRouting(network)
    if scheme == "su2":
        return ShortestUnionRouting(network, 2)
    if scheme == "adaptive":
        return CoarseAdaptiveRouting(network)
    raise ValueError(
        f"unknown ml-sweep scheme {scheme!r}; know {list(ML_SCHEMES)}"
    )


def ml_capacity(scale: Scale) -> int:
    """Servers available on the *smallest* sweep topology at this scale.

    Jobs must be identical across topologies for columns to compare, so
    the default workload sizes itself to fit everywhere.  Server counts
    do not depend on the build seed, so seed 0 is representative.
    """
    return min(
        build_ml_topology(kind, scale).num_servers for kind in ML_TOPOLOGIES
    )


def default_training_jobs(scale: Scale) -> Tuple[TrainingJob, ...]:
    """The standard three-job mix, sized to fit every sweep topology.

    A wide data-parallel job (ring all-reduce over two layers), a deep
    narrow one (four layers, heavier comp), and an all-to-all
    expert-style job — together claiming roughly half the smallest
    fabric's servers, so even ``compact`` placement spans racks.
    """
    capacity = ml_capacity(scale)
    return (
        TrainingJob(
            name="dp-wide",
            num_workers=max(4, capacity // 4),
            comm_size_bytes=4e6,
            comp_time_s=1e-3,
            num_layers=2,
            num_iterations=3,
            collective="ring-allreduce",
        ),
        TrainingJob(
            name="dp-deep",
            num_workers=max(2, capacity // 8),
            comm_size_bytes=1e6,
            comp_time_s=2e-3,
            num_layers=4,
            num_iterations=2,
            collective="ring-allreduce",
        ),
        TrainingJob(
            name="moe",
            num_workers=max(4, capacity // 8),
            comm_size_bytes=2e6,
            comp_time_s=5e-4,
            num_layers=1,
            num_iterations=3,
            collective="all-to-all",
        ),
    )


# ----------------------------------------------------------------------
# One sweep cell
# ----------------------------------------------------------------------


def run_ml_cell(
    scale: Scale,
    topology: str,
    scheme: str,
    policy: str = "compact",
    placement_seed: int = 0,
    seed: int = 0,
    jobs: Optional[Sequence[TrainingJob]] = None,
) -> Dict[str, Any]:
    """Run one ML-sweep cell; returns a JSON-serializable record.

    The record carries the headline ``iteration_time_s`` (mean over
    jobs), the straggler view, per-job summaries, and the full
    :class:`~repro.sim.results.CollectiveResults` payload so cached
    cells re-render exactly.
    """
    network = build_ml_topology(topology, scale, seed=seed)
    routing = build_ml_routing(scheme, network)
    if jobs is None:
        jobs = default_training_jobs(scale)
    placements = place_jobs(
        jobs, network, policy=policy, seed=placement_seed
    )
    driver_seed = stable_seed("ml-run", seed, topology, policy, placement_seed)
    results = run_collectives(
        network, routing, placements, seed=driver_seed
    )
    job_rows = []
    for placement in placements:
        timeline = results.timeline(placement.job.name)
        mean_comm = sum(
            r.comm_time_s for r in timeline.records
        ) / len(timeline.records)
        job_rows.append(
            {
                "job": placement.job.name,
                "collective": placement.job.collective,
                "num_workers": placement.job.num_workers,
                "racks": len(placement.racks(network)),
                "iterations": timeline.num_iterations,
                "mean_comm_time_s": mean_comm,
                "mean_iteration_time_s": timeline.mean_iteration_time_s(),
            }
        )
    return {
        "topology": topology,
        "scheme": scheme,
        "policy": policy,
        "placement_seed": placement_seed,
        "num_jobs": len(placements),
        "num_workers": sum(p.job.num_workers for p in placements),
        "iteration_time_s": results.iteration_time_s(),
        "max_iteration_time_s": results.max_iteration_time_s(),
        "jobs": job_rows,
        "collective": results.to_json_dict(),
    }


def run_ml_cell_shard(
    scale: Scale,
    topology: str,
    scheme: str,
    policy: str = "compact",
    placement_seed: int = 0,
    seed: int = 0,
    shard_index: int = 0,
    shard_count: int = 1,
    jobs: Optional[Sequence[TrainingJob]] = None,
) -> Dict[str, Any]:
    """One shard job of a sharded ML cell (``repro ml --shards``).

    Collective cells shard on *training jobs*: each job hashes into a
    fixed virtual shard, and every virtual shard runs its job subset
    through its own phase-cohort loop.  The partial record carries this
    shard's timelines and job rows plus the full placement-order job
    list; :func:`merge_ml_cell_shards` reassembles the cell.  As with
    flow sharding, shards do not contend — sharded numbers are
    deterministic and N-independent but not the unsharded cell's.
    """
    from repro.sim.shard import NUM_VIRTUAL_SHARDS, shard_seed

    if shard_count < 1:
        raise ValueError(f"shard count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard index {shard_index} outside [0, {shard_count})"
        )
    network = build_ml_topology(topology, scale, seed=seed)
    routing = build_ml_routing(scheme, network)
    if jobs is None:
        jobs = default_training_jobs(scale)
    placements = place_jobs(
        jobs, network, policy=policy, seed=placement_seed
    )
    driver_seed = stable_seed("ml-run", seed, topology, policy, placement_seed)
    virtual_of = {
        p.job.name: stable_seed("job-shard", p.job.name) % NUM_VIRTUAL_SHARDS
        for p in placements
    }
    job_rows: List[Dict[str, Any]] = []
    timelines_payload: Dict[str, Any] = {"jobs": []}
    for virtual in range(shard_index, NUM_VIRTUAL_SHARDS, shard_count):
        subset = [
            p for p in placements if virtual_of[p.job.name] == virtual
        ]
        if not subset:
            continue
        results = run_collectives(
            network, routing, subset, seed=shard_seed(driver_seed, virtual)
        )
        timelines_payload["jobs"].extend(results.to_json_dict()["jobs"])
        for placement in subset:
            timeline = results.timeline(placement.job.name)
            mean_comm = sum(
                r.comm_time_s for r in timeline.records
            ) / len(timeline.records)
            job_rows.append(
                {
                    "job": placement.job.name,
                    "collective": placement.job.collective,
                    "num_workers": placement.job.num_workers,
                    "racks": len(placement.racks(network)),
                    "iterations": timeline.num_iterations,
                    "mean_comm_time_s": mean_comm,
                    "mean_iteration_time_s": timeline.mean_iteration_time_s(),
                }
            )
    return {
        "topology": topology,
        "scheme": scheme,
        "policy": policy,
        "placement_seed": placement_seed,
        "shard_index": shard_index,
        "shard_count": shard_count,
        "job_order": [p.job.name for p in placements],
        "jobs": job_rows,
        "collective": timelines_payload,
    }


def merge_ml_cell_shards(
    partials: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Fold shard-job partials back into one ML-cell record.

    Job rows and timelines are reordered to the placement order every
    partial carries (it is seed-derived, so all partials agree), making
    the merged record independent of shard-job completion order and of
    ``shard_count``.
    """
    if not partials:
        raise ValueError("no shard partials to merge")
    first = partials[0]
    job_order: List[str] = list(first["job_order"])
    rows_by_job: Dict[str, Dict[str, Any]] = {}
    timelines_by_job: Dict[str, Any] = {}
    for partial in partials:
        if list(partial["job_order"]) != job_order:
            raise ValueError("shard partials disagree on the job order")
        for row in partial["jobs"]:
            rows_by_job[row["job"]] = row
        for entry in partial["collective"]["jobs"]:
            timelines_by_job[entry["job"]] = entry
    missing = [name for name in job_order if name not in rows_by_job]
    if missing:
        raise ValueError(f"shard partials missing jobs {missing}")
    job_rows = [rows_by_job[name] for name in job_order]
    per_job = [row["mean_iteration_time_s"] for row in job_rows]
    return {
        "topology": first["topology"],
        "scheme": first["scheme"],
        "policy": first["policy"],
        "placement_seed": first["placement_seed"],
        # Deliberately N-independent: the merged record must be
        # byte-identical for every --shards N, so it records *that* the
        # cell was sharded, never into how many jobs.
        "sharded": True,
        "num_jobs": len(job_rows),
        "num_workers": sum(row["num_workers"] for row in job_rows),
        "iteration_time_s": float(sum(per_job) / len(per_job)),
        "max_iteration_time_s": float(max(per_job)),
        "jobs": job_rows,
        "collective": {
            "jobs": [timelines_by_job[name] for name in job_order]
        },
    }


# ----------------------------------------------------------------------
# Aggregation and rendering
# ----------------------------------------------------------------------


def ml_table_from_cells(
    cells: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Average per-placement-seed cells into one row per sweep point.

    Rows are keyed (topology, scheme, policy), averaged over placement
    seeds.
    """
    grouped: Dict[Tuple[str, str, str], List[Dict[str, Any]]] = {}
    for cell in cells:
        key = (cell["topology"], cell["scheme"], cell["policy"])
        grouped.setdefault(key, []).append(cell)
    rows: List[Dict[str, Any]] = []
    for (topology, scheme, policy), members in sorted(grouped.items()):
        rows.append(
            {
                "topology": topology,
                "scheme": scheme,
                "policy": policy,
                "seeds": len(members),
                "iteration_time_s": _mean(
                    [m["iteration_time_s"] for m in members]
                ),
                "max_iteration_time_s": _mean(
                    [m["max_iteration_time_s"] for m in members]
                ),
            }
        )
    return rows


def placement_sensitivity(
    cells: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Random-over-compact iteration-time ratio per (topology, scheme).

    The headline comparison: a fabric whose verdict barely moves when
    placement degrades from compact to random is placement-insensitive
    — the property the paper claims for flat topologies.
    """
    rows = ml_table_from_cells(cells)
    by_point = {
        (row["topology"], row["scheme"], row["policy"]): row for row in rows
    }
    pairs = sorted(
        {(row["topology"], row["scheme"]) for row in rows}
    )
    out: List[Dict[str, Any]] = []
    for topology, scheme in pairs:
        compact = by_point.get((topology, scheme, "compact"))
        scattered = by_point.get((topology, scheme, "random"))
        if compact is None or scattered is None:
            continue
        baseline = compact["iteration_time_s"]
        out.append(
            {
                "topology": topology,
                "scheme": scheme,
                "compact_s": baseline,
                "random_s": scattered["iteration_time_s"],
                "sensitivity": (
                    scattered["iteration_time_s"] / baseline
                    if baseline > 0
                    else 0.0
                ),
            }
        )
    return out


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def render_ml_sweep(cells: Sequence[Dict[str, Any]]) -> str:
    """Text table: iteration time per sweep point, then sensitivity."""
    rows = ml_table_from_cells(cells)
    lines: List[str] = ["ML collectives — mean iteration time"]
    lines.append(
        f"{'topology':<12}{'scheme':<10}{'policy':<10}{'seeds':>6}"
        f"{'iter time':>12}{'straggler':>12}"
    )
    for row in rows:
        lines.append(
            f"{row['topology']:<12}{row['scheme']:<10}{row['policy']:<10}"
            f"{row['seeds']:>6}"
            f"{1e3 * row['iteration_time_s']:>10.3f}ms"
            f"{1e3 * row['max_iteration_time_s']:>10.3f}ms"
        )
    sensitivity = placement_sensitivity(cells)
    if sensitivity:
        lines.append("")
        lines.append("Placement sensitivity (random / compact)")
        lines.append(
            f"{'topology':<12}{'scheme':<10}{'compact':>12}{'random':>12}"
            f"{'ratio':>8}"
        )
        for row in sensitivity:
            lines.append(
                f"{row['topology']:<12}{row['scheme']:<10}"
                f"{1e3 * row['compact_s']:>10.3f}ms"
                f"{1e3 * row['random_s']:>10.3f}ms"
                f"{row['sensitivity']:>7.2f}x"
            )
    return "\n".join(lines)
