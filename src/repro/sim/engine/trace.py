"""The engine's instrumentation spine: counters, phase timers, snapshots.

A :class:`SimTrace` accumulates cheap observability signals while a
simulation runs — event counts, per-phase wall time (read through the
injectable :mod:`repro.harness.clock`, so traces are deterministic under
``fixed_clock``), and per-link utilization snapshots.  The engine writes
into whatever trace the caller installed with :func:`set_collector`;
when none is installed (the default), recording is a no-op and the
simulators pay only a ``None`` check.

The collector slot is **thread-local**: the harness executor installs a
collector per worker process (mirroring
:func:`repro.harness.clock.set_clock`), and the service's in-process
manager threads — or any two test threads — can each run
:func:`collecting` without seeing one another's traces.  A thread that
never installed a collector reads ``None`` and records nothing.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Link keys as the simulators report them: ("net", u, v) / ("up", s) /
#: ("down", s).
LinkKey = Tuple[Any, ...]


def perf_now() -> float:  # repro-effect: allow=reads-clock
    """Monotonic seconds from the injectable harness clock.

    Imported lazily: ``repro.harness``'s package init pulls in the
    experiment registry (which imports ``repro.sim``), so a module-level
    import here would cycle when ``repro.sim`` loads first.
    """
    from repro.harness.clock import perf

    return perf()


def cohort_bucket(kind: str, size: int) -> str:
    """Histogram-bucket counter key for a size-``size`` event cohort.

    Shared by the flow simulator (admission/retirement cohorts) and the
    packet event queue (same-timestamp dispatch cohorts) so the
    ``engine:`` summary line can aggregate one histogram shape.
    """
    if size <= 1:
        tag = "1"
    elif size <= 4:
        tag = "2_4"
    elif size <= 16:
        tag = "5_16"
    else:
        tag = "17plus"
    return f"cohort_{kind}_{tag}"


class SimTrace:
    """A mutable bag of counters, timers, and utilization snapshots.

    Counters are plain integer tallies (events admitted, allocator
    iterations, incidence entries touched).  Timers accumulate seconds
    per named phase.  Snapshots record the hottest links observed when a
    simulator finishes, keyed by a caller-supplied label.
    """

    __slots__ = ("counters", "timers", "snapshots")

    # repro-perf: allow=deep-alloc-in-hot-loop -- one trace object per run; instrumentation is outside the event loop
    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        self.snapshots: List[Dict[str, Any]] = []

    def __bool__(self) -> bool:
        return bool(self.counters or self.timers or self.snapshots)

    # ------------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` against the named phase timer."""
        self.timers[phase] = self.timers.get(phase, 0.0) + seconds

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:  # repro-effect: allow=reads-clock
        """Time a block against the ``name`` phase via the harness clock."""
        started = perf_now()
        try:
            yield
        finally:
            self.add_time(name, perf_now() - started)

    # repro-perf: allow=deep-alloc-in-hot-loop -- end-of-run reporting, once per simulation
    def snapshot_utilization(
        self,
        label: str,
        utilization: Mapping[LinkKey, float],
        top: int = 5,
    ) -> None:
        """Record the ``top`` hottest links from a utilization map.

        Ties break on the link key so snapshots are stable across runs.
        """
        hottest = sorted(utilization.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        self.snapshots.append(
            {
                "label": label,
                "hottest": [
                    {"link": _link_label(key), "utilization": value}
                    for key, value in hottest
                ],
            }
        )

    # ------------------------------------------------------------------

    def merge(self, other: "SimTrace") -> None:
        """Fold another trace's signals into this one."""
        for name, amount in other.counters.items():
            self.count(name, amount)
        for phase, seconds in other.timers.items():
            self.add_time(phase, seconds)
        self.snapshots.extend(other.snapshots)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view (empty dict when nothing was traced)."""
        payload: Dict[str, Any] = {}
        if self.counters:
            payload["counters"] = dict(sorted(self.counters.items()))
        if self.timers:
            payload["timers"] = dict(sorted(self.timers.items()))
        if self.snapshots:
            payload["snapshots"] = list(self.snapshots)
        return payload


# repro-perf: allow=deep-alloc-in-hot-loop -- renders a handful of snapshot labels at end of run
def _link_label(key: LinkKey) -> str:
    """Render a link key as a compact string: ``net:4->7``, ``up:12``."""
    kind = str(key[0])
    rest: Sequence[Any] = key[1:]
    if kind == "net" and len(rest) == 2:
        return f"net:{rest[0]}->{rest[1]}"
    return ":".join([kind, *(str(part) for part in rest)])


class _TraceState(threading.local):
    """Per-thread collector slot; each thread starts with ``None``."""

    trace: Optional[SimTrace] = None


#: The per-thread collector slot the engine records into.  Being a
#: ``threading.local``, rebinding ``_STATE.trace`` on one thread cannot
#: leak into — or race with — any other thread's tracing.
_STATE = _TraceState()


def set_collector(trace: Optional[SimTrace]) -> Optional[SimTrace]:
    """Install ``trace`` as this thread's collector; returns the previous one."""
    previous = _STATE.trace
    _STATE.trace = trace
    return previous


def current() -> Optional[SimTrace]:
    """This thread's active collector, or ``None`` when tracing is off."""
    return _STATE.trace


@contextlib.contextmanager
def collecting(trace: Optional[SimTrace] = None) -> Iterator[SimTrace]:
    """Temporarily install a collector (tests and ad-hoc profiling)."""
    installed = trace if trace is not None else SimTrace()
    previous = set_collector(installed)
    try:
        yield installed
    finally:
        set_collector(previous)
