"""Tests for the ML collective sweep experiment."""

from __future__ import annotations

import json

import pytest

from repro.experiments.ml_sweep import (
    ML_POLICIES,
    ML_SCHEMES,
    ML_TOPOLOGIES,
    build_ml_routing,
    build_ml_topology,
    default_training_jobs,
    ml_capacity,
    ml_table_from_cells,
    placement_sensitivity,
    render_ml_sweep,
    run_ml_cell,
)
from repro.experiments.runner import Scale, register_scale
from repro.traffic import TrainingJob

TINY = register_scale(
    Scale(
        name="tiny-ml",
        leaf_x=6,
        leaf_y=2,
        dring_m=6,
        dring_n=2,
        dring_servers=48,
        max_flows=120,
        window_seconds=0.02,
        size_cap_bytes=10e6,
    )
)

TINY_JOBS = (
    TrainingJob("ring", 6, 1e6, 1e-3, num_layers=2, num_iterations=2),
    TrainingJob(
        "moe", 4, 5e5, 5e-4, num_iterations=2, collective="all-to-all"
    ),
)


class TestBuilders:
    def test_all_topologies_build(self):
        for kind in ML_TOPOLOGIES:
            net = build_ml_topology(kind, TINY, seed=0)
            assert net.num_servers > 0

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            build_ml_topology("torus", TINY)

    def test_all_schemes_build(self):
        net = build_ml_topology("dring", TINY, seed=0)
        for scheme in ML_SCHEMES:
            assert build_ml_routing(scheme, net).network is net

    def test_unknown_scheme_rejected(self):
        net = build_ml_topology("dring", TINY, seed=0)
        with pytest.raises(ValueError):
            build_ml_routing("rip", net)

    def test_default_jobs_fit_every_topology(self):
        jobs = default_training_jobs(TINY)
        demand = sum(job.num_workers for job in jobs)
        assert demand <= ml_capacity(TINY)
        names = [job.name for job in jobs]
        assert len(set(names)) == len(names)


class TestCell:
    def test_cell_is_deterministic(self):
        kwargs = dict(
            scale=TINY, topology="dring", scheme="ecmp",
            policy="random", placement_seed=1, seed=0, jobs=TINY_JOBS,
        )
        assert run_ml_cell(**kwargs) == run_ml_cell(**kwargs)

    def test_cell_is_json_serializable(self):
        cell = run_ml_cell(
            TINY, "leaf-spine", "su2", jobs=TINY_JOBS
        )
        assert json.loads(json.dumps(cell)) == cell

    def test_cell_shape(self):
        cell = run_ml_cell(TINY, "rrg", "ecmp", jobs=TINY_JOBS)
        assert cell["num_jobs"] == 2
        assert cell["num_workers"] == 10
        assert cell["iteration_time_s"] > 0.0
        assert (
            cell["max_iteration_time_s"] >= cell["iteration_time_s"]
        )
        assert {row["job"] for row in cell["jobs"]} == {"ring", "moe"}
        assert "jobs" in cell["collective"]

    def test_schemes_face_identical_workloads(self):
        """Placement must not fold in the scheme (comparability)."""
        a = run_ml_cell(
            TINY, "dring", "ecmp", policy="random",
            placement_seed=3, jobs=TINY_JOBS,
        )
        b = run_ml_cell(
            TINY, "dring", "su2", policy="random",
            placement_seed=3, jobs=TINY_JOBS,
        )
        assert [r["racks"] for r in a["jobs"]] == [
            r["racks"] for r in b["jobs"]
        ]

    def test_adaptive_scheme_runs(self):
        cell = run_ml_cell(
            TINY, "xpander", "adaptive", jobs=TINY_JOBS
        )
        assert cell["iteration_time_s"] > 0.0


class TestAggregation:
    def cells(self):
        out = []
        for topology in ("leaf-spine", "dring"):
            for policy in ML_POLICIES:
                for placement_seed in (0, 1):
                    out.append(run_ml_cell(
                        TINY, topology, "ecmp", policy=policy,
                        placement_seed=placement_seed, jobs=TINY_JOBS,
                    ))
        return out

    def test_table_groups_and_averages(self):
        cells = self.cells()
        rows = ml_table_from_cells(cells)
        assert len(rows) == 4  # 2 topologies x 1 scheme x 2 policies
        assert all(row["seeds"] == 2 for row in rows)

    def test_placement_sensitivity_pairs(self):
        sensitivity = placement_sensitivity(self.cells())
        assert [
            (row["topology"], row["scheme"]) for row in sensitivity
        ] == [("dring", "ecmp"), ("leaf-spine", "ecmp")]
        assert all(row["sensitivity"] > 0.0 for row in sensitivity)

    def test_render_lists_every_point(self):
        text = render_ml_sweep(self.cells())
        assert "leaf-spine" in text and "dring" in text
        assert "Placement sensitivity" in text
        assert text.splitlines()[0].startswith("ML collectives")
