"""deep-quadratic-scan and deep-numpy-scalar-loop on fixtures."""

from __future__ import annotations

from repro.lint.flow.perf.scans import (
    DeepNumpyScalarLoop,
    DeepQuadraticScan,
)

from tests.lint.flow.util import build_fixture_graph


def _scan(graph):
    return list(DeepQuadraticScan().check(graph))


def _scalar(graph):
    return list(DeepNumpyScalarLoop().check(graph))


class TestQuadraticScan:
    def test_list_membership_in_a_hot_loop_fires(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "# repro-hot -- fixture loop\n"
            "def run(events, seen: list):\n"
            "    for event in events:\n"
            "        if event in seen:\n"
            "            continue\n"
        )}, "ppkg")
        (finding,) = _scan(graph)
        assert "membership test scans list 'seen'" in finding.message

    def test_set_membership_is_clean(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "# repro-hot -- fixture loop\n"
            "def run(events, seen: set):\n"
            "    for event in events:\n"
            "        if event in seen:\n"
            "            continue\n"
        )}, "ppkg")
        assert _scan(graph) == []

    def test_pop_front_in_a_hot_loop_fires(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "# repro-hot -- fixture loop\n"
            "def drain(queue: list):\n"
            "    while queue:\n"
            "        head = queue.pop(0)\n"
            "        consume(head)\n"
            "\n"
            "\n"
            "def consume(head):\n"
            "    return head\n"
        )}, "ppkg")
        (finding,) = _scan(graph)
        assert "list.pop(0)" in finding.message

    def test_pop_from_the_end_is_clean(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "# repro-hot -- fixture loop\n"
            "def drain(queue: list):\n"
            "    while queue:\n"
            "        head = queue.pop()\n"
        )}, "ppkg")
        assert _scan(graph) == []

    def test_nested_reiteration_of_the_same_collection(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "# repro-hot: per-event -- fixture kernel\n"
            "def pairs(items):\n"
            "    for a in items:\n"
            "        for b in items:\n"
            "            compare(a, b)\n"
            "\n"
            "\n"
            "def compare(a, b):\n"
            "    return a == b\n"
        )}, "ppkg")
        (finding,) = _scan(graph)
        assert "O(n²)" in finding.message
        assert "'items'" in finding.message

    def test_allow_comment_absorbs(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "# repro-hot -- fixture loop\n"
            "def run(events, seen: list):\n"
            "    for event in events:\n"
            "        # repro-perf: allow=deep-quadratic-scan"
            " -- tiny list by construction\n"
            "        if event in seen:\n"
            "            continue\n"
        )}, "ppkg")
        assert _scan(graph) == []


class TestNumpyScalarLoop:
    def test_python_for_over_ndarray_fires(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "import numpy as np\n"
            "\n"
            "\n"
            "# repro-hot: per-event -- fixture kernel\n"
            "def total(values: np.ndarray):\n"
            "    acc = 0.0\n"
            "    for value in values:\n"
            "        acc = acc + value\n"
            "    return acc\n"
        )}, "ppkg")
        (finding,) = _scalar(graph)
        assert "Python for over ndarray 'values'" in finding.message

    def test_per_element_write_keyed_by_loop_var_fires(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "import numpy as np\n"
            "\n"
            "\n"
            "# repro-hot: per-event -- fixture kernel\n"
            "def fill(out: np.ndarray, n):\n"
            "    for i in range(n):\n"
            "        out[i] = i * 2.0\n"
        )}, "ppkg")
        (finding,) = _scalar(graph)
        assert "out[i] = ..." in finding.message

    def test_vectorized_assignment_is_clean(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "import numpy as np\n"
            "\n"
            "\n"
            "# repro-hot: per-event -- fixture kernel\n"
            "def fill(out: np.ndarray, n):\n"
            "    out[:] = np.arange(n) * 2.0\n"
        )}, "ppkg")
        assert _scalar(graph) == []

    def test_loop_over_a_list_is_not_this_rules_business(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "# repro-hot: per-event -- fixture kernel\n"
            "def total(values: list):\n"
            "    acc = 0.0\n"
            "    for value in values:\n"
            "        acc = acc + value\n"
            "    return acc\n"
        )}, "ppkg")
        assert _scalar(graph) == []

    def test_ndarray_attr_seed_types_self_receivers(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "import numpy as np\n"
            "\n"
            "\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self.levels = np.zeros(8)\n"
            "\n"
            "    # repro-hot: per-event -- fixture kernel\n"
            "    def drain(self):\n"
            "        levels = self.levels\n"
            "        for level in levels:\n"
            "            consume(level)\n"
            "\n"
            "\n"
            "def consume(level):\n"
            "    return level\n"
        )}, "ppkg")
        (finding,) = _scalar(graph)
        assert "ndarray 'levels'" in finding.message

    def test_allow_comment_absorbs(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, {"eng.py": (
            "import numpy as np\n"
            "\n"
            "\n"
            "# repro-hot: per-event -- fixture kernel\n"
            "def total(values: np.ndarray):\n"
            "    acc = 0.0\n"
            "    # repro-perf: allow=deep-numpy-scalar-loop"
            " -- object construction cannot vectorize\n"
            "    for value in values:\n"
            "        acc = acc + value\n"
            "    return acc\n"
        )}, "ppkg")
        assert _scalar(graph) == []
