"""E7: Theorem 1 and the routing-design guarantees (Section 4).

Regenerates the paper's prototype validation: eBGP over the VRF graph
yields metric max(L, K) between host VRFs, installs exactly the
Shortest-Union(2) path set, and on a DRing provides at least n+1
edge-disjoint paths between any two racks.  The benchmark times full
control-plane convergence, the cost an operator would actually pay.
"""

import pytest

from conftest import save_artifact
from repro.bgp import min_disjoint_paths_su, verify_fabric
from repro.topology import dring, flatten, leaf_spine


@pytest.fixture(scope="module")
def networks():
    ls = leaf_spine(8, 4)
    return {
        "dring": dring(8, 3, servers_per_rack=4),
        "rrg": flatten(ls, seed=1, name="rrg"),
        "leaf-spine": ls,
    }


def test_bench_bgp_convergence_dring(benchmark, networks):
    stats = benchmark.pedantic(
        verify_fabric, args=(networks["dring"], 2), rounds=2, iterations=1
    )
    save_artifact(
        "theorem1_dring.txt",
        f"DRing(8,3) K=2: pairs={stats['pairs']} "
        f"rounds={stats['rounds']} updates={stats['updates']}",
    )
    assert stats["pairs"] == 24 * 23


def test_bench_bgp_convergence_rrg(benchmark, networks):
    stats = benchmark.pedantic(
        verify_fabric, args=(networks["rrg"], 2), rounds=2, iterations=1
    )
    assert stats["rounds"] >= 1


def test_bench_bgp_convergence_leafspine(benchmark, networks):
    stats = benchmark.pedantic(
        verify_fabric, args=(networks["leaf-spine"], 2), rounds=2, iterations=1
    )
    assert stats["rounds"] >= 1


def test_bench_disjoint_paths_claim(benchmark, networks):
    # Section 4: SU(2) provides at least n+1 disjoint paths on a DRing.
    net = networks["dring"]
    pairs = list(net.rack_pairs())
    minimum = benchmark.pedantic(
        min_disjoint_paths_su, args=(net, 2), kwargs={"pairs": pairs},
        rounds=1, iterations=1,
    )
    save_artifact(
        "disjoint_paths.txt",
        f"DRing(8,3): min edge-disjoint SU(2) paths over all pairs = "
        f"{minimum} (paper claims >= n+1 = 4)",
    )
    assert minimum >= 3 + 1
