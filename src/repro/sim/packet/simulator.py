"""The packet-level simulator tying links, TCP and routing together.

Every directed network link and every server up/down link becomes a
:class:`LinkQueue`.  Each flow is hashed onto one switch path at start
(per-flow ECMP, as hardware does), TCP self-clocks its packets through
the queues, and the flow-completion time is recorded when the final ACK
returns.  This is the faithful (and ~100x slower) counterpart of
:mod:`repro.sim.flowsim`; use it for validation runs and small studies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.network import Network
from repro.routing.base import RoutingScheme
from repro.sim.engine import trace as sim_trace
from repro.sim.packet.core import EventQueue, Packet
from repro.sim.packet.link import (
    DEFAULT_BUFFER_BYTES,
    DEFAULT_PROPAGATION_S,
    LinkQueue,
)
from repro.sim.packet.tcp import ACK_BYTES, TcpFlow, TcpParams
from repro.sim.results import FctResults, FlowRecord
from repro.traffic.flows import Flow
from repro.traffic.matrix import Placement


@dataclass
class _FlowContext:
    flow: Flow
    tcp: TcpFlow
    forward_path: Tuple[LinkQueue, ...]
    reverse_path: Tuple[LinkQueue, ...]
    switch_path: Tuple[int, ...]
    src_server: int
    dst_server: int
    started_at: float
    #: Time the last data packet was injected (flowlet gap detection).
    last_data_at: float = 0.0
    flowlets: int = 1


class PacketSimulator:
    """Packet-level simulation of one workload on one network."""

    def __init__(
        self,
        network: Network,
        routing: RoutingScheme,
        placement: Placement,
        seed: int = 0,
        tcp_params: TcpParams = TcpParams(),
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        propagation_s: float = DEFAULT_PROPAGATION_S,
        flowlet_gap_s: Optional[float] = None,
        ecn_threshold_bytes: Optional[int] = None,
    ) -> None:
        """``flowlet_gap_s`` enables flowlet switching (Kassing et al.,
        the Section 2 baseline): when a flow pauses for longer than the
        gap, its next burst is re-hashed onto a fresh path.  A gap well
        above the path delay keeps reordering rare, which is the
        mechanism's selling point.  ``None`` (default) pins one path per
        flow, as standard per-flow ECMP hashing does.

        ``ecn_threshold_bytes`` arms DCTCP-style CE marking on every
        queue; pair it with ``TcpParams(dctcp=True)`` for the full
        DCTCP loop (proportional back-off, near-empty queues)."""
        if routing.network is not network:
            raise ValueError("routing was built for a different network")
        if placement.network is not network:
            raise ValueError("placement targets a different network")
        self.network = network
        self.routing = routing
        self.placement = placement
        self.tcp_params = tcp_params
        self.flowlet_gap_s = flowlet_gap_s
        self._rng = random.Random(seed)
        self.events = EventQueue()
        self._buffer_bytes = buffer_bytes
        self._propagation_s = propagation_s
        self._ecn_threshold_bytes = ecn_threshold_bytes
        self._links: Dict[object, LinkQueue] = {}
        table = network.link_table()
        for (u, v), capacity in zip(table.pairs, table.capacities):
            self._add_link(("net", u, v), float(capacity))
        self._compiled = routing.compile(table)
        self._contexts: Dict[int, _FlowContext] = {}
        self.results = FctResults()

    # ------------------------------------------------------------------

    def _add_link(self, key: object, rate_gbps: float) -> LinkQueue:
        if key not in self._links:
            self._links[key] = LinkQueue(
                name=str(key),
                rate_gbps=rate_gbps,
                events=self.events,
                deliver=self._on_hop_done,
                buffer_bytes=self._buffer_bytes,
                propagation_s=self._propagation_s,
                ecn_threshold_bytes=self._ecn_threshold_bytes,
            )
        return self._links[key]

    def _server_link(self, direction: str, server: int) -> LinkQueue:
        return self._add_link(
            (direction, server), self.network.server_link_capacity
        )

    def link(self, key: object) -> LinkQueue:
        """Look up a link queue (for tests and utilization reports)."""
        return self._links[key]

    # ------------------------------------------------------------------
    # Flow setup
    # ------------------------------------------------------------------

    def _paths_for(
        self, src_server: int, dst_server: int
    ) -> Tuple[Tuple[LinkQueue, ...], Tuple[LinkQueue, ...], Tuple[int, ...]]:
        src_rack = self.network.switch_of_server(src_server)
        dst_rack = self.network.switch_of_server(dst_server)
        forward: List[LinkQueue] = [self._server_link("up", src_server)]
        reverse: List[LinkQueue] = [self._server_link("up", dst_server)]
        if src_rack != dst_rack:
            switch_path = self._compiled.sample_path(src_rack, dst_rack, self._rng)
            for u, v in zip(switch_path, switch_path[1:]):
                forward.append(self._links[("net", u, v)])
            # ACKs take the reverse hash (their own path sample).
            ack_path = self._compiled.sample_path(dst_rack, src_rack, self._rng)
            for u, v in zip(ack_path, ack_path[1:]):
                reverse.append(self._links[("net", u, v)])
        else:
            switch_path = (src_rack,)
        if dst_server != src_server:
            forward.append(self._server_link("down", dst_server))
            reverse.append(self._server_link("down", src_server))
        return tuple(forward), tuple(reverse), switch_path

    def _resample_forward(self, context: "_FlowContext") -> None:
        """Re-hash the flow's data path (flowlet boundary)."""
        src_rack = self.network.switch_of_server(context.src_server)
        dst_rack = self.network.switch_of_server(context.dst_server)
        if src_rack == dst_rack:
            return
        switch_path = self._compiled.sample_path(src_rack, dst_rack, self._rng)
        forward: List[LinkQueue] = [
            self._server_link("up", context.src_server)
        ]
        for u, v in zip(switch_path, switch_path[1:]):
            forward.append(self._links[("net", u, v)])
        if context.dst_server != context.src_server:
            forward.append(self._server_link("down", context.dst_server))
        context.forward_path = tuple(forward)
        context.switch_path = switch_path
        context.flowlets += 1

    def _start_flow(self, flow_id: int, flow: Flow) -> None:
        src = self.placement.network_server(flow.src_server)
        dst = self.placement.network_server(flow.dst_server)
        forward, reverse, switch_path = self._paths_for(src, dst)

        def send_data(seq: int, size: int, retransmission: bool) -> None:
            context = self._contexts[flow_id]
            if (
                self.flowlet_gap_s is not None
                and self.events.now - context.last_data_at > self.flowlet_gap_s
            ):
                self._resample_forward(context)
            context.last_data_at = self.events.now
            packet = Packet(
                flow_id=flow_id,
                seq=seq,
                size_bytes=size,
                is_ack=False,
                path=context.forward_path,
                sent_at=self.events.now,
                retransmitted=retransmission,
            )
            self._inject(packet)

        def send_ack(cumulative: int, ece: bool = False) -> None:
            packet = Packet(
                flow_id=flow_id,
                seq=cumulative,
                size_bytes=ACK_BYTES,
                is_ack=True,
                path=reverse,
                ecn=ece,
            )
            self._inject(packet)

        def finished() -> None:
            context = self._contexts[flow_id]
            self.results.add(
                FlowRecord(
                    src_server=context.src_server,
                    dst_server=context.dst_server,
                    size_bytes=context.flow.size_bytes,
                    start_time=context.started_at,
                    finish_time=self.events.now,
                    path=context.switch_path,
                )
            )

        tcp = TcpFlow(
            flow_id=flow_id,
            size_bytes=flow.size_bytes,
            send_data=send_data,
            send_ack=send_ack,
            schedule=self.events.schedule,
            now=lambda: self.events.now,
            finished=finished,
            params=self.tcp_params,
        )
        self._contexts[flow_id] = _FlowContext(
            flow=flow,
            tcp=tcp,
            forward_path=forward,
            reverse_path=reverse,
            switch_path=switch_path,
            src_server=src,
            dst_server=dst,
            started_at=self.events.now,
        )
        tcp.start()

    # ------------------------------------------------------------------
    # Packet movement
    # ------------------------------------------------------------------

    def _inject(self, packet: Packet) -> None:
        # Tail drop at the first hop behaves like any other drop: the
        # packet simply vanishes and TCP recovers.
        packet.next_link().enqueue(packet)

    # repro-hot: per-event -- per-packet hop completion (heap callback)
    def _on_hop_done(self, packet: Packet) -> None:
        packet.hop += 1
        if not packet.at_destination():
            packet.next_link().enqueue(packet)
            return
        tcp = self._contexts[packet.flow_id].tcp
        if packet.is_ack:
            tcp.on_ack_arrival(packet.seq, ece=packet.ecn)
        else:
            tcp.on_data_arrival(packet.seq, ecn=packet.ecn)

    # ------------------------------------------------------------------

    def run(self, flows: Sequence[Flow], max_events: int = 50_000_000) -> FctResults:
        """Simulate the workload to completion and return all FCTs."""
        for flow_id, flow in enumerate(
            sorted(flows, key=lambda f: f.start_time)
        ):
            self.events.schedule_at(
                flow.start_time,
                lambda fid=flow_id, f=flow: self._start_flow(fid, f),
            )
        self.events.run(max_events=max_events)
        collector = sim_trace.current()
        if collector is not None:
            for bucket, tally in sorted(self.events.cohort_counts.items()):
                collector.count(bucket, tally)
        missing = len(flows) - self.results.num_flows
        if missing:
            raise RuntimeError(
                f"{missing} flows never completed; check TCP/RTO settings"
            )
        return self.results

    def total_drops(self) -> int:
        return sum(link.dropped_packets for link in self._links.values())

    def total_ecn_marks(self) -> int:
        return sum(link.marked_packets for link in self._links.values())

    def total_retransmissions(self) -> int:
        return sum(c.tcp.retransmission_count for c in self._contexts.values())

    def total_timeouts(self) -> int:
        return sum(c.tcp.timeout_count for c in self._contexts.values())


def simulate_fct_packet(
    network: Network,
    routing: RoutingScheme,
    placement: Placement,
    flows: Sequence[Flow],
    seed: int = 0,
) -> FctResults:
    """Convenience wrapper mirroring :func:`repro.sim.flowsim.simulate_fct`."""
    return PacketSimulator(network, routing, placement, seed=seed).run(flows)
