"""Traffic matrices over a canonical rack/server space (Section 5.2).

The paper authors all of their traffic matrices against the leaf-spine
cluster (64 racks x 48 servers) and then *carry the servers over* to each
topology under test: the RRG re-houses the same servers on all switches,
the DRing houses nearly the same number.  We follow the same recipe with
an explicit canonical space:

* a :class:`CanonicalCluster` fixes the authoring rack count and servers
  per rack (64 x 48 by default, scaled-down variants for tests);
* a :class:`TrafficMatrix` stores *rack-level* weights over the canonical
  racks — every workload in the paper is rack-structured — together with
  the machinery to sample server-level flows;
* a :class:`Placement` maps canonical servers onto the servers of a
  concrete :class:`~repro.core.network.Network`; the Random Placement
  (RP) variants of Section 5.2 are seeded shuffles of this map.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.network import Network

RackPair = Tuple[int, int]


@dataclass(frozen=True)
class CanonicalCluster:
    """The rack/server space traffic matrices are authored in."""

    num_racks: int
    servers_per_rack: int

    @property
    def num_servers(self) -> int:
        return self.num_racks * self.servers_per_rack

    def rack_of(self, canonical_server: int) -> int:
        if not 0 <= canonical_server < self.num_servers:
            raise ValueError(f"canonical server {canonical_server} out of range")
        return canonical_server // self.servers_per_rack

    def servers_of(self, rack: int) -> range:
        if not 0 <= rack < self.num_racks:
            raise ValueError(f"canonical rack {rack} out of range")
        start = rack * self.servers_per_rack
        return range(start, start + self.servers_per_rack)


#: The paper's authoring cluster: leaf-spine(48, 16) = 64 racks x 48 servers.
PAPER_CLUSTER = CanonicalCluster(num_racks=64, servers_per_rack=48)


class TrafficMatrix:
    """Rack-level traffic weights plus server-level flow sampling.

    ``weights[(r1, r2)]`` is proportional to the number of flows (and
    therefore bytes, in expectation) from canonical rack r1 to r2.
    Intra-rack entries are disallowed: the paper's matrices are
    inter-rack by construction.
    """

    def __init__(
        self,
        cluster: CanonicalCluster,
        weights: Dict[RackPair, float],
        name: str = "tm",
    ) -> None:
        self.cluster = cluster
        self.name = name
        cleaned: Dict[RackPair, float] = {}
        for (r1, r2), weight in weights.items():
            if r1 == r2:
                raise ValueError(f"intra-rack weight at rack {r1}")
            if not 0 <= r1 < cluster.num_racks or not 0 <= r2 < cluster.num_racks:
                raise ValueError(f"rack pair {(r1, r2)} out of range")
            if weight < 0:
                raise ValueError(f"negative weight at {(r1, r2)}")
            if weight > 0:
                cleaned[(r1, r2)] = float(weight)
        if not cleaned:
            raise ValueError("traffic matrix has no positive weights")
        self.weights = cleaned
        self._pairs: List[RackPair] = sorted(cleaned)
        probabilities = np.array([cleaned[p] for p in self._pairs], dtype=float)
        self._probabilities = probabilities / probabilities.sum()
        self._cumulative = np.cumsum(self._probabilities)

    # ------------------------------------------------------------------

    @property
    def total_weight(self) -> float:
        return float(sum(self.weights.values()))

    def sending_racks(self) -> List[int]:
        """Canonical racks that originate any traffic."""
        return sorted({r1 for r1, _r2 in self.weights})

    def participating_racks(self) -> List[int]:
        """Canonical racks that send or receive any traffic."""
        racks = {r1 for r1, _ in self.weights} | {r2 for _, r2 in self.weights}
        return sorted(racks)

    def normalized(self) -> Dict[RackPair, float]:
        """Weights scaled to sum to 1."""
        total = self.total_weight
        return {pair: w / total for pair, w in self.weights.items()}

    # ------------------------------------------------------------------

    def sample_rack_pair(self, rng: random.Random) -> RackPair:
        """Draw a rack pair with probability proportional to its weight."""
        u = rng.random()
        index = int(np.searchsorted(self._cumulative, u, side="right"))
        index = min(index, len(self._pairs) - 1)
        return self._pairs[index]

    def sample_server_pair(self, rng: random.Random) -> Tuple[int, int]:
        """Draw a canonical (src_server, dst_server) flow endpoint pair."""
        r1, r2 = self.sample_rack_pair(rng)
        src = rng.choice(self.cluster.servers_of(r1))
        dst = rng.choice(self.cluster.servers_of(r2))
        return src, dst


class Placement:
    """Maps canonical servers onto the servers of a concrete network.

    The default map is linear: canonical server i lands on network server
    ``floor(i * N_net / N_canonical)``, which preserves rack locality
    when server counts match and degrades gracefully when the target has
    slightly fewer servers (the DRing's 2.8% deficit).  ``shuffle`` with
    a seed produces the paper's Random Placement variants.
    """

    def __init__(
        self,
        cluster: CanonicalCluster,
        network: Network,
        shuffle: bool = False,
        seed: int = 0,
    ) -> None:
        self.cluster = cluster
        self.network = network
        num_canonical = cluster.num_servers
        num_network = network.num_servers
        if num_network == 0:
            raise ValueError("target network has no servers")
        targets = [
            (i * num_network) // num_canonical for i in range(num_canonical)
        ]
        if shuffle:
            rng = random.Random(seed)
            rng.shuffle(targets)
        self._target_server = targets

    def network_server(self, canonical_server: int) -> int:
        """The concrete network server a canonical server maps to."""
        return self._target_server[canonical_server]

    def rack_of(self, canonical_server: int) -> int:
        """The concrete rack switch hosting a canonical server."""
        return self.network.switch_of_server(
            self._target_server[canonical_server]
        )

    def _rack_histogram(self, canonical_rack: int) -> Dict[int, int]:
        """How many of a canonical rack's servers land on each concrete rack."""
        histogram: Dict[int, int] = {}
        for server in self.cluster.servers_of(canonical_rack):
            rack = self.rack_of(server)
            histogram[rack] = histogram.get(rack, 0) + 1
        return histogram

    def rack_demands(self, tm: TrafficMatrix) -> Dict[RackPair, float]:
        """Project a canonical TM onto concrete rack-pair weights.

        Weights are spread uniformly over each canonical rack's servers
        and re-aggregated by concrete rack, dropping pairs that collapse
        onto the same concrete rack (they never touch network links).
        """
        histograms = {
            rack: self._rack_histogram(rack)
            for rack in tm.participating_racks()
        }
        per_server = 1.0 / (self.cluster.servers_per_rack**2)
        demands: Dict[RackPair, float] = {}
        for (r1, r2), weight in tm.weights.items():
            share = weight * per_server
            for rack1, count1 in histograms[r1].items():
                for rack2, count2 in histograms[r2].items():
                    if rack1 == rack2:
                        continue
                    key = (rack1, rack2)
                    demands[key] = demands.get(key, 0.0) + share * count1 * count2
        if not demands:
            raise ValueError(
                "all traffic collapsed intra-rack under this placement"
            )
        return demands
