"""Leaf-spine(x, y): the baseline 2-tier Clos network (Section 3.1).

Following the paper's definition:

* there are ``y`` spines, each connected to all leafs;
* there are ``x + y`` leafs, each connected to all spines;
* each leaf hosts ``x`` servers.

Every switch therefore uses exactly ``x + y`` ports, the oversubscription
ratio at each rack is ``x / y``, and the paper's recommended industry
configuration is x=48, y=16 (ratio 3), giving 64 racks and 3072 servers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.network import Network, build_network
from repro.core.units import DEFAULT_LINK_GBPS


def leaf_spine(
    x: int,
    y: int,
    link_capacity: float = DEFAULT_LINK_GBPS,
    uplink_mult: int = 1,
    name: str = "",
) -> Network:
    """Build leaf-spine(x, y).

    Leafs are switches ``0 .. x+y-1`` and spines are ``x+y .. x+2y-1``;
    only leafs host servers, so the network is not flat.

    ``uplink_mult`` models heterogeneous configurations (Section 5.1
    leaves these to future work): each leaf-spine link carries
    ``uplink_mult`` times the base rate, represented as that many
    parallel base-rate links — e.g. ``uplink_mult=4`` gives 40 Gbps
    uplinks over 10 Gbps server links.
    """
    if x <= 0 or y <= 0:
        raise ValueError("leaf-spine requires positive x and y")
    if uplink_mult < 1:
        raise ValueError("uplink_mult must be at least 1")
    num_leafs = x + y
    leafs = list(range(num_leafs))
    spines = list(range(num_leafs, num_leafs + y))
    edges: List[Tuple[int, int]] = [
        (leaf, spine)
        for leaf in leafs
        for spine in spines
        for _ in range(uplink_mult)
    ]
    servers: Dict[int, int] = {leaf: x for leaf in leafs}
    default_name = (
        f"leaf-spine({x},{y})"
        if uplink_mult == 1
        else f"leaf-spine({x},{y},x{uplink_mult})"
    )
    network = build_network(
        edges,
        servers,
        link_capacity=link_capacity,
        name=name or default_name,
        extra_switches=spines,
    )
    network.graph.graph["leafs"] = leafs
    network.graph.graph["spines"] = spines
    # Heterogeneous builds use bigger spines: a spine terminates all
    # (x + y) uplinks at uplink_mult lanes each.
    network.validate(max_radix=max(x + y * uplink_mult, (x + y) * uplink_mult))
    return network


def spine_layer_capacity(network: Network) -> float:
    """Aggregate one-way leaf-to-spine capacity of a leaf-spine, in Gbps.

    Used to scale traffic matrices to a target spine utilization
    (Section 6.1).  Raises if the network was not built by
    :func:`leaf_spine`.
    """
    spines = network.graph.graph.get("spines")
    if spines is None:
        raise ValueError("network was not built by leaf_spine()")
    total = 0.0
    spine_set = set(spines)
    for u, v, mult in network.undirected_links():
        if (u in spine_set) != (v in spine_set):
            total += mult * network.link_capacity
    return total
