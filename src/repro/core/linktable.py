"""Dense integer link ids: the array-backed lowering of a Network's links.

A :class:`LinkTable` freezes one snapshot of a network's directed links
into parallel arrays — ``pairs[i]`` is the i-th directed link and
``capacities[i]`` its Gbps rate — in exactly the iteration order of
:meth:`Network.directed_capacities`.  Every array-backed consumer (the
simulation engine in :mod:`repro.sim.engine`, the fault sampler in
:mod:`repro.faults`) shares the same ids, so link-indexed vectors can
flow between subsystems without re-keying through dicts.

The table is immutable; :meth:`Network.link_table` caches one per
topology version and rebuilds it after any mutation primitive runs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

#: A directed switch-to-switch link (duplicated here to keep this module
#: import-light; :mod:`repro.core.network` re-exports the same alias).
DirectedLink = Tuple[int, int]

#: An undirected trunk with its parallel-link multiplicity.
Trunk = Tuple[int, int, int]


class LinkTable:
    """Immutable dense-id view of a network's directed links.

    Parameters
    ----------
    pairs:
        Directed links in :meth:`Network.directed_capacities` insertion
        order; ``id_of(u, v)`` returns a pair's position in this order.
    capacities:
        Per-link capacity in Gbps, aligned with ``pairs``.
    trunks:
        ``sorted(network.undirected_links())`` — the undirected trunks
        with multiplicities, in the exact order the fault sampler's
        candidate populations are built from.
    switches:
        All switch ids, sorted; ``switch_index`` gives each a dense id
        for compiled per-hop routing tables.
    version:
        The network's topology version this table was built at.
    """

    __slots__ = (
        "pairs", "capacities", "trunks", "switches", "version",
        "_id_of", "_switch_index",
    )

    def __init__(
        self,
        pairs: Sequence[DirectedLink],
        capacities: Sequence[float],
        trunks: Sequence[Trunk],
        switches: Sequence[int],
        version: int = 0,
    ) -> None:
        if len(pairs) != len(capacities):
            raise ValueError("pairs and capacities must align")
        self.pairs: Tuple[DirectedLink, ...] = tuple(pairs)
        self.capacities = np.asarray(capacities, dtype=float)
        self.capacities.setflags(write=False)
        self.trunks: Tuple[Trunk, ...] = tuple(trunks)
        self.switches: Tuple[int, ...] = tuple(switches)
        self.version = version
        self._id_of: Dict[DirectedLink, int] = {
            pair: index for index, pair in enumerate(self.pairs)
        }
        self._switch_index: Dict[int, int] = {
            switch: index for index, switch in enumerate(self.switches)
        }

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair: object) -> bool:
        return pair in self._id_of

    def id_of(self, u: int, v: int) -> int:
        """Dense id of the directed link u→v (KeyError when absent)."""
        return self._id_of[(u, v)]

    def pair_of(self, index: int) -> DirectedLink:
        return self.pairs[index]

    def capacity_of(self, index: int) -> float:
        return float(self.capacities[index])

    @property
    def id_map(self) -> Dict[DirectedLink, int]:
        """A fresh ``{(u, v): id}`` mapping (callers may not mutate ours)."""
        return dict(self._id_of)

    # -- switch indexing ------------------------------------------------

    @property
    def num_switches(self) -> int:
        return len(self.switches)

    def switch_id(self, switch: int) -> int:
        """Dense index of a switch (KeyError for unknown switches)."""
        return self._switch_index[switch]

    def has_switch(self, switch: int) -> bool:
        return switch in self._switch_index

    # -- fault-model candidate populations ------------------------------

    def cables(self) -> List[Tuple[int, int]]:
        """One normalized ``(u, v)`` entry per physical cable.

        Trunk members repeat ``mult`` times.  Order matches the legacy
        dict-scan the fault sampler used (sorted raw trunk tuples,
        normalized per entry), so seeded fault draws are unchanged.
        """
        cables: List[Tuple[int, int]] = []
        for u, v, mult in self.trunks:
            edge = (min(u, v), max(u, v))
            cables.extend([edge] * mult)
        return cables

    def normalized_trunks(self) -> List[Tuple[int, int]]:
        """Normalized trunk endpoints, sorted — the gray-failure
        candidate population."""
        return sorted((min(u, v), max(u, v)) for u, v, _mult in self.trunks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkTable(links={len(self.pairs)}, "
            f"switches={len(self.switches)}, version={self.version})"
        )
