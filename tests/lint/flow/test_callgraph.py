"""Call-graph construction against a fixture package with known edges.

The golden assertions pin the *resolved internal edge sets* for every
interesting call shape — direct calls, methods through typed receivers,
aliased imports, module-level lambdas, nested closures — plus the
three-way site classification and the resolution ratio the deep engine's
optimism depends on.
"""

from __future__ import annotations

from repro.lint.flow.callgraph import EXTERNAL, INTERNAL, UNRESOLVED

from tests.lint.flow.util import build_fixture_graph

FIXTURE = {
    "__init__.py": "from pkg.alpha import top\n",
    "alpha.py": (
        "import math\n"
        "\n"
        "from pkg import beta\n"
        "from pkg.beta import helper as aliased\n"
        "\n"
        "\n"
        "def top(x):\n"
        "    y = helper_local(x)\n"
        "    z = aliased(y)\n"
        "    return beta.helper(z)\n"
        "\n"
        "\n"
        "def helper_local(x):\n"
        "    return math.sqrt(x)\n"
        "\n"
        "\n"
        "square = lambda v: v * v\n"
        "\n"
        "\n"
        "def uses_lambda(v):\n"
        "    return square(v)\n"
        "\n"
        "\n"
        "def closure_maker(n):\n"
        "    def inner(m):\n"
        "        return helper_local(m + n)\n"
        "    return inner(n)\n"
    ),
    "beta.py": (
        "class Greeter:\n"
        "    def __init__(self, name: str):\n"
        "        self.name = name\n"
        "\n"
        "    def greet(self):\n"
        "        return self.shout()\n"
        "\n"
        "    def shout(self):\n"
        "        return self.name.upper()\n"
        "\n"
        "\n"
        "def helper(z):\n"
        "    g = Greeter(str(z))\n"
        "    return g.greet()\n"
        "\n"
        "\n"
        "def mystery(cb):\n"
        "    return cb(1)\n"
    ),
}

#: caller qname -> exact set of resolved internal callees.
GOLDEN_EDGES = {
    "pkg.alpha.top": {"pkg.alpha.helper_local", "pkg.beta.helper"},
    "pkg.alpha.uses_lambda": {"pkg.alpha.square"},
    "pkg.alpha.closure_maker": {
        "pkg.alpha.closure_maker.<locals>.inner",
    },
    "pkg.alpha.closure_maker.<locals>.inner": {"pkg.alpha.helper_local"},
    "pkg.beta.Greeter.greet": {"pkg.beta.Greeter.shout"},
    "pkg.beta.helper": {
        "pkg.beta.Greeter.__init__",
        "pkg.beta.Greeter.greet",
    },
}


class TestGoldenEdges:
    def test_internal_edges_match_golden(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, FIXTURE, "pkg")
        for caller, expected in GOLDEN_EDGES.items():
            assert graph.edges.get(caller, set()) == expected, caller

    def test_no_phantom_edges(self, tmp_path):
        """Functions outside the golden map have no internal edges."""
        _, graph = build_fixture_graph(tmp_path, FIXTURE, "pkg")
        for caller, callees in graph.edges.items():
            if callees:
                assert caller in GOLDEN_EDGES, (caller, callees)

    def test_closure_is_a_nested_edge_too(self, tmp_path):
        """Defining a closure links it for effect propagation even
        before any call is seen."""
        _, graph = build_fixture_graph(tmp_path, FIXTURE, "pkg")
        assert (
            "pkg.alpha.closure_maker.<locals>.inner"
            in graph.callees("pkg.alpha.closure_maker")
        )


class TestSiteClassification:
    def test_external_attribution(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, FIXTURE, "pkg")
        by_caller = {}
        for site in graph.sites:
            by_caller.setdefault(site.caller, []).append(site)
        [sqrt] = by_caller["pkg.alpha.helper_local"]
        assert sqrt.kind == EXTERNAL
        assert sqrt.target == "math.sqrt"

    def test_callable_parameter_is_unresolved(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, FIXTURE, "pkg")
        [site] = [s for s in graph.sites if s.caller == "pkg.beta.mystery"]
        assert site.kind == UNRESOLVED
        assert site.text == "cb"

    def test_aliased_import_site_resolves_internal(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, FIXTURE, "pkg")
        aliased = [
            s for s in graph.sites
            if s.caller == "pkg.alpha.top" and s.text == "aliased"
        ]
        assert len(aliased) == 1
        assert aliased[0].kind == INTERNAL
        assert aliased[0].target == "pkg.beta.helper"


class TestResolutionStats:
    def test_exactly_one_unresolved_site(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, FIXTURE, "pkg")
        stats = graph.resolution_stats()
        assert stats["unresolved"] == 1.0  # only mystery's cb(1)
        assert stats["call_sites"] >= 10.0

    def test_resolution_ratio_reported(self, tmp_path):
        _, graph = build_fixture_graph(tmp_path, FIXTURE, "pkg")
        stats = graph.resolution_stats()
        expected = (stats["internal"] + stats["external"]) / stats[
            "call_sites"
        ]
        assert stats["resolved_fraction"] == expected
        assert stats["resolved_fraction"] > 0.9
