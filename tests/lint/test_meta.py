"""The gate itself: the repository at HEAD is lint-clean.

If one of these fails, either a determinism invariant was just broken
(fix the code) or a rule misfires on a legitimate new pattern (fix the
rule, or suppress with a justification comment).
"""

from __future__ import annotations

import pathlib

from repro.cli import main
from repro.lint import lint_paths, render_text

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _existing(*names: str) -> list:
    return [REPO_ROOT / name for name in names if (REPO_ROOT / name).is_dir()]


def test_src_is_clean():
    findings = lint_paths(_existing("src"))
    assert findings == [], "\n" + render_text(findings)


def test_tests_are_clean():
    findings = lint_paths(_existing("tests"))
    assert findings == [], "\n" + render_text(findings)


class TestDeepGate:
    """The interprocedural gate: deep-clean at HEAD, bounded optimism."""

    def test_deep_lint_is_clean(self):
        from repro.lint.flow import deep_lint_paths

        findings, _ = deep_lint_paths(
            [str(p) for p in _existing("src", "tests")]
        )
        assert findings == [], "\n" + render_text(findings)

    def test_call_graph_resolution_floor(self):
        """Deep rules treat unresolved call sites as effect-free; that
        optimism is sound only while almost every site resolves.  If
        this ratio sinks, teach the call-graph builder the new pattern
        rather than loosening the floor."""
        from repro.lint.flow import deep_lint_paths

        _, stats = deep_lint_paths([str(REPO_ROOT / "src")])
        assert stats["resolved_fraction"] >= 0.90, stats
        assert stats["call_sites"] > 1000, stats

    def test_cli_deep_flag(self, capsys):
        code = main(["lint", "--deep", str(REPO_ROOT / "src")])
        assert code == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_deep_rules_listed(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "deep-cache-purity", "deep-seed-provenance",
            "deep-unit-consistency", "deep-worker-safety",
        ):
            assert name in out


class TestCliLint:
    def test_clean_tree_exits_zero(self, capsys):
        code = main(["lint", str(REPO_ROOT / "src")])
        assert code == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "sim" / "dirty.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        code = main(["lint", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "no-wallclock" in out

    def test_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "src" / "repro" / "sim" / "dirty.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        code = main(["lint", "--format", "json", str(tmp_path)])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["counts"] == {"no-wallclock": 1}

    def test_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "sim" / "dirty.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\ndef f(x=[]):\n    return time.time()\n")
        code = main(["lint", "--rule", "mutable-default", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "mutable-default" in out
        assert "no-wallclock" not in out

    def test_unknown_rule_rejected(self, tmp_path, capsys):
        assert main(["lint", "--rule", "bogus", str(tmp_path)]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ("no-wallclock", "seed-threading", "float-eq"):
            assert name in out
