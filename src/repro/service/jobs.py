r"""The service's job manager: submissions, state machine, events.

A submission is a JSON object naming a registered experiment cell —
``{"experiment": "fig4", "scale": "small", "scheme": "DRing (su2)",
"pattern": "A2A", "seed": 0, "params": {...}}`` — validated into the
same content-addressed :class:`~repro.harness.jobs.JobSpec` the sweep
CLI builds, so the service and the CLI share one cache: a cell swept
yesterday is a cache hit when submitted over HTTP today.

Job lifecycle (see DESIGN.md for the full state machine)::

    queued --> running --> done
       |          |    \-> failed
       |          \------> cancelled   (in-flight worker terminated)
       \-----------------> cancelled   (dequeued before start)

Each job runs on the PR 1 process-pool executor (one worker process per
job: crash isolation, wall-clock budget, SimTrace collection), driven
from a small pool of manager threads.  Every transition and every
executor progress callback appends a monotonically sequenced event to
the job, and long-pollers wait on the manager's condition variable —
``GET /jobs/{id}/events`` is a blocking read of that stream.

All mutable state lives on the manager and its jobs, guarded by one
condition variable; the module itself holds nothing mutable, which is
exactly what the ``deep-worker-safety`` lint rule checks for code
reachable from handler threads.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional

from repro.harness import clock
from repro.harness.cache import ResultCache
from repro.harness.executor import (
    CANCELLED as OUTCOME_CANCELLED,
    FAILED as OUTCOME_FAILED,
    HIT as OUTCOME_HIT,
    JobOutcome,
    run_jobs,
)
from repro.harness.jobs import EXPERIMENT_REGISTRY, JobSpec

#: Job states, in lifecycle order.
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled"
)
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Submission fields accepted beside ``params``.
_SUBMISSION_FIELDS = frozenset(
    {"experiment", "scale", "scheme", "pattern", "seed", "params"}
)


class ValidationError(ValueError):
    """A submission payload that cannot become a JobSpec."""


class QueueFullError(RuntimeError):
    """The manager's bounded queue is at capacity."""


class UnknownJobError(KeyError):
    """No job with the requested id."""


def validate_submission(payload: Mapping[str, Any]) -> JobSpec:
    """Validate a JSON submission into a :class:`JobSpec`.

    Checks are eager so clients get a 400, not a failed job: the
    experiment must be registered, a non-empty scale must be known,
    the seed must be an integer, and params must be JSON scalars.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError("submission must be a JSON object")
    unknown = sorted(set(payload) - _SUBMISSION_FIELDS)
    if unknown:
        raise ValidationError(
            f"unknown submission field(s) {unknown}; "
            f"accepted: {sorted(_SUBMISSION_FIELDS)}"
        )
    experiment = payload.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        raise ValidationError("'experiment' is required")
    if experiment not in EXPERIMENT_REGISTRY:
        raise ValidationError(
            f"unknown experiment {experiment!r}; "
            f"know {sorted(EXPERIMENT_REGISTRY)}"
        )
    scale = payload.get("scale", "")
    if not isinstance(scale, str):
        raise ValidationError("'scale' must be a string")
    if scale:
        from repro.experiments.runner import SCALES

        if scale not in SCALES:
            raise ValidationError(
                f"unknown scale {scale!r}; know {sorted(SCALES)}"
            )
    scheme = payload.get("scheme", "")
    pattern = payload.get("pattern", "")
    if not isinstance(scheme, str) or not isinstance(pattern, str):
        raise ValidationError("'scheme' and 'pattern' must be strings")
    seed = payload.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ValidationError("'seed' must be an integer")
    params = payload.get("params", {})
    if not isinstance(params, Mapping):
        raise ValidationError("'params' must be an object of scalars")
    try:
        return JobSpec.make(
            experiment,
            scale=scale,
            scheme=scheme,
            pattern=pattern,
            seed=seed,
            **dict(params),
        )
    except TypeError as exc:
        raise ValidationError(str(exc)) from None


@dataclass
class ServiceJob:
    """One submitted cell and everything that happened to it.

    ``id``/``spec``/``key``/``submitted_at`` are immutable after
    construction; every mutable field is guarded by the owning
    manager's condition variable (the ``repro-guard`` declarations
    below are enforced by ``deep-lockset-races``).  Handlers that need
    a job's state use :meth:`JobManager.describe`, which snapshots
    under the lock, rather than reading fields off a shared job.
    """

    id: str
    spec: JobSpec
    key: str
    submitted_at: float
    # repro-guard: state by JobManager._cond -- every transition happens in a manager method holding the condition
    state: str = QUEUED
    # repro-guard: started_at by JobManager._cond -- set by the worker loop under the condition
    started_at: Optional[float] = None
    # repro-guard: finished_at by JobManager._cond -- set by _finish under the condition
    finished_at: Optional[float] = None
    # repro-guard: error by JobManager._cond -- set by _finish under the condition
    error: str = ""
    # repro-guard: cache_hit by JobManager._cond -- set once by _execute under the condition
    cache_hit: bool = False
    # repro-guard: events by JobManager._cond -- appended by _append_event under the condition
    events: List[Dict[str, Any]] = field(default_factory=list)
    # repro-guard: cancel_event unguarded -- threading.Event is internally synchronized
    cancel_event: threading.Event = field(default_factory=threading.Event)

    # repro-guard: requires JobManager._cond -- reads the guarded fields; describe()/describe_all() snapshot under the condition
    def to_dict(self, include_events: bool = False) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.id,
            "spec": self.spec.to_dict(),
            "label": self.spec.label(),
            "key": self.key,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "cache_hit": self.cache_hit,
            "events_count": len(self.events),
        }
        if include_events:
            payload["events"] = list(self.events)
        return payload


class JobManager:
    """Accepts, queues, runs, and narrates service jobs.

    ``workers`` manager threads each run one job at a time through
    :func:`repro.harness.executor.run_jobs` (with ``jobs=2`` so the cell
    executes in a worker *process*: crash isolation and terminate-based
    cancellation).  ``queue_limit`` bounds the number of queued-but-not-
    started jobs; past it, :meth:`submit` raises :class:`QueueFullError`
    and the API answers 429.
    """

    def __init__(
        self,
        store: Optional[ResultCache],
        workers: int = 2,
        queue_limit: int = 16,
        job_timeout: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.store = store
        self.queue_limit = queue_limit
        self.job_timeout = job_timeout
        self._cond = threading.Condition()
        self._jobs: Dict[str, ServiceJob] = {}
        self._queue: Deque[str] = deque()
        self._ids = itertools.count(1)
        self._stopping = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]

    def start(self) -> "JobManager":
        for thread in self._threads:
            thread.start()
        return self

    # -- client-facing operations (handler threads) --------------------

    def submit(self, payload: Mapping[str, Any]) -> ServiceJob:
        """Validate and enqueue one submission; returns the new job."""
        spec = validate_submission(payload)
        key = spec.key()
        with self._cond:
            if self._stopping:
                raise QueueFullError("the service is shutting down")
            if len(self._queue) >= self.queue_limit:
                raise QueueFullError(
                    f"job queue is full ({self.queue_limit} queued)"
                )
            job = ServiceJob(
                id=f"job-{next(self._ids):06d}",
                spec=spec,
                key=key,
                submitted_at=clock.now(),
            )
            self._jobs[job.id] = job
            self._queue.append(job.id)
            self._append_event(job, "queued", {"key": key})
            self._cond.notify_all()
            return job

    def get(self, job_id: str) -> ServiceJob:
        with self._cond:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def jobs(self) -> List[ServiceJob]:
        """Every known job, in submission order."""
        with self._cond:
            return list(self._jobs.values())

    def describe(
        self, job_id: str, include_events: bool = False
    ) -> Dict[str, Any]:
        """A consistent snapshot of one job, taken under the lock.

        This is what request handlers serialize: reading fields off a
        :class:`ServiceJob` outside the condition can observe a state
        transition half-applied (e.g. ``state == "done"`` with
        ``finished_at`` still ``None``).
        """
        with self._cond:
            try:
                job = self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None
            return job.to_dict(include_events=include_events)

    def describe_all(self) -> List[Dict[str, Any]]:
        """Consistent snapshots of every job, in submission order."""
        with self._cond:
            return [job.to_dict() for job in self._jobs.values()]

    def counts(self) -> Dict[str, int]:
        """How many jobs sit in each state (zero-filled)."""
        with self._cond:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def cancel(self, job_id: str) -> ServiceJob:
        """Cancel a job: dequeue it, or terminate its in-flight worker.

        Terminal jobs are returned unchanged — cancellation is
        idempotent.
        """
        with self._cond:
            try:
                job = self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None
            if job.state == QUEUED:
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass  # a worker grabbed it between checks
                else:
                    self._finish(job, CANCELLED, error="cancelled by client")
                    return job
            if job.state == RUNNING:
                job.cancel_event.set()
            return job

    def events_since(
        self, job_id: str, after: int = 0
    ) -> List[Dict[str, Any]]:
        """Events with ``seq > after`` (non-blocking)."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            return [e for e in job.events if e["seq"] > after]

    def wait_for_events(
        self, job_id: str, after: int = 0, timeout: float = 30.0
    ) -> List[Dict[str, Any]]:
        """Long-poll: block until events past ``after`` exist.

        Returns immediately once the job is terminal (there will be no
        further events) and returns ``[]`` on timeout.
        """
        deadline = clock.perf() + max(0.0, timeout)
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(job_id)
            while True:
                fresh = [e for e in job.events if e["seq"] > after]
                if fresh or job.state in TERMINAL_STATES:
                    return fresh
                remaining = deadline - clock.perf()
                if remaining <= 0:
                    return []
                self._cond.wait(remaining)

    def shutdown(self, cancel_running: bool = True) -> None:
        """Stop accepting work; cancel the queue (and running jobs)."""
        with self._cond:
            self._stopping = True
            while self._queue:
                job = self._jobs[self._queue.popleft()]
                self._finish(job, CANCELLED, error="service shutdown")
            if cancel_running:
                for job in self._jobs.values():
                    if job.state == RUNNING:
                        job.cancel_event.set()
            self._cond.notify_all()
        for thread in self._threads:
            if thread.is_alive():
                thread.join(timeout=30.0)

    # -- the worker loop (manager threads) -----------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and not self._queue:
                    self._cond.wait()
                if self._stopping:
                    return
                job = self._jobs[self._queue.popleft()]
                job.state = RUNNING
                job.started_at = clock.now()
                self._append_event(job, "started", {})
                self._cond.notify_all()
            self._execute(job)

    def _execute(self, job: ServiceJob) -> None:
        def on_progress(
            outcome: JobOutcome, done: int, total: int
        ) -> None:
            with self._cond:
                self._append_event(
                    job, "progress", {"outcome": outcome.to_dict()}
                )
                self._cond.notify_all()

        try:
            _results, outcomes = run_jobs(
                [job.spec],
                jobs=2,  # force a worker process: isolation + cancel
                cache=self.store,
                timeout=self.job_timeout,
                progress=on_progress,
                cancel=job.cancel_event,
            )
            outcome = outcomes[0]
        except Exception as exc:  # executor plumbing failure
            with self._cond:
                self._finish(job, FAILED, error=f"{type(exc).__name__}: {exc}")
            return
        with self._cond:
            if outcome.status == OUTCOME_FAILED:
                self._finish(job, FAILED, error=outcome.error)
            elif outcome.status == OUTCOME_CANCELLED:
                self._finish(job, CANCELLED, error="cancelled by client")
            else:
                job.cache_hit = outcome.status == OUTCOME_HIT
                self._finish(job, DONE)

    # -- internals; caller holds the condition -------------------------

    # repro-guard: requires _cond -- mutates job.events; callers already hold the condition for the enclosing transition
    def _append_event(
        self, job: ServiceJob, kind: str, extra: Dict[str, Any]
    ) -> None:
        event = {
            "seq": len(job.events) + 1,
            "ts": clock.now(),
            "job": job.id,
            "kind": kind,
            "state": job.state,
        }
        event.update(extra)
        job.events.append(event)

    # repro-guard: requires _cond -- state transition + notify must be atomic with the caller's own checks
    def _finish(self, job: ServiceJob, state: str, error: str = "") -> None:
        job.state = state
        job.error = error
        job.finished_at = clock.now()
        extra: Dict[str, Any] = {"cache_hit": job.cache_hit}
        if error:
            extra["error"] = error
        self._append_event(job, state, extra)
        self._cond.notify_all()
