"""Microburst experiment: flatness masking oversubscription (Section 3).

A handful of racks burst simultaneously while the rest of the fabric is
nearly idle.  On the leaf-spine each bursting rack is squeezed through
its oversubscribed uplinks; on a flat network the same racks can also
ride the transit links of their neighbours, which are idle because few
racks burst at once.  The experiment measures tail FCT of the burst
flows on both fabrics, the microburst counterpart of Figure 4's skewed
columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.runner import SMALL, Scale, build_suite
from repro.sim.flowsim import simulate_fct
from repro.sim.results import FctResults
from repro.traffic.microburst import MicroburstSpec, microburst_flows


@dataclass(frozen=True)
class MicroburstResult:
    """Tail FCTs per scheme plus the headline ratio."""

    p99_ms: Dict[str, float]
    median_ms: Dict[str, float]

    def ratio_vs_leafspine(self, scheme: str) -> float:
        return self.p99_ms["leaf-spine (ecmp)"] / self.p99_ms[scheme]


def default_spec(scale: Scale) -> MicroburstSpec:
    """A burst regime matched to the scale: ~20% of racks burst hard."""
    racks = scale.cluster.num_racks
    return MicroburstSpec(
        num_bursting_racks=max(1, racks // 5),
        flows_per_burst=120,
        burst_duration=0.4e-3,
        window=10e-3,
        background_flows=100,
        size_cap=scale.size_cap_bytes,
    )


def run_microburst(
    scale: Scale = SMALL,
    spec: MicroburstSpec = None,
    seed: int = 0,
) -> MicroburstResult:
    """Run one microburst workload through the Figure 4 scheme suite."""
    if spec is None:
        spec = default_spec(scale)
    flows = microburst_flows(scale.cluster, spec, seed=seed)
    suite = build_suite(scale, seed=seed)
    p99: Dict[str, float] = {}
    median: Dict[str, float] = {}
    for tut in suite:
        results: FctResults = simulate_fct(
            tut.network,
            tut.routing,
            tut.placement(shuffle=False, seed=seed),
            flows,
            seed=seed,
        )
        p99[tut.label] = results.p99_fct_ms()
        median[tut.label] = results.median_fct_ms()
    return MicroburstResult(p99_ms=p99, median_ms=median)


def render_microburst(result: MicroburstResult) -> str:
    lines = [
        "Microburst tail FCT (Section 3's motivating regime)",
        f"{'scheme':<22}{'median ms':>12}{'p99 ms':>10}",
    ]
    for scheme in sorted(result.p99_ms):
        lines.append(
            f"{scheme:<22}{result.median_ms[scheme]:>12.4f}"
            f"{result.p99_ms[scheme]:>10.4f}"
        )
    return "\n".join(lines)
