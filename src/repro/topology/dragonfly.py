"""Dragonfly: the hierarchical low-diameter flat topology (Section 7).

Kim et al. (ISCA '08) build groups of ``a`` routers each: routers within
a group form a complete graph, every router additionally carries ``h``
global links, and with ``g = a*h + 1`` groups there is exactly one
global link between every pair of groups — diameter 3 (local, global,
local).  The paper's Section 7 lists Dragonfly among the flat
low-diameter networks expected to perform well at small scale, with the
caveat that it classically needs non-minimal adaptive routing; our
experiments run it under the same oblivious ECMP / Shortest-Union(K)
schemes as the other topologies.

Global links use the *relative* arrangement: group ``i``'s global offset
``q`` (0-based) reaches group ``i + q + 1 (mod g)`` through router
``q // h``, which spreads each group's ``a*h`` global links evenly, h
per router.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.network import Network, NetworkValidationError, build_network
from repro.core.units import DEFAULT_LINK_GBPS


def dragonfly_group_count(routers_per_group: int, global_per_router: int) -> int:
    """The balanced group count: g = a*h + 1."""
    return routers_per_group * global_per_router + 1


def dragonfly_edges(
    routers_per_group: int, global_per_router: int
) -> List[Tuple[int, int]]:
    """Edges of a balanced Dragonfly; router ids are group-major."""
    a = routers_per_group
    h = global_per_router
    if a < 2:
        raise NetworkValidationError("Dragonfly needs >= 2 routers per group")
    if h < 1:
        raise NetworkValidationError("Dragonfly needs >= 1 global link per router")
    g = dragonfly_group_count(a, h)
    edges: List[Tuple[int, int]] = []
    # Intra-group complete graphs.
    for group in range(g):
        base = group * a
        for i in range(a):
            for j in range(i + 1, a):
                edges.append((base + i, base + j))
    # One global link per group pair, via the relative arrangement.
    for group_i in range(g):
        for group_j in range(group_i + 1, g):
            offset_from_i = (group_j - group_i) % g
            offset_from_j = (group_i - group_j) % g
            router_i = group_i * a + (offset_from_i - 1) // h
            router_j = group_j * a + (offset_from_j - 1) // h
            edges.append((router_i, router_j))
    return edges


def dragonfly(
    routers_per_group: int,
    global_per_router: int,
    servers_per_rack: int,
    link_capacity: float = DEFAULT_LINK_GBPS,
    name: str = "",
) -> Network:
    """Build a balanced Dragonfly with servers on every router (flat).

    Network degree per router is ``(a - 1) + h``; the canonical balanced
    configuration sets ``a = 2h = 2p``, but any (a, h) is accepted.
    """
    if servers_per_rack < 1:
        raise NetworkValidationError("servers_per_rack must be >= 1")
    a, h = routers_per_group, global_per_router
    g = dragonfly_group_count(a, h)
    num_routers = g * a
    servers: Dict[int, int] = {
        router: servers_per_rack for router in range(num_routers)
    }
    network = build_network(
        dragonfly_edges(a, h),
        servers,
        link_capacity=link_capacity,
        name=name or f"dragonfly(a={a},h={h})",
    )
    network.graph.graph["dragonfly_a"] = a
    network.graph.graph["dragonfly_h"] = h
    network.validate(max_radix=(a - 1) + h + servers_per_rack)
    return network


def group_of(router: int, routers_per_group: int) -> int:
    """Group index of a router under the canonical numbering."""
    return router // routers_per_group
