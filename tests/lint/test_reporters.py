"""Reporter output: the stable JSON schema and the text format."""

from __future__ import annotations

import json

from repro.lint import (
    JSON_VERSION,
    lint_source,
    render_json,
    render_text,
    report_dict,
)

_DIRTY = "import time\n\ndef stamp(items=[]):\n    return time.time(), items\n"
_PATH = "src/repro/sim/fixture.py"


def test_json_schema():
    findings = lint_source(_DIRTY, _PATH)
    report = json.loads(render_json(findings))
    assert report["version"] == JSON_VERSION == 1
    assert report["clean"] is False
    assert report["total"] == len(findings) == 2
    assert report["counts"] == {"mutable-default": 1, "no-wallclock": 1}
    assert sorted(report["counts"]) == list(report["counts"])
    for entry in report["findings"]:
        assert set(entry) == {"path", "line", "column", "rule", "message"}
        assert entry["path"] == _PATH
        assert isinstance(entry["line"], int) and entry["line"] >= 1


def test_json_clean_report():
    report = report_dict([])
    assert report == {
        "version": JSON_VERSION,
        "clean": True,
        "total": 0,
        "counts": {},
        "findings": [],
    }


def test_text_report_lines_and_summary():
    findings = lint_source(_DIRTY, _PATH)
    text = render_text(findings)
    lines = text.splitlines()
    assert len(lines) == 3
    assert lines[0].startswith(f"{_PATH}:")
    assert "2 finding(s)" in lines[-1]
    assert "mutable-default: 1" in lines[-1]


def test_text_report_clean():
    assert render_text([]) == "clean: no findings"
