"""Engine behavior: file walking, rule selection, error handling."""

from __future__ import annotations

import pytest

from repro.lint import (
    RULE_REGISTRY,
    all_rules,
    iter_python_files,
    lint_paths,
    lint_source,
    rules_by_name,
)

_EXPECTED_RULES = {
    "cache-key-purity",
    "deterministic-iteration",
    "float-eq",
    "mutable-default",
    "network-mutation",
    "no-unseeded-rng",
    "no-wallclock",
    "seed-threading",
}


def test_registry_contains_all_domain_rules():
    assert {rule.name for rule in all_rules()} == _EXPECTED_RULES
    assert set(RULE_REGISTRY) == _EXPECTED_RULES


def test_rules_have_docs():
    for rule in all_rules():
        assert rule.summary
        assert rule.invariant


def test_rules_by_name_selects_subset():
    rules = rules_by_name(["float-eq", "no-wallclock"])
    assert sorted(rule.name for rule in rules) == ["float-eq", "no-wallclock"]


def test_rules_by_name_rejects_unknown():
    with pytest.raises(KeyError):
        rules_by_name(["no-such-rule"])


def test_syntax_error_becomes_finding():
    findings = lint_source("def broken(:\n", "src/repro/sim/bad.py")
    assert len(findings) == 1
    assert findings[0].rule == "syntax-error"


def test_rule_filter_applies(tmp_path):
    source = (
        "import time\n"
        "\n"
        "def stamp(items=[]):\n"
        "    return time.time(), items\n"
    )
    path = "src/repro/sim/fixture.py"
    all_findings = lint_source(source, path)
    assert {f.rule for f in all_findings} == {"no-wallclock", "mutable-default"}
    only = lint_source(source, path, rules_by_name(["mutable-default"]))
    assert [f.rule for f in only] == ["mutable-default"]


def test_iter_python_files_skips_cache_dirs(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "good.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "bad.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
    files = iter_python_files([tmp_path])
    assert [f.name for f in files] == ["good.py"]


def test_iter_python_files_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        iter_python_files([tmp_path / "nope"])


def test_lint_paths_sorts_findings(tmp_path):
    tree = tmp_path / "src" / "repro" / "sim"
    tree.mkdir(parents=True)
    (tree / "b.py").write_text("import time\nt = time.time()\n")
    (tree / "a.py").write_text("import time\nt = time.time()\n")
    findings = lint_paths([tmp_path])
    assert len(findings) == 2
    assert findings[0].path < findings[1].path
