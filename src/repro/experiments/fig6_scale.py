"""Figure 6: DRing's relative performance deteriorates with scale.

The paper grows a DRing supernode by supernode (n = 6 ToRs each, 60-port
switches with 36 server links) and plots the ratio of 99th-percentile
FCTs, FCT(DRing) / FCT(RRG), under uniform traffic; the equivalent RRG
uses the same switches, degrees and servers.  The ratio rises past 1 as
the ring grows — the O(n)-worse bisection bandwidth catching up with the
DRing — which is the paper's evidence that DRing is a *small-scale*
design point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.routing import EcmpRouting, RoutingScheme, ShortestUnionRouting
from repro.sim.flowsim import simulate_fct
from repro.topology import dring, jellyfish
from repro.traffic import (
    CanonicalCluster,
    Placement,
    generate_flows,
    uniform,
    window_for_budget,
)


@dataclass(frozen=True)
class ScalePoint:
    """One x-axis point of Figure 6."""

    supernodes: int
    racks: int
    dring_p99_ms: float
    rrg_p99_ms: float

    @property
    def ratio(self) -> float:
        return self.dring_p99_ms / self.rrg_p99_ms


@dataclass(frozen=True)
class Fig6Config:
    """Per-switch shape of the sweep (paper: n=6, 60 ports, 36 servers)."""

    tors_per_supernode: int = 2
    servers_per_rack: int = 6
    supernode_counts: tuple = (5, 8, 11, 14, 17, 20)
    #: Flow budget per server, so the measurement window (and thus the
    #: amount of contention observed) stays comparable across sizes.
    flows_per_server: int = 8
    window_seconds: float = 0.03
    size_cap_bytes: float = 10e6
    utilization_gbps_per_server: float = 3.0
    routing: str = "su2"

    @property
    def network_degree(self) -> int:
        return 4 * self.tors_per_supernode


def _routing_for(network, kind: str) -> RoutingScheme:
    if kind == "ecmp":
        return EcmpRouting(network)
    if kind == "su2":
        return ShortestUnionRouting(network, 2)
    raise ValueError(f"unknown routing kind {kind!r}")


def run_fig6_point(
    config: Fig6Config, supernodes: int, seed: int = 0
) -> ScalePoint:
    """One x-axis point: DRing vs matched RRG at one supernode count.

    Independently executable — the sweep-harness unit of work for
    Figure 6.  The offered load grows with the network (fixed Gbps per
    server) so utilization stays comparable across sizes.
    """
    m = supernodes
    n = config.tors_per_supernode
    racks = m * n
    servers = racks * config.servers_per_rack
    dr = dring(m, n, servers_per_rack=config.servers_per_rack)
    rrg = jellyfish(
        racks,
        config.network_degree,
        servers_per_switch=config.servers_per_rack,
        seed=seed,
    )
    cluster = CanonicalCluster(racks, config.servers_per_rack)
    tm = uniform(cluster)
    offered = config.utilization_gbps_per_server * servers
    window, num_flows = window_for_budget(
        offered,
        config.flows_per_server * servers,
        config.window_seconds,
        size_cap=config.size_cap_bytes,
    )
    flows = generate_flows(
        tm,
        num_flows,
        window,
        seed=seed,
        size_cap=config.size_cap_bytes,
    )
    dr_res = simulate_fct(
        dr, _routing_for(dr, config.routing),
        Placement(cluster, dr), flows, seed=seed,
    )
    rrg_res = simulate_fct(
        rrg, _routing_for(rrg, config.routing),
        Placement(cluster, rrg), flows, seed=seed,
    )
    return ScalePoint(
        supernodes=m,
        racks=racks,
        dring_p99_ms=dr_res.p99_fct_ms(),
        rrg_p99_ms=rrg_res.p99_fct_ms(),
    )


def run_fig6(config: Fig6Config = Fig6Config(), seed: int = 0) -> List[ScalePoint]:
    """Sweep supernode counts; at each size compare DRing vs matched RRG."""
    return [
        run_fig6_point(config, m, seed=seed) for m in config.supernode_counts
    ]


def render_fig6(points: List[ScalePoint]) -> str:
    """Text rendering of the Figure 6 series."""
    lines = [
        "Figure 6: p99 FCT(DRing) / p99 FCT(RRG), uniform traffic",
        f"{'racks':>8}{'supernodes':>12}{'DRing ms':>12}{'RRG ms':>12}{'ratio':>8}",
    ]
    for p in points:
        lines.append(
            f"{p.racks:>8}{p.supernodes:>12}{p.dring_p99_ms:>12.3f}"
            f"{p.rrg_p99_ms:>12.3f}{p.ratio:>8.2f}"
        )
    return "\n".join(lines)
