"""deep-seed-provenance: every RNG traces back to an injected seed.

The per-file no-unseeded-rng rule bans drawing from the *global* RNG;
this rule closes the remaining hole: a ``random.Random(...)`` (or
``numpy.random.default_rng(...)``) constructed from a seed that is not
attributable to an injection point — a ``JobSpec`` seed, a CLI
``--seed``, a caller-supplied parameter, or a test fixture.

The analysis is a backward taint over seed expressions:

* a construction with **no seed argument** (or an explicit ``None``) is
  nondeterministic — flagged outright in non-test code;
* a seed expression whose leaves are parameters, ``*seed*`` attributes
  (``spec.seed``, ``self.seed``), integer literals, or locals derived
  from those is traceable — accepted;
* a leaf that is a **wall-clock read, ``os.environ`` / ``os.urandom``,
  or a module-level mutable** poisons the seed — flagged;
* when the seed is a bare parameter, the obligation moves to the
  callers: the analysis walks every resolved call site of that
  function and applies the same check to the argument expression,
  transitively.  A call site that *omits* a seed parameter whose
  default is ``None`` is flagged — that path constructs an
  entropy-seeded RNG in disguise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.flow.callgraph import (
    CallGraph,
    EXTERNAL,
    INTERNAL,
    CallSite,
)
from repro.lint.flow.program import (
    FunctionInfo,
    Program,
    function_statements,
)
from repro.lint.flow.registry import FlowRule, register_flow_rule

#: External constructors that produce a seedable RNG.
_RNG_CONSTRUCTORS = frozenset({
    "random.Random", "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.Generator", "numpy.random.SeedSequence",
})

#: Dotted callables whose result must never seed an RNG.
_POISON_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "os.urandom", "os.getpid", "uuid.uuid4", "builtins.id",
})

_POISON_ATTRS = frozenset({"os.environ"})


def _is_test_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return "tests" in parts or parts[-1].startswith("test_")


class _SeedCheck:
    """Classification of one seed expression inside one function."""

    def __init__(
        self,
        program: Program,
        info: FunctionInfo,
        local_assigns: Dict[str, ast.expr],
    ) -> None:
        self.program = program
        self.info = info
        self.module = program.module_of(info)
        self.params = set(info.param_names())
        self.local_assigns = local_assigns
        #: Parameters the seed expression depends on (for caller walks).
        self.used_params: Set[str] = set()
        self.poison: Optional[Tuple[int, str]] = None

    def classify(self, expr: ast.expr, _depth: int = 0) -> None:
        """Walk a seed expression recording params used and poisons."""
        if self.poison is not None or _depth > 12:
            return
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                dotted = self._dotted(node.func)
                if dotted in _POISON_CALLS:
                    self.poison = (node.lineno, f"{dotted}()")
                    return
            elif isinstance(node, ast.Attribute):
                dotted = self._dotted(node)
                if dotted in _POISON_ATTRS:
                    self.poison = (node.lineno, dotted)
                    return
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                name = node.id
                if name in self.params:
                    self.used_params.add(name)
                elif name in self.local_assigns:
                    value = self.local_assigns[name]
                    if value is not expr:
                        self.classify(value, _depth + 1)

    def _dotted(self, node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        base = self.module.imports.get(parts[0])
        if base is None:
            return None
        return ".".join([base] + parts[1:])


def _local_assignments(info: FunctionInfo) -> Dict[str, ast.expr]:
    assigns: Dict[str, ast.expr] = {}
    for stmt in function_statements(info.node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                assigns[target.id] = stmt.value
    return assigns


def _seed_argument(call: ast.Call) -> Optional[ast.expr]:
    """The seed expression of an RNG constructor call, if present."""
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Starred):
            return None
        return first
    for keyword in call.keywords:
        if keyword.arg in ("seed", "x"):  # default_rng(seed=...) / Random(x=)
            return keyword.value
    return None


def _param_default(
    info: FunctionInfo, param: str
) -> Tuple[bool, Optional[ast.expr]]:
    """(has_default, default_expr) for a named parameter."""
    node = info.node
    args = node.args
    positional = args.posonlyargs + args.args
    defaults = args.defaults
    offset = len(positional) - len(defaults)
    for index, arg in enumerate(positional):
        if arg.arg == param:
            if index >= offset:
                return True, defaults[index - offset]
            return False, None
    for index, arg in enumerate(args.kwonlyargs):
        if arg.arg == param:
            default = args.kw_defaults[index]
            return default is not None, default
    return False, None


def _argument_for(
    call: ast.Call, info: FunctionInfo, param: str
) -> Tuple[bool, Optional[ast.expr]]:
    """(explicitly passed, expression) for ``param`` at one call site.

    Positional matching is approximate for methods (no self binding);
    seed parameters are keyword-passed almost everywhere, and a miss
    just means the default-path check runs instead.
    """
    for keyword in call.keywords:
        if keyword.arg == param:
            return True, keyword.value
        if keyword.arg is None:  # **kwargs — assume the caller knows
            return True, None
    node = info.node
    names = [a.arg for a in node.args.posonlyargs + node.args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    if param in names:
        index = names.index(param)
        if index < len(call.args):
            arg = call.args[index]
            if isinstance(arg, ast.Starred):
                return True, None
            return True, arg
    return False, None


@register_flow_rule
class DeepSeedProvenance(FlowRule):
    name = "deep-seed-provenance"
    summary = (
        "RNG constructions whose seed cannot be traced to an injection "
        "point (JobSpec seed, CLI --seed, caller parameter, test)"
    )
    invariant = (
        "every random draw in the package is replayable because every "
        "RNG's seed arrives through an explicit injection point"
    )

    def check(self, graph: CallGraph) -> Iterable[Finding]:
        program = graph.program
        findings: List[Finding] = []
        #: (function qname, param) pairs that flow into RNG seeds.
        seed_params: Set[Tuple[str, str]] = set()

        for site in graph.sites:
            if site.kind != EXTERNAL or site.target not in _RNG_CONSTRUCTORS:
                continue
            info = program.functions.get(site.caller)
            if info is None:
                continue
            path = program.modules[info.module].path
            if _is_test_path(path):
                continue
            call = _find_call(info, site)
            if call is None:
                continue
            seed = _seed_argument(call)
            if seed is None or (
                isinstance(seed, ast.Constant) and seed.value is None
            ):
                findings.append(self.finding(
                    path, site.line, site.column,
                    f"'{site.text}()' constructed without a seed: this "
                    "draws from system entropy and cannot be replayed; "
                    "thread an explicit seed through",
                ))
                continue
            check = _SeedCheck(program, info, _local_assignments(info))
            check.classify(seed)
            if check.poison is not None:
                line, what = check.poison
                findings.append(self.finding(
                    path, line, site.column,
                    f"RNG seed derives from '{what}': not attributable "
                    "to an injection point; seeds must come from a "
                    "JobSpec, CLI --seed, parameter or test fixture",
                ))
                continue
            for param in check.used_params:
                seed_params.add((site.caller, param))

        findings.extend(
            self._check_callers(graph, seed_params)
        )
        return findings

    def _check_callers(
        self, graph: CallGraph, seed_params: Set[Tuple[str, str]]
    ) -> Iterable[Finding]:
        """Propagate the seed obligation to call sites, transitively."""
        program = graph.program
        findings: List[Finding] = []
        sites_by_target: Dict[str, List[CallSite]] = {}
        for site in graph.sites:
            if site.kind == INTERNAL:
                sites_by_target.setdefault(site.target, []).append(site)

        worklist = sorted(seed_params)
        checked: Set[Tuple[str, str]] = set(worklist)
        while worklist:
            qname, param = worklist.pop()
            info = program.functions[qname]
            for site in sites_by_target.get(qname, []):
                caller = program.functions.get(site.caller)
                if caller is None:
                    continue
                caller_path = program.modules[caller.module].path
                if _is_test_path(caller_path):
                    continue
                call = _find_call(caller, site)
                if call is None:
                    continue
                passed, expr = _argument_for(call, info, param)
                if not passed:
                    has_default, default = _param_default(info, param)
                    if has_default and isinstance(
                        default, ast.Constant
                    ) and default.value is None:
                        findings.append(self.finding(
                            caller_path, site.line, site.column,
                            f"call to '{info.name}()' omits seed "
                            f"parameter '{param}' whose default is "
                            "None — this path constructs an "
                            "entropy-seeded RNG; pass a seed",
                        ))
                    continue
                if expr is None:
                    continue
                check = _SeedCheck(
                    program, caller, _local_assignments(caller)
                )
                check.classify(expr)
                if check.poison is not None:
                    line, what = check.poison
                    findings.append(self.finding(
                        caller_path, line, site.column,
                        f"seed passed to '{info.name}()' derives from "
                        f"'{what}': not attributable to an injection "
                        "point",
                    ))
                    continue
                for caller_param in check.used_params:
                    item = (site.caller, caller_param)
                    if item not in checked:
                        checked.add(item)
                        worklist.append(item)
        return findings


def _find_call(info: FunctionInfo, site: CallSite) -> Optional[ast.Call]:
    """Recover the AST call node a site was built from (by position)."""
    for node in function_statements(info.node):
        if (
            isinstance(node, ast.Call)
            and node.lineno == site.line
            and node.col_offset == site.column
        ):
            return node
    return None
