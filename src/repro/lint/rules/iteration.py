"""deterministic-iteration: never iterate a set in result-affecting code.

Set iteration order depends on insertion history and hash seeding; a
``for`` over a set inside the simulators or routing turns into run-to-run
jitter in path choice, flow ordering and therefore every figure.  Any
set that feeds iteration must pass through ``sorted()`` first.

The rule tracks, per scope, names assigned from set-producing
expressions (literals, ``set()``/``frozenset()`` calls, set
comprehensions, set algebra on known sets) and flags ``for`` loops,
comprehensions and ``list()``/``tuple()``/``enumerate()`` calls that
consume one unsorted.  Order-insensitive reductions (``sum``, ``min``,
``max``, ``len``, ``any``, ``all``, ``sorted`` itself) are fine.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register_rule

_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate", "iter"})
#: Builtins whose result does not depend on argument order; a generator
#: expression fed directly into one may iterate a set.
_ORDER_FREE_REDUCERS = frozenset({
    "all", "any", "frozenset", "len", "max", "min", "set", "sorted", "sum",
})


class _ScopeTracker(ast.NodeVisitor):
    """Collect findings, tracking set-valued names per function scope."""

    def __init__(
        self, rule: "DeterministicIteration", context: FileContext
    ) -> None:
        self.rule = rule
        self.context = context
        self.findings: List[Finding] = []
        self.scopes: List[Set[str]] = [set()]
        self._order_free: Set[int] = set()

    # -- set-ness ------------------------------------------------------

    def _is_set_name(self, name: str) -> bool:
        return any(name in scope for scope in reversed(self.scopes))

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                return node.func.id in ("set", "frozenset")
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
            ):
                return self._is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self._is_set_expr(node.left) or self._is_set_expr(
                node.right
            )
        if isinstance(node, ast.Name):
            return self._is_set_name(node.id)
        return False

    def _record_assignment(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if self._is_set_expr(value):
                self.scopes[-1].add(target.id)
            else:
                self.scopes[-1].discard(target.id)

    # -- scope management ----------------------------------------------

    def _visit_function(self, node: ast.AST) -> None:
        self.scopes.append(set())
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- assignments ---------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_assignment(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_assignment(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name) and self._is_set_name(
            node.target.id
        ):
            pass  # stays a set under |=, &=, -=, ^=
        self.generic_visit(node)

    # -- consumers -----------------------------------------------------

    def _flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            self.rule.finding(
                self.context,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                f"iterating {what} has hash-dependent order; wrap the "
                "iterable in sorted() (or justify a suppression)",
            )
        )

    def _check_iterable(self, node: ast.AST) -> None:
        if self._is_set_expr(node):
            what = (
                f"set-valued name '{node.id}'"
                if isinstance(node, ast.Name)
                else "a set expression"
            )
            self._flag(node, what)

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        if id(node) not in self._order_free:
            for generator in node.generators:  # type: ignore[attr-defined]
                self._check_iterable(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building one set from another is order-free; only *consuming*
        # order matters, which the other visitors catch.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.args:
            if node.func.id in _ORDERED_CONSUMERS:
                self._check_iterable(node.args[0])
            elif node.func.id in _ORDER_FREE_REDUCERS:
                for arg in node.args:
                    if isinstance(arg, ast.GeneratorExp):
                        self._order_free.add(id(arg))
        self.generic_visit(node)


@register_rule
class DeterministicIteration(Rule):
    name = "deterministic-iteration"
    summary = (
        "unsorted iteration over a set/frozenset in sim/routing/faults/"
        "metrics code"
    )
    invariant = (
        "result-affecting iteration order is a pure function of the "
        "inputs, never of hash seeding or insertion history"
    )

    def applies(self, context: FileContext) -> bool:
        return (
            context.in_package("sim", "routing", "faults")
            or context.is_repro_file("core/metrics.py")
        ) and not context.is_test

    def check(self, context: FileContext) -> Iterator[Finding]:
        tracker = _ScopeTracker(self, context)
        tracker.visit(context.tree)
        yield from tracker.findings
